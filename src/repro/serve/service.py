"""The long-lived KBC service: one writer, many readers, durable commits.

:class:`KBService` wraps a :class:`~repro.serve.engine.ServeEngine` with the
three things a service needs that a batch pipeline doesn't:

* **a single-writer apply loop** (daemon thread) that drains a *bounded*
  ingest queue, coalesces operations into batches, and commits each batch
  as WAL-append → apply → publish.  The WAL append comes first, so any
  crash after it replays the batch on recovery;
* **versioned concurrent reads**: every commit publishes an immutable
  :class:`~repro.serve.snapshot.Snapshot`; readers grab the current
  reference (one atomic load) and query it without ever blocking on — or
  observing — an ingest in flight;
* **admission control**: the queue has a fixed capacity and either blocks
  producers (backpressure) or rejects with :class:`IngestRejected`.

Durability is checkpoint + WAL: a checkpoint is taken at bootstrap, every
``checkpoint_every`` batches, and on request; recovery (:meth:`KBService.open`)
loads the newest checkpoint and replays the WAL tail through the same
deterministic engine code path, reproducing the crashed service's marginals
bit for bit.

Fault injection for crash testing: set ``service.fault_hooks["after_wal_append"]``
to a callable; it runs inside the commit path right after the WAL append and
before any state mutation.  Raising from it simulates a crash at the
worst moment — the batch is durable but unapplied.
"""

from __future__ import annotations

import collections
import pathlib
import queue
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable, Sequence

from repro import obs
from repro.serve.checkpoint import CheckpointInfo, CheckpointManager
from repro.serve.config import ServeConfig
from repro.serve.engine import AppFactory, ServeEngine
from repro.serve.ops import IngestOp
from repro.serve.snapshot import Snapshot
from repro.serve.wal import WriteAheadLog


class IngestRejected(RuntimeError):
    """Raised when admission control refuses an operation."""


class ServiceFailed(RuntimeError):
    """Raised when the apply loop has died; wraps the original error."""


@dataclass
class _Command:
    """One queue item: a data batch or a control request."""

    kind: str                                   # "batch" | "checkpoint" | "stop"
    batch: tuple[IngestOp, ...] = ()
    done: threading.Event = field(default_factory=threading.Event)
    result: object = None
    error: BaseException | None = None

    def wait(self, timeout: float | None = None) -> object:
        if not self.done.wait(timeout):
            raise TimeoutError(f"{self.kind} not applied within {timeout}s")
        if self.error is not None:
            raise ServiceFailed(f"apply loop failed: {self.error}") \
                from self.error
        return self.result


class KBService:
    """A DeepDive application served online.  See the module docstring."""

    def __init__(self, engine: ServeEngine, directory: str | pathlib.Path,
                 wal: WriteAheadLog, checkpoints: CheckpointManager,
                 snapshot: Snapshot, batches_since_checkpoint: int = 0) -> None:
        self.engine = engine
        self.config = engine.config
        self.directory = pathlib.Path(directory)
        self.wal = wal
        self.checkpoints = checkpoints
        self._snapshot = snapshot
        self._queue: queue.Queue[_Command] = queue.Queue(
            maxsize=self.config.queue_capacity)
        # commands pulled during coalescing that must run before new ones
        self._requeue: collections.deque[_Command] = collections.deque()
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None
        self._closed = False
        self._batches_since_checkpoint = batches_since_checkpoint
        #: test/chaos hooks run inside the commit path; see module docstring
        self.fault_hooks: dict[str, Callable] = {}

    # ------------------------------------------------------------ constructors
    @classmethod
    def create(cls, directory: str | pathlib.Path, app_factory: AppFactory,
               bootstrap_ops: Sequence[IngestOp],
               config: ServeConfig | None = None,
               run_kwargs: dict | None = None,
               start: bool = True) -> "KBService":
        """Bootstrap a brand-new service in ``directory``.

        Loads the initial corpus/KB, runs full learning + inference,
        publishes version 0, and writes the bootstrap checkpoint before
        accepting any ingest — so recovery never needs to redo bootstrap.
        """
        directory = pathlib.Path(directory)
        config = config if config is not None else ServeConfig()
        engine = ServeEngine(app_factory, config=config, run_kwargs=run_kwargs)
        snapshot = engine.bootstrap(list(bootstrap_ops))
        wal = WriteAheadLog(directory / "ingest.wal", fsync=config.wal_fsync)
        checkpoints = CheckpointManager(directory / "checkpoints",
                                        keep=config.keep_checkpoints)
        checkpoints.save(engine.checkpoint_payload(), lsn=wal.last_lsn)
        service = cls(engine, directory, wal, checkpoints, snapshot)
        if start:
            service.start()
        return service

    @classmethod
    def open(cls, directory: str | pathlib.Path, app_factory: AppFactory,
             config: ServeConfig | None = None,
             run_kwargs: dict | None = None,
             start: bool = True) -> "KBService":
        """Recover a service from ``directory``: newest checkpoint + WAL tail.

        Replayed batches run through the same deterministic engine path the
        original commits used, so the recovered marginals are bit-identical
        to what the crashed service had (or would have) published.
        """
        directory = pathlib.Path(directory)
        config = config if config is not None else ServeConfig()
        checkpoints = CheckpointManager(directory / "checkpoints",
                                        keep=config.keep_checkpoints)
        payload = checkpoints.load()
        engine = ServeEngine.restore(payload, app_factory, config=config,
                                     run_kwargs=run_kwargs)
        wal = WriteAheadLog(directory / "ingest.wal", fsync=config.wal_fsync)
        checkpoint_lsn = int(payload["lsn"])
        snapshot = engine.current_snapshot(lsn=checkpoint_lsn)
        replayed = 0
        with obs.span("serve.recovery", checkpoint_lsn=checkpoint_lsn) as sp:
            for record in wal.replay(after_lsn=checkpoint_lsn):
                snapshot = engine.apply_batch(list(record.batch), record.lsn)
                replayed += 1
            sp.set(replayed=replayed)
        service = cls(engine, directory, wal, checkpoints, snapshot,
                      batches_since_checkpoint=replayed)
        if start:
            service.start()
        return service

    # ---------------------------------------------------------------- ingest
    def submit(self, op: IngestOp, timeout: float | None = None) -> None:
        """Queue one operation (coalesced into a batch by the apply loop).

        Applies the configured admission policy when the queue is full:
        ``"block"`` waits (up to ``timeout``), ``"reject"`` raises
        immediately.
        """
        self._enqueue(_Command("batch", (op,)), timeout)

    def ingest(self, ops: Iterable[IngestOp], wait: bool = True,
               timeout: float | None = None) -> Snapshot | None:
        """Queue ``ops`` as one explicit batch (one WAL record, one commit).

        With ``wait=True`` blocks until the batch is applied and returns the
        snapshot that includes it; otherwise returns None immediately.
        """
        command = _Command("batch", tuple(ops))
        self._enqueue(command, timeout)
        if wait:
            return command.wait(timeout)
        return None

    def _enqueue(self, command: _Command, timeout: float | None) -> None:
        self._check_alive()
        try:
            if self.config.admission == "reject":
                self._queue.put_nowait(command)
            else:
                self._queue.put(command, timeout=timeout)
        except queue.Full:
            if obs.enabled():
                obs.count("serve.ingest.rejected")
            raise IngestRejected(
                f"ingest queue full ({self.config.queue_capacity} pending) "
                f"under {self.config.admission!r} admission") from None
        if obs.enabled():
            obs.count("serve.ingest.submitted")
            obs.gauge("serve.queue.depth", self._queue.qsize())

    def flush(self, timeout: float | None = None) -> Snapshot:
        """Wait until everything queued so far is applied; returns the
        snapshot current at that point."""
        command = _Command("batch", ())          # empty batch = barrier
        self._enqueue(command, timeout)
        command.wait(timeout)
        return self.snapshot()

    def checkpoint(self, timeout: float | None = None) -> CheckpointInfo:
        """Request a checkpoint from the apply loop and wait for it."""
        command = _Command("checkpoint")
        self._enqueue(command, timeout)
        return command.wait(timeout)

    # ----------------------------------------------------------------- reads
    def snapshot(self) -> Snapshot:
        """The current published version (never blocks on ingest)."""
        started = perf_counter()
        current = self._snapshot                 # one atomic reference load
        if obs.enabled():
            obs.observe("serve.read.seconds", perf_counter() - started)
            obs.count("serve.reads")
        return current

    def query(self, relation: str, threshold: float | None = None) -> set:
        """Accepted tuples of ``relation`` in the current version."""
        with obs.span("serve.read", relation=relation):
            return self.snapshot().output_tuples(relation, threshold)

    def marginal(self, key, default: float | None = None) -> float:
        """One variable's probability in the current version."""
        return self.snapshot().marginal(key, default)

    # ------------------------------------------------------------ apply loop
    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._check_alive()
        self._thread = threading.Thread(target=self._apply_loop,
                                        name="repro-serve-apply", daemon=True)
        self._thread.start()

    def stop(self, timeout: float | None = 30.0,
             checkpoint: bool = False) -> None:
        """Drain the queue, optionally checkpoint, and stop the loop."""
        if self._thread is None or not self._thread.is_alive():
            self._closed = True
            self.wal.close()
            return
        if checkpoint and self._failure is None:
            self.checkpoint(timeout)
        command = _Command("stop")
        self._queue.put(command)
        command.done.wait(timeout)
        self._thread.join(timeout)
        self._closed = True
        self.wal.close()

    def __enter__(self) -> "KBService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _check_alive(self) -> None:
        if self._failure is not None:
            raise ServiceFailed(
                f"apply loop died: {self._failure}") from self._failure
        if self._closed:
            raise ServiceFailed("service is stopped")

    def _apply_loop(self) -> None:
        while True:
            if self._requeue:
                command = self._requeue.popleft()
            else:
                command = self._queue.get()
            if command.kind == "stop":
                command.done.set()
                return
            folded: list[_Command] = []
            if command.kind == "batch":
                folded = self._coalesce(command)
            try:
                self._commit(command)
            except BaseException as error:      # simulated crashes included
                self._failure = error
                for failed in [command] + folded:
                    failed.error = error
                    failed.done.set()
                self._drain_failed()
                return
            for member in folded:                # folded ops share the result
                member.result = command.result
                member.done.set()
            command.done.set()
            if obs.enabled():
                obs.gauge("serve.queue.depth", self._queue.qsize())

    def _coalesce(self, command: _Command) -> list[_Command]:
        """Fold immediately-available single-op batch commands into
        ``command`` (one WAL record, one commit), up to ``max_batch_ops``.
        Control commands and explicit multi-op batches stay queued — they
        commit on their own, in order, on the next loop iterations."""
        folded: list[_Command] = []
        while len(command.batch) < self.config.max_batch_ops:
            try:
                nxt = self._queue.get_nowait()
            except queue.Empty:
                break
            if nxt.kind == "batch" and len(nxt.batch) == 1:
                command.batch = command.batch + nxt.batch
                folded.append(nxt)
            else:
                # put it back for the next iteration; capacity is free
                # because this loop is the only consumer
                self._requeue.append(nxt)
                break
        return folded

    def _commit(self, command: _Command) -> None:
        if command.kind == "checkpoint":
            command.result = self._do_checkpoint()
            return
        if not command.batch:                    # flush barrier
            return
        started = perf_counter()
        with obs.span("serve.commit", ops=len(command.batch)) as sp:
            lsn = self.wal.append(command.batch)
            hook = self.fault_hooks.get("after_wal_append")
            if hook is not None:
                hook(lsn, command.batch)
            snapshot = self.engine.apply_batch(list(command.batch), lsn)
            self._snapshot = snapshot            # the publish: one reference
            command.result = snapshot
            sp.set(lsn=lsn, version=snapshot.version)
        if obs.enabled():
            obs.observe("serve.commit.seconds", perf_counter() - started)
            obs.count("serve.ops.applied", len(command.batch))
        self._batches_since_checkpoint += 1
        if self.config.checkpoint_every and \
                self._batches_since_checkpoint >= self.config.checkpoint_every:
            self._do_checkpoint()

    def _do_checkpoint(self) -> CheckpointInfo:
        with obs.span("serve.checkpoint", lsn=self.wal.last_lsn):
            info = self.checkpoints.save(self.engine.checkpoint_payload(),
                                         lsn=self.wal.last_lsn)
        self._batches_since_checkpoint = 0
        return info

    def _drain_failed(self) -> None:
        """After a loop failure, fail every queued waiter instead of
        leaving producers blocked forever."""
        while self._requeue:
            command = self._requeue.popleft()
            command.error = self._failure
            command.done.set()
        while True:
            try:
                command = self._queue.get_nowait()
            except queue.Empty:
                return
            command.error = self._failure
            command.done.set()
