"""Datastore persistence: CSV per relation and JSON for whole databases.

DeepDive deployments hand extracted tables to downstream tools ("OLAP query
processors, visualization software like Tableau, and analytical tools such
as R or Excel" -- Section 1); CSV is the lingua franca for that hand-off.
JSON dump/load round-trips a whole database including schemas, so an
application's state can be archived next to its run history.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Iterable, TextIO

from repro.datastore.database import Database
from repro.datastore.relation import Relation
from repro.datastore.schema import Schema
from repro.datastore.types import ColumnType


# ---------------------------------------------------------------------- CSV
def write_csv(relation: Relation, stream: TextIO) -> int:
    """Write ``relation`` to ``stream`` as CSV with a header row.

    ARRAY columns are JSON-encoded in their cell.  Returns rows written
    (multiplicity preserved: a row with count 2 appears twice).
    """
    writer = csv.writer(stream)
    writer.writerow(relation.schema.names)
    written = 0
    array_positions = {i for i, column in enumerate(relation.schema.columns)
                       if column.type is ColumnType.ARRAY}
    for row in relation:
        encoded = [json.dumps(list(v)) if i in array_positions and v is not None
                   else v for i, v in enumerate(row)]
        writer.writerow(encoded)
        written += 1
    return written


def read_csv(stream: TextIO, schema: Schema, name: str = "loaded") -> Relation:
    """Read a CSV written by :func:`write_csv` back into a relation."""
    reader = csv.reader(stream)
    header = next(reader, None)
    if header is None:
        return Relation(name, schema)
    if tuple(header) != schema.names:
        raise ValueError(f"CSV header {header} does not match schema "
                         f"{schema.names}")
    relation = Relation(name, schema)
    for raw in reader:
        row: list[Any] = []
        for value, column in zip(raw, schema.columns):
            if value == "":
                row.append(None)
            elif column.type is ColumnType.INT:
                row.append(int(value))
            elif column.type is ColumnType.FLOAT:
                row.append(float(value))
            elif column.type is ColumnType.BOOL:
                row.append(value == "True")
            elif column.type is ColumnType.ARRAY:
                row.append(tuple(json.loads(value)))
            else:
                row.append(value)
        relation.insert(row)
    return relation


def relation_to_csv_text(relation: Relation) -> str:
    """Convenience: the relation's CSV as a string."""
    buffer = io.StringIO()
    write_csv(relation, buffer)
    return buffer.getvalue()


# --------------------------------------------------------------------- JSON
#: Current JSON database format.  v2 adds each relation's mutation-version
#: counter so a restored database resumes IVM/DRed cache keying where the
#: dumped one left off; v1 dumps (no counter) still load.
DATABASE_FORMAT_VERSION = 2
SUPPORTED_DATABASE_VERSIONS = (1, 2)


def database_to_dict(db: Database, relations: Iterable[str] | None = None) -> dict:
    """Serialize ``db`` (or a subset of relations) to a JSON-compatible dict."""
    names = list(relations) if relations is not None else db.names()
    payload = {"version": DATABASE_FORMAT_VERSION, "relations": {}}
    for name in names:
        relation = db[name]
        payload["relations"][name] = {
            "schema": [[c.name, c.type.value] for c in relation.schema.columns],
            "rows": [[list(v) if isinstance(v, tuple) else v for v in row]
                     for row in relation],
            "mutation_version": relation.mutation_version,
        }
    return payload


def database_from_dict(data: dict) -> Database:
    """Inverse of :func:`database_to_dict`.

    Restored relations resume the persisted mutation-version counters, so
    incremental machinery (DRed views, columnar caches) keyed on them
    behaves exactly as it would have over the original database.
    """
    if data.get("version") not in SUPPORTED_DATABASE_VERSIONS:
        raise ValueError(
            f"unsupported database format version {data.get('version')!r}; "
            f"this build reads versions {SUPPORTED_DATABASE_VERSIONS}")
    db = Database()
    for name, item in data["relations"].items():
        schema = Schema.of(**{column: type_name
                              for column, type_name in item["schema"]})
        relation = db.create(name, schema)
        # one bulk insert (a single version bump) so the persisted counter —
        # which counted at least one mutation per stored row batch — can
        # always be restored exactly
        relation.insert_many(item["rows"])
        persisted = item.get("mutation_version")
        if persisted is not None and persisted > relation.mutation_version:
            relation.restore_mutation_version(persisted)
    return db


def dump_database(db: Database, stream: TextIO,
                  relations: Iterable[str] | None = None) -> None:
    """Write ``db`` as JSON to ``stream``."""
    json.dump(database_to_dict(db, relations), stream)


def load_database(stream: TextIO) -> Database:
    """Read a database written by :func:`dump_database`."""
    return database_from_dict(json.load(stream))
