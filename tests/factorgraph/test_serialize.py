"""Round-trip tests for factor-graph serialization."""

import pytest

from repro.factorgraph import (FactorFunction, FactorGraph, dumps, from_dict,
                               loads, to_dict)


def sample_graph():
    graph = FactorGraph()
    a = graph.variable(("MarriedMentions", ("m1", "m2")), initial=True)
    b = graph.variable("plain_key")
    w1 = graph.weight(("rule0", "between:and his wife"), 1.5)
    w2 = graph.weight("fixed_rule", 4.0, fixed=True)
    graph.add_factor(FactorFunction.IS_TRUE, [a], w1)
    graph.add_factor(FactorFunction.IMPLY, [a, b], w2, negated=[True, False])
    graph.set_evidence("plain_key", False)
    return graph


def signature(graph):
    variables = sorted((repr(v.key), v.evidence, v.initial)
                       for v in graph.variables.values())
    weights = sorted((repr(w.key), w.value, w.fixed, w.observations)
                     for w in graph.weights.values())
    factors = sorted(
        (int(f.function),
         tuple(repr(graph.variables[v].key) for v in f.var_ids),
         f.negated, repr(graph.weights[f.weight_id].key))
        for f in graph.factors.values())
    return variables, weights, factors


class TestRoundTrip:
    def test_dict_roundtrip(self):
        graph = sample_graph()
        restored = from_dict(to_dict(graph))
        assert signature(restored) == signature(graph)

    def test_json_roundtrip(self):
        graph = sample_graph()
        restored = loads(dumps(graph))
        assert signature(restored) == signature(graph)

    def test_tuple_keys_survive(self):
        graph = sample_graph()
        restored = loads(dumps(graph))
        assert restored.has_variable(("MarriedMentions", ("m1", "m2")))

    def test_evidence_survives(self):
        restored = loads(dumps(sample_graph()))
        var = restored.variables[restored.variable_id("plain_key")]
        assert var.evidence is False

    def test_fixed_weight_survives(self):
        restored = loads(dumps(sample_graph()))
        weight = restored.weight_by_key("fixed_rule")
        assert weight.fixed and weight.value == 4.0

    def test_negation_survives(self):
        restored = loads(dumps(sample_graph()))
        imply = next(f for f in restored.factors.values()
                     if f.function == FactorFunction.IMPLY)
        assert imply.negated == (True, False)

    def test_empty_graph(self):
        assert signature(loads(dumps(FactorGraph()))) == signature(FactorGraph())

    def test_version_checked(self):
        data = to_dict(sample_graph())
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            from_dict(data)


class TestFormatVersions:
    """Forward/backward compatibility of the versioned payload."""

    def test_current_version_is_2(self):
        from repro.factorgraph import serialize
        assert serialize.FORMAT_VERSION == 2
        assert to_dict(sample_graph())["version"] == 2

    def test_v1_payload_still_loads(self):
        """Archives written before stable ids keep loading (compacted ids)."""
        graph = sample_graph()
        data = to_dict(graph)
        data["version"] = 1
        for weight in data["weights"]:
            del weight["observations"]
        restored = from_dict(data)
        assert signature(restored) == signature(graph)

    @pytest.mark.parametrize("version", [0, 3, 999, "2", None])
    def test_unknown_version_rejected_with_clear_error(self, version):
        from repro.factorgraph.serialize import SerializationError
        data = to_dict(sample_graph())
        data["version"] = version
        with pytest.raises(SerializationError) as excinfo:
            from_dict(data)
        message = str(excinfo.value)
        assert repr(version) in message
        assert "(1, 2)" in message          # the supported versions are named

    def test_missing_version_rejected(self):
        data = to_dict(sample_graph())
        del data["version"]
        with pytest.raises(ValueError, match="unsupported factor-graph"):
            from_dict(data)

    def test_forward_compat_never_misparses(self):
        """A plausible future payload (extra fields, new version) is refused
        outright rather than half-parsed."""
        data = to_dict(sample_graph())
        data["version"] = 3
        data["variables"][0]["domain"] = ["a", "b", "c"]   # hypothetical v3 field
        with pytest.raises(ValueError, match="newer"):
            from_dict(data)

    def test_unserializable_key_rejected(self):
        graph = FactorGraph()
        graph.variable(object())
        with pytest.raises(TypeError):
            to_dict(graph)

    def test_ids_survive_removal_gaps(self):
        """v2 payloads restore the exact id space, including gaps."""
        graph = sample_graph()
        extra = graph.variable("doomed")
        w = graph.weight("doomed_w", 0.5)
        fid = graph.add_factor(FactorFunction.IS_TRUE, [extra], w)
        graph.remove_factor(fid)
        graph.remove_variable("doomed")
        restored = from_dict(to_dict(graph))
        assert sorted(restored.variables) == sorted(graph.variables)
        assert sorted(restored.factors) == sorted(graph.factors)
        assert sorted(restored.weights) == sorted(graph.weights)
        # fresh insertions continue from the original counters, not the gaps
        assert restored.variable("fresh") == graph.variable("fresh")

    def test_compiled_equivalence(self):
        """The restored graph samples identically to the original."""
        import numpy as np
        from repro.factorgraph import CompiledGraph
        from repro.inference import GibbsSampler

        graph = sample_graph()
        restored = loads(dumps(graph))
        m1 = GibbsSampler(CompiledGraph(graph), seed=3).marginals(
            num_samples=200, burn_in=20).by_key(CompiledGraph(graph))
        m2 = GibbsSampler(CompiledGraph(restored), seed=3).marginals(
            num_samples=200, burn_in=20).by_key(CompiledGraph(restored))
        for key, value in m1.items():
            assert abs(m2[key] - value) < 1e-12
