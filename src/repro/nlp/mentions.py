"""Mention spans and the span utilities DeepDive features rely on.

A *mention* is a token span inside one sentence that may refer to an entity
(person, gene, price...).  Feature UDFs are written over spans: the phrase
between two mentions, token windows, POS windows -- all provided here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nlp.pipeline import Sentence


@dataclass(frozen=True)
class Span:
    """A token span ``[start, end)`` within the sentence ``sentence_key``."""

    sentence_key: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    @property
    def mention_id(self) -> str:
        """Stable identifier usable as a relation key."""
        return f"{self.sentence_key}:{self.start}-{self.end}"

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        return (self.sentence_key == other.sentence_key
                and self.start < other.end and other.start < self.end)

    def text(self, sentence: Sentence) -> str:
        return " ".join(sentence.tokens[self.start:self.end])


def parse_mention_id(mention_id: str) -> Span:
    """Inverse of :attr:`Span.mention_id`."""
    sentence_key, _, span_part = mention_id.rpartition(":")
    start_text, _, end_text = span_part.partition("-")
    return Span(sentence_key, int(start_text), int(end_text))


def phrase_between(sentence: Sentence, left: Span, right: Span,
                   max_tokens: int = 8) -> str:
    """The token phrase between two mentions (the paper's ``phrase`` UDF).

    Returns the inter-mention tokens joined by spaces, lowercased, truncated
    to ``max_tokens``; empty string if the spans touch or overlap.  Order of
    arguments does not matter.
    """
    if left.start > right.start:
        left, right = right, left
    between = sentence.tokens[left.end:right.start]
    if not between:
        return ""
    return " ".join(t.lower() for t in between[:max_tokens])


def window_before(sentence: Sentence, span: Span, size: int = 3) -> tuple[str, ...]:
    """Up to ``size`` lowercased tokens immediately before ``span``."""
    start = max(0, span.start - size)
    return tuple(t.lower() for t in sentence.tokens[start:span.start])


def window_after(sentence: Sentence, span: Span, size: int = 3) -> tuple[str, ...]:
    """Up to ``size`` lowercased tokens immediately after ``span``."""
    return tuple(t.lower() for t in sentence.tokens[span.end:span.end + size])


def pos_window(sentence: Sentence, span: Span, size: int = 2) -> tuple[str, ...]:
    """POS tags of ``size`` tokens each side of ``span`` (padded with '-')."""
    before = list(sentence.pos_tags[max(0, span.start - size):span.start])
    after = list(sentence.pos_tags[span.end:span.end + size])
    before = ["-"] * (size - len(before)) + before
    after = after + ["-"] * (size - len(after))
    return tuple(before + after)


def token_distance(left: Span, right: Span) -> int:
    """Number of tokens strictly between two spans in the same sentence."""
    if left.sentence_key != right.sentence_key:
        raise ValueError("spans are in different sentences")
    if left.start > right.start:
        left, right = right, left
    return max(0, right.start - left.end)
