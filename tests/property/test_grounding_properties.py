"""Property test: incremental grounding over ANY valid batch sequence must
end in the same factor graph as grounding the final database from scratch."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastore import Database
from repro.ddlog import DDlogProgram
from repro.grounding import Grounder

PROGRAM = """
Token(s text, t text).
Pair(t1 text, t2 text).
Good?(t1 text, t2 text).
KB(t1 text, t2 text).

Pair(t1, t2) :- Token(s, t1), Token(s, t2), [t1 < t2].

Good(t1, t2) :- Token(s, t1), Token(s, t2), [t1 < t2]
    weight = feat(t1, t2).

Good_Ev(t1, t2, true) :- Pair(t1, t2), KB(t1, t2).
"""

tokens = st.sampled_from(["a", "b", "c", "d"])
sentences = st.sampled_from(["s1", "s2", "s3"])
token_row = st.tuples(sentences, tokens)
kb_row = st.tuples(tokens, tokens)


def new_program():
    program = DDlogProgram.parse(PROGRAM)
    program.register_udf("feat", lambda t1, t2: f"{t1}&{t2}")
    return program


@st.composite
def batch_sequence(draw):
    """Initial rows + batches of inserts/deletes that never over-delete."""
    initial = {
        "Token": draw(st.lists(token_row, max_size=6)),
        "KB": draw(st.lists(kb_row, max_size=3)),
    }
    live = {name: Counter(rows) for name, rows in initial.items()}
    batches = []
    for _ in range(draw(st.integers(1, 3))):
        inserts = {"Token": draw(st.lists(token_row, max_size=3)),
                   "KB": draw(st.lists(kb_row, max_size=2))}
        deletes = {}
        for name in ("Token", "KB"):
            present = sorted(live[name].elements())
            chosen = draw(st.lists(st.sampled_from(present), max_size=2)) \
                if present else []
            budget = Counter(live[name])
            capped = []
            for item in chosen:
                if budget[item] > 0:
                    budget[item] -= 1
                    capped.append(item)
            deletes[name] = capped
            live[name].update(inserts[name])
            live[name].subtract(deletes[name])
        batches.append((inserts, deletes))
    return initial, batches


def signature(grounder):
    graph = grounder.graph
    variables = {v.key: v.evidence for v in graph.variables.values()}
    factors = sorted(
        (int(f.function), tuple(graph.variables[v].key for v in f.var_ids),
         graph.weights[f.weight_id].key)
        for f in graph.factors.values())
    return variables, factors


class TestIncrementalGroundingEqualsFresh:
    @settings(max_examples=50, deadline=None)
    @given(batch_sequence())
    def test_graph_matches_fresh_ground(self, scenario):
        initial, batches = scenario
        db = Database()
        program = new_program()
        program.create_relations(db)
        for name, rows in initial.items():
            db.insert(name, rows)
        incremental = Grounder(program, db)
        for inserts, deletes in batches:
            incremental.apply_changes(inserts=inserts, deletes=deletes)

        fresh_db = Database()
        fresh_program = new_program()
        fresh_program.create_relations(fresh_db)
        final = {name: Counter(rows) for name, rows in initial.items()}
        for inserts, deletes in batches:
            for name in final:
                final[name].update(inserts[name])
                final[name].subtract(deletes[name])
        for name, counter in final.items():
            fresh_db.insert(name, list(counter.elements()))
        fresh = Grounder(fresh_program, fresh_db)

        assert signature(incremental) == signature(fresh)

    @settings(max_examples=30, deadline=None)
    @given(batch_sequence())
    def test_derived_relation_matches_fresh(self, scenario):
        initial, batches = scenario
        db = Database()
        program = new_program()
        program.create_relations(db)
        for name, rows in initial.items():
            db.insert(name, rows)
        grounder = Grounder(program, db)
        for inserts, deletes in batches:
            grounder.apply_changes(inserts=inserts, deletes=deletes)
        # the derived Pair relation in the db equals recomputation from Token
        tokens_by_sentence = {}
        for s, t in db["Token"].distinct_rows():
            tokens_by_sentence.setdefault(s, set()).add(t)
        expected = set()
        for members in tokens_by_sentence.values():
            for t1 in members:
                for t2 in members:
                    if t1 < t2:
                        expected.add((t1, t2))
        assert set(db["Pair"].distinct_rows()) == expected
