"""The long-lived KBC service: one writer, many readers, durable commits.

:class:`KBService` wraps a :class:`~repro.serve.engine.ServeEngine` with the
three things a service needs that a batch pipeline doesn't:

* **a single-writer apply loop** (daemon thread) that drains a *bounded*
  ingest queue, coalesces operations into batches, and commits each batch
  as WAL-append → apply → publish.  The WAL append comes first, so any
  crash after it replays the batch on recovery;
* **versioned concurrent reads**: every commit publishes an immutable
  :class:`~repro.serve.snapshot.Snapshot`; readers grab the current
  reference (one atomic load) and query it without ever blocking on — or
  observing — an ingest in flight;
* **admission control**: the queue has a fixed capacity and either blocks
  producers (backpressure) or rejects with :class:`IngestRejected`.

Durability is checkpoint + WAL: a checkpoint is taken at bootstrap, every
``checkpoint_every`` batches, and on request; each successful checkpoint
compacts the WAL down to its uncovered tail, so recovery and reopen cost is
bounded by the tail, not total ingest history.  Periodic checkpoints run
*after* the triggering batch's waiters are released — the batch is already
committed, so a checkpoint failure is warned about and retried, never
reported as a batch failure.  Recovery (:meth:`KBService.open`) loads the
newest checkpoint and replays the WAL tail through the same deterministic
engine code path, reproducing the crashed service's marginals bit for bit.

Fault injection for crash testing: set ``service.fault_hooks["after_wal_append"]``
to a callable; it runs inside the commit path right after the WAL append and
before any state mutation.  Raising from it simulates a crash at the
worst moment — the batch is durable but unapplied.
"""

from __future__ import annotations

import collections
import pathlib
import queue
import threading
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro import obs
from repro.serve.checkpoint import CheckpointInfo, CheckpointManager
from repro.serve.config import ServeConfig
from repro.serve.engine import AppFactory, ServeEngine
from repro.serve.ops import IngestOp
from repro.serve.snapshot import Snapshot
from repro.serve.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compliance.manifest import ComplianceManifest
    from repro.compliance.policy import CompliancePolicy


class IngestRejected(RuntimeError):
    """Raised when admission control refuses an operation."""


class ServiceFailed(RuntimeError):
    """Raised when the apply loop has died; wraps the original error."""


@dataclass
class _Command:
    """One queue item: a data batch, a checkpoint, or a compliance scan."""

    kind: str                                   # "batch" | "checkpoint" | "scan"
    batch: tuple[IngestOp, ...] = ()
    payload: object = None                      # e.g. a scan's policy
    done: threading.Event = field(default_factory=threading.Event)
    result: object = None
    error: BaseException | None = None
    #: False opts this command out of coalescing entirely (it neither
    #: absorbs later commands nor folds into an earlier one).  The sharded
    #: router relies on this: folding two routed batches into one shard
    #: commit would make a later group's ops visible in an earlier group's
    #: snapshot — a torn multi-shard read.
    coalesce: bool = True

    def wait(self, timeout: float | None = None) -> object:
        if not self.done.wait(timeout):
            raise TimeoutError(f"{self.kind} not applied within {timeout}s")
        if self.error is not None:
            raise ServiceFailed(f"apply loop failed: {self.error}") \
                from self.error
        return self.result


class PendingCommit:
    """Handle for a batch submitted with ``wait=False``.

    The sharded router's reaper (and any asynchronous producer) holds one
    of these per shard touched by a batch: :meth:`wait` blocks until the
    shard's apply loop commits (or fails) the batch and returns the
    snapshot that includes it.
    """

    __slots__ = ("_command",)

    def __init__(self, command: _Command) -> None:
        self._command = command

    def wait(self, timeout: float | None = None) -> Snapshot:
        """Block until committed; the snapshot including this batch."""
        return self._command.wait(timeout)

    @property
    def done(self) -> bool:
        """True once the batch has been committed or failed."""
        return self._command.done.is_set()

    @property
    def error(self) -> BaseException | None:
        return self._command.error


class KBService:
    """A DeepDive application served online.  See the module docstring."""

    def __init__(self, engine: ServeEngine, directory: str | pathlib.Path,
                 wal: WriteAheadLog, checkpoints: CheckpointManager,
                 snapshot: Snapshot, batches_since_checkpoint: int = 0,
                 history: Sequence[Snapshot] = ()) -> None:
        self.engine = engine
        self.config = engine.config
        self.directory = pathlib.Path(directory)
        self.wal = wal
        self.checkpoints = checkpoints
        self._snapshot = snapshot
        # recently published snapshots, newest last, for snapshot_at();
        # guarded by a lock because publishes (apply loop) and versioned
        # reads (reader threads) would otherwise race the deque iteration
        self._history_lock = threading.Lock()
        self._history: collections.deque[Snapshot] = collections.deque(
            maxlen=max(1, self.config.snapshot_history))
        for past in history:
            self._history.append(past)
        if not self._history or self._history[-1] is not snapshot:
            self._history.append(snapshot)
        self._facade = None                      # lazy KBClient, reads only
        self._queue: queue.Queue[_Command] = queue.Queue(
            maxsize=self.config.queue_capacity)
        # commands pulled during coalescing that must run before new ones
        self._requeue: collections.deque[_Command] = collections.deque()
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None
        self._closed = False
        # stop is signalled out-of-band (the loop polls this), never through
        # the bounded queue — a full queue cannot wedge shutdown
        self._stop_event = threading.Event()
        self._batches_since_checkpoint = batches_since_checkpoint
        #: test/chaos hooks run inside the commit path; see module docstring
        self.fault_hooks: dict[str, Callable] = {}
        # Acquire a warm worker pool for the service's lifetime when the
        # application's engine config asks for parallelism: workers stay
        # warm across every batch this service commits, and stop()
        # releases the pin (the registry keeps the pool itself warm for
        # the next service or caller).  The pool is looked up under the app
        # config's ``pool_owner`` partition token — ``None`` shares the
        # process-wide pool, a sharded service's per-shard token gets
        # private workers — so the pin here, the NLP fan-out, and replica
        # sampling all land on the same pool.
        self._pool = None
        app_config = getattr(getattr(engine, "app", None), "config", None)
        if app_config is not None and app_config.workers > 0 \
                and app_config.pool_warm:
            from repro.parallel import acquire_pool
            self._pool = acquire_pool(app_config.workers,
                                      mode=app_config.parallel_mode,
                                      owner=app_config.pool_owner)
            engine.attach_pool(self._pool)

    # ------------------------------------------------------------ constructors
    @classmethod
    def create(cls, directory: str | pathlib.Path, app_factory: AppFactory,
               bootstrap_ops: Sequence[IngestOp],
               config: ServeConfig | None = None,
               run_kwargs: dict | None = None,
               start: bool = True) -> "KBService":
        """Bootstrap a brand-new service in ``directory``.

        Loads the initial corpus/KB, runs full learning + inference,
        publishes version 0, and writes the bootstrap checkpoint before
        accepting any ingest — so recovery never needs to redo bootstrap.
        """
        directory = pathlib.Path(directory)
        config = config if config is not None else ServeConfig()
        engine = ServeEngine(app_factory, config=config, run_kwargs=run_kwargs)
        snapshot = engine.bootstrap(list(bootstrap_ops))
        wal = WriteAheadLog(directory / "ingest.wal", fsync=config.wal_fsync)
        checkpoints = CheckpointManager(directory / "checkpoints",
                                        keep=config.keep_checkpoints)
        checkpoints.save(engine.checkpoint_payload(inline_database=False),
                         lsn=wal.last_lsn, database=engine.app.db)
        service = cls(engine, directory, wal, checkpoints, snapshot)
        if start:
            service.start()
        return service

    @classmethod
    def open(cls, directory: str | pathlib.Path, app_factory: AppFactory,
             config: ServeConfig | None = None,
             run_kwargs: dict | None = None,
             start: bool = True) -> "KBService":
        """Recover a service from ``directory``: newest checkpoint + WAL tail.

        Replayed batches run through the same deterministic engine path the
        original commits used, so the recovered marginals are bit-identical
        to what the crashed service had (or would have) published.
        """
        directory = pathlib.Path(directory)
        config = config if config is not None else ServeConfig()
        checkpoints = CheckpointManager(directory / "checkpoints",
                                        keep=config.keep_checkpoints)
        payload = checkpoints.load()
        engine = ServeEngine.restore(payload, app_factory, config=config,
                                     run_kwargs=run_kwargs)
        wal = WriteAheadLog(directory / "ingest.wal", fsync=config.wal_fsync)
        checkpoint_lsn = int(payload["lsn"])
        snapshot = engine.current_snapshot(lsn=checkpoint_lsn)
        history = [snapshot]
        replayed = 0
        with obs.span("serve.recovery", checkpoint_lsn=checkpoint_lsn) as sp:
            for record in wal.replay(after_lsn=checkpoint_lsn):
                snapshot = engine.apply_batch(list(record.batch), record.lsn)
                history.append(snapshot)
                replayed += 1
            sp.set(replayed=replayed)
        service = cls(engine, directory, wal, checkpoints, snapshot,
                      batches_since_checkpoint=replayed, history=history)
        if start:
            service.start()
        return service

    # ---------------------------------------------------------------- ingest
    def submit(self, op: IngestOp,
               timeout: float | None = None) -> PendingCommit:
        """Queue one operation (coalesced into a batch by the apply loop).

        Applies the configured admission policy when the queue is full:
        ``"block"`` waits (up to ``timeout``), ``"reject"`` raises
        immediately.  Returns a :class:`PendingCommit` handle for callers
        that want to await (or inspect) the commit.
        """
        command = _Command("batch", (op,))
        self._enqueue(command, timeout)
        return PendingCommit(command)

    def ingest(self, ops: Iterable[IngestOp], wait: bool = True,
               timeout: float | None = None,
               coalesce: bool = True) -> Snapshot | PendingCommit:
        """Queue ``ops`` as one explicit batch (one WAL record, one commit).

        With ``wait=True`` blocks until the batch is applied and returns the
        snapshot that includes it; otherwise returns a
        :class:`PendingCommit` immediately (the sharded router fans a batch
        out this way and awaits the per-shard handles).  ``coalesce=False``
        keeps this batch out of the apply loop's command folding in both
        directions — the router needs each routed batch to commit exactly
        as submitted so its group snapshots are never torn.
        """
        command = _Command("batch", tuple(ops), coalesce=coalesce)
        self._enqueue(command, timeout)
        if wait:
            return command.wait(timeout)
        return PendingCommit(command)

    def _enqueue(self, command: _Command, timeout: float | None) -> None:
        self._check_alive()
        try:
            if self.config.admission == "reject":
                self._queue.put_nowait(command)
            else:
                self._queue.put(command, timeout=timeout)
        except queue.Full:
            if obs.enabled():
                obs.count("serve.ingest.rejected")
            raise IngestRejected(
                f"ingest queue full ({self.config.queue_capacity} pending) "
                f"under {self.config.admission!r} admission") from None
        # the loop may have died — and drained the queue — between the
        # liveness check above and the put; in that window our command
        # would never be completed, so re-check and fail it ourselves
        # (queue operations are locked, so a concurrent drain is safe)
        if self._failure is not None:
            self._drain_failed()
            self._check_alive()
        elif self._closed and \
                (self._thread is None or not self._thread.is_alive()):
            self._drain_failed(ServiceFailed("service is stopped"))
            self._check_alive()
        if obs.enabled():
            obs.count("serve.ingest.submitted")
            obs.gauge("serve.queue.depth", self._queue.qsize())

    def flush(self, timeout: float | None = None) -> Snapshot:
        """Wait until everything queued so far is applied; returns the
        snapshot current at that point."""
        command = _Command("batch", ())          # empty batch = barrier
        self._enqueue(command, timeout)
        command.wait(timeout)
        return self._read_snapshot()

    def checkpoint(self, timeout: float | None = None) -> CheckpointInfo:
        """Request a checkpoint from the apply loop and wait for it."""
        command = _Command("checkpoint")
        self._enqueue(command, timeout)
        return command.wait(timeout)

    def scan(self, policy: "CompliancePolicy | None" = None,
             timeout: float | None = None) -> "ComplianceManifest":
        """Audit the *raw* store: run the compliance scanner over every
        relation and return its :class:`~repro.compliance.manifest.
        ComplianceManifest`.

        The scan rides the apply loop (like :meth:`checkpoint`), so it
        observes a consistent store with no batch half-applied under it.
        It reads the raw relations — unlike published snapshots it is not
        scrubbed, which is the point: operators use it to discover what
        PII the store actually holds before choosing a policy.  ``policy``
        defaults to the service's configured compliance policy (detectors
        and sampling options are honoured; actions are reported, not
        applied).
        """
        command = _Command("scan", payload=policy)
        self._enqueue(command, timeout)
        return command.wait(timeout)

    # ----------------------------------------------------------------- reads
    def _read_snapshot(self) -> Snapshot:
        """The current published version (never blocks on ingest).

        Facade plumbing: :class:`~repro.serve.client.KBClient` reads
        through this accessor; application code should hold a client.
        """
        started = perf_counter()
        current = self._snapshot                 # one atomic reference load
        if obs.enabled():
            obs.observe("serve.read.seconds", perf_counter() - started)
            obs.count("serve.reads")
        return current

    def snapshot_at(self, lsn: int) -> Snapshot:
        """The retained published snapshot whose LSN is exactly ``lsn``.

        The service keeps the last ``config.snapshot_history`` published
        versions (plus everything replayed at open); the sharded router's
        LSN-vector reads resolve against these.  Raises :class:`KeyError`
        when the requested version has aged out of the history window.
        """
        with self._history_lock:
            retained = list(self._history)
        for past in reversed(retained):
            if past.lsn == lsn:
                return past
        raise KeyError(
            f"no retained snapshot at lsn {lsn}; history covers "
            f"{[past.lsn for past in retained]} "
            f"(snapshot_history={self.config.snapshot_history})")

    def lsn_vector(self) -> tuple[int, ...]:
        """This service's published position as a length-1 LSN vector."""
        return (self._read_snapshot().lsn,)

    def client(self) -> "KBClient":
        """The read/write facade over this service (cached).

        The sanctioned query surface: ``service.client().query(...)``
        behaves identically whether the backend is this single service or
        a :class:`~repro.serve.shard.ShardedKBService`.
        """
        if self._facade is None:
            from repro.serve.client import KBClient
            self._facade = KBClient(self)
        return self._facade

    def snapshot(self) -> Snapshot:
        """Deprecated direct read; use :meth:`client` / ``KBClient``."""
        warnings.warn(
            "reading KBService.snapshot() directly is deprecated; go "
            "through the KBClient facade (service.client().snapshot())",
            DeprecationWarning, stacklevel=2)
        return self.client().snapshot()

    def query(self, relation: str, threshold: float | None = None) -> set:
        """Deprecated direct read; use :meth:`client` / ``KBClient``."""
        warnings.warn(
            "reading KBService.query() directly is deprecated; go through "
            "the KBClient facade (service.client().query(...))",
            DeprecationWarning, stacklevel=2)
        return self.client().query(relation, threshold)

    def marginal(self, key, default: float | None = None) -> float:
        """Deprecated direct read; use :meth:`client` / ``KBClient``."""
        warnings.warn(
            "reading KBService.marginal() directly is deprecated; go "
            "through the KBClient facade (service.client().marginal(...))",
            DeprecationWarning, stacklevel=2)
        return self.client().marginal(key, default)

    # ------------------------------------------------------------ apply loop
    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._check_alive()
        self._thread = threading.Thread(target=self._apply_loop,
                                        name="repro-serve-apply", daemon=True)
        self._thread.start()

    def stop(self, timeout: float | None = 30.0,
             checkpoint: bool = False) -> None:
        """Drain the queue, optionally checkpoint, and stop the loop.

        Shutdown is requested out-of-band (an event the loop polls between
        queue reads), never by enqueueing through the bounded queue — so a
        full queue with blocked producers can never wedge the stop call
        itself.  The loop keeps committing until the queue is empty, then
        exits; anything that raced in after it exited has its waiter
        failed rather than stranded.
        """
        loop_alive = self._thread is not None and self._thread.is_alive()
        if checkpoint and loop_alive and self._failure is None:
            self.checkpoint(timeout)
        self._closed = True                     # new work is refused now
        self._stop_event.set()
        if loop_alive:
            self._thread.join(timeout)
        self._drain_failed(self._failure if self._failure is not None
                           else ServiceFailed("service is stopped"))
        self.wal.close()
        if self._pool is not None:               # idempotent un-pin
            from repro.parallel import release_pool
            release_pool(self._pool)
            self.engine.attach_pool(None)
            self._pool = None

    def __enter__(self) -> "KBService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _check_alive(self) -> None:
        if self._failure is not None:
            raise ServiceFailed(
                f"apply loop died: {self._failure}") from self._failure
        if self._closed:
            raise ServiceFailed("service is stopped")

    def _apply_loop(self) -> None:
        while True:
            command = self._next_command()
            if command is None:                  # stop requested, queue dry
                return
            folded: list[_Command] = []
            if command.kind == "batch":
                folded = self._coalesce(command)
            try:
                self._commit(command)
            except BaseException as error:      # simulated crashes included
                if command.kind in ("checkpoint", "scan"):
                    # a failed checkpoint save (or audit scan) leaves the
                    # previous checkpoint and all serving state intact:
                    # fail the requester, keep serving
                    command.error = error
                    command.done.set()
                    continue
                self._failure = error
                for failed in [command] + folded:
                    failed.error = error
                    failed.done.set()
                self._drain_failed()
                return
            for member in folded:                # folded ops share the result
                member.result = command.result
                member.done.set()
            command.done.set()
            if command.kind == "batch" and command.batch:
                self._maybe_periodic_checkpoint()
            if obs.enabled():
                obs.gauge("serve.queue.depth", self._queue.qsize())

    def _next_command(self) -> _Command | None:
        """The next command to run, or None once a stop has been requested
        and the queue is fully drained."""
        while True:
            if self._requeue:
                try:
                    return self._requeue.popleft()
                except IndexError:               # raced with a drain
                    pass
            try:
                return self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop_event.is_set():
                    return None

    def _coalesce(self, command: _Command) -> list[_Command]:
        """Fold immediately-available single-op batch commands into
        ``command`` (one WAL record, one commit), up to ``max_batch_ops``.
        Control commands and explicit multi-op batches stay queued — they
        commit on their own, in order, on the next loop iterations."""
        folded: list[_Command] = []
        if not command.coalesce:
            return folded
        while len(command.batch) < self.config.max_batch_ops:
            try:
                nxt = self._queue.get_nowait()
            except queue.Empty:
                break
            if nxt.kind == "batch" and len(nxt.batch) == 1 and nxt.coalesce:
                command.batch = command.batch + nxt.batch
                folded.append(nxt)
            else:
                # put it back for the next iteration; capacity is free
                # because this loop is the only consumer
                self._requeue.append(nxt)
                break
        return folded

    def _commit(self, command: _Command) -> None:
        if command.kind == "checkpoint":
            command.result = self._do_checkpoint()
            return
        if command.kind == "scan":
            # run inside the apply loop so the scanner sees a quiescent
            # store — no batch is ever half-applied under it
            command.result = self.engine.scan(command.payload)
            return
        if not command.batch:                    # flush barrier
            return
        started = perf_counter()
        with obs.span("serve.commit", ops=len(command.batch)) as sp:
            lsn = self.wal.append(command.batch)
            hook = self.fault_hooks.get("after_wal_append")
            if hook is not None:
                hook(lsn, command.batch)
            snapshot = self.engine.apply_batch(list(command.batch), lsn)
            with self._history_lock:             # retained for snapshot_at
                self._history.append(snapshot)
            self._snapshot = snapshot            # the publish: one reference
            command.result = snapshot
            sp.set(lsn=lsn, version=snapshot.version)
        if obs.enabled():
            obs.observe("serve.commit.seconds", perf_counter() - started)
            obs.count("serve.ops.applied", len(command.batch))
        self._batches_since_checkpoint += 1

    def _maybe_periodic_checkpoint(self) -> None:
        """Periodic checkpoint cadence, run *after* the batch's waiters are
        released: the batch is already WAL-committed, applied, and
        published, so a checkpoint failure must never surface as a batch
        failure (that would invite a duplicate retry of a committed
        batch).  It is warned about and retried after the next batch."""
        if not self.config.checkpoint_every:
            return
        if self._batches_since_checkpoint < self.config.checkpoint_every:
            return
        try:
            self._do_checkpoint()
        except Exception as error:
            if obs.enabled():
                obs.count("serve.checkpoint.failed")
            warnings.warn(
                f"periodic checkpoint failed ({error!r}); serving "
                f"continues and the checkpoint is retried after the next "
                f"batch")

    def _do_checkpoint(self) -> CheckpointInfo:
        with obs.span("serve.checkpoint", lsn=self.wal.last_lsn):
            info = self.checkpoints.save(
                self.engine.checkpoint_payload(inline_database=False),
                lsn=self.wal.last_lsn, database=self.engine.app.db)
            # records the checkpoint covers will never replay again; drop
            # them so open/recovery cost stays bounded by the WAL tail
            self.wal.compact(info.lsn)
        self._batches_since_checkpoint = 0
        return info

    def _drain_failed(self, error: BaseException | None = None) -> None:
        """Fail every queued waiter instead of leaving producers blocked
        forever.  Called from the apply loop after a failure, and from
        producers/stop when they lose a race with the loop's death — the
        queue and deque operations are locked, so concurrent drains are
        safe."""
        error = error if error is not None else self._failure
        while True:
            try:
                command = self._requeue.popleft()
            except IndexError:
                break
            command.error = error
            command.done.set()
        while True:
            try:
                command = self._queue.get_nowait()
            except queue.Empty:
                return
            command.error = error
            command.done.set()
