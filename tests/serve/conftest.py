"""Shared fixtures for the serving-layer tests.

One small but complete KBC application (mention extraction, a learned
feature rule, distant supervision from good/bad token lists) is used across
the suite.  ``make_app_factory`` matches the :data:`repro.serve.AppFactory`
contract: it builds a *fresh, empty* app each call, with any accumulated
rule deltas appended to the program.
"""

import pytest

from repro import DeepDive, Document
from repro.inference import LearningOptions
from repro.serve import ServeConfig, add_documents, add_rows

PROGRAM = """
Content(s text, content text).
NameMention(s text, m text, token text, position int).
GoodName?(m text).
GoodList(token text).
BadList(token text).

GoodName(m) :-
    NameMention(s, m, t, p), Content(s, content)
    weight = name_features(t, content).

GoodName_Ev(m, true) :- NameMention(s, m, t, p), GoodList(t).
GoodName_Ev(m, false) :- NameMention(s, m, t, p), BadList(t).
"""

GOOD = ["apple", "plum", "pear", "fig", "grape", "melon"]
BAD = ["rust", "mold", "rot", "slime", "blight", "decay"]


def extractor(sentence):
    rows = []
    for position, token in enumerate(sentence.tokens):
        lower = token.lower()
        if lower in GOOD + BAD:
            rows.append((sentence.key, f"{sentence.key}:{position}",
                         lower, position))
    return rows


def make_app_factory(seed=0):
    def app_factory(extra_rules=""):
        source = PROGRAM + ("\n" + extra_rules if extra_rules else "")
        app = DeepDive(source, seed=seed)
        app.register_udf("name_features",
                         lambda t, content: [f"word:{t}",
                                             "fresh" if t in GOOD else "spoiled"])
        app.add_extractor("NameMention", extractor)
        app.add_extractor("Content", lambda s: [(s.key, s.text)])
        return app
    return app_factory


def bootstrap_ops():
    docs = [Document(f"d{i}", f"the {g} and the {b} sat there .")
            for i, (g, b) in enumerate(zip(GOOD[:4], BAD[:4]))]
    return [
        add_documents(docs),
        add_rows("GoodList", [(g,) for g in GOOD[:3]]),
        add_rows("BadList", [(b,) for b in BAD[:3]]),
    ]


def keys_for_token(app, token):
    """GoodName variable keys whose mention carries ``token``."""
    return [("GoodName", (m,))
            for (_s, m, t, _p) in app.db["NameMention"].distinct_rows()
            if t == token]


RUN_KWARGS = dict(threshold=0.7,
                  learning=LearningOptions(epochs=40, seed=0),
                  num_samples=120, burn_in=20)


@pytest.fixture
def app_factory():
    return make_app_factory()


@pytest.fixture
def fast_config():
    """A service config tuned for tests: small batches, cheap refreshes."""
    return ServeConfig(checkpoint_every=0, refresh_samples=40,
                       refresh_burn_in=10)
