"""The user-facing DDlog program object: parsed rules plus registered UDFs."""

from __future__ import annotations

from typing import Any, Callable

from repro.datastore import Database, Schema
from repro.ddlog.ast import Declaration, ProgramAst, Rule, RuleKind
from repro.ddlog.compiler import Udf, program_schemas
from repro.ddlog.parser import parse_program
from repro.ddlog.validate import validate_program


class DDlogProgram:
    """A parsed DDlog program with its UDF registry.

    >>> program = DDlogProgram.parse('''
    ...     PersonCandidate(s text, m text).
    ...     MarriedCandidate?(m1 text, m2 text).
    ...     MarriedCandidate(m1, m2) :-
    ...         PersonCandidate(s, m1), PersonCandidate(s, m2), [m1 < m2]
    ...         weight = phrase(m1, m2).
    ... ''')  # doctest: +SKIP
    """

    def __init__(self, ast: ProgramAst) -> None:
        self.ast = ast
        self.declarations: dict[str, Declaration] = {d.name: d for d in ast.declarations}
        self.udfs: dict[str, Udf] = {}

    @classmethod
    def parse(cls, source: str) -> "DDlogProgram":
        """Parse and structurally validate ``source``."""
        ast = parse_program(source)
        validate_program(ast, udfs=None)
        return cls(ast)

    # ------------------------------------------------------------------- UDFs
    def udf(self, name: str, returns: str = "text") -> Callable[[Callable], Callable]:
        """Decorator registering a UDF: ``@program.udf('phrase')``."""
        def register(fn: Callable[..., Any]) -> Callable[..., Any]:
            self.register_udf(name, fn, returns)
            return fn
        return register

    def register_udf(self, name: str, fn: Callable[..., Any],
                     returns: str = "text") -> None:
        if name in self.udfs:
            raise ValueError(f"UDF {name!r} already registered")
        self.udfs[name] = Udf(name, fn, returns)

    def validate(self) -> None:
        """Full validation including UDF registration checks."""
        validate_program(self.ast, udfs=set(self.udfs))

    # ------------------------------------------------------------------ rules
    def rules(self, kind: RuleKind | None = None) -> list[Rule]:
        if kind is None:
            return list(self.ast.rules)
        return [rule for rule in self.ast.rules if rule.kind == kind]

    @property
    def derivation_rules(self) -> list[Rule]:
        return self.rules(RuleKind.DERIVATION)

    @property
    def feature_rules(self) -> list[Rule]:
        return self.rules(RuleKind.FEATURE)

    @property
    def supervision_rules(self) -> list[Rule]:
        return self.rules(RuleKind.SUPERVISION)

    @property
    def inference_rules(self) -> list[Rule]:
        return self.rules(RuleKind.INFERENCE)

    def variable_relations(self) -> list[Declaration]:
        return [d for d in self.ast.declarations if d.is_variable]

    # --------------------------------------------------------------- database
    def create_relations(self, db: Database) -> None:
        """Create every declared relation (and implied ``_Ev`` relations) that
        does not already exist in ``db``."""
        for name, columns in program_schemas(self.ast).items():
            if name not in db:
                db.create(name, Schema.of(**dict(columns)))
