"""Tests for the entity-linking substrate."""

import pytest

from repro.el import AliasTable, EntityLinker, link_mentions, normalize


@pytest.fixture
def table():
    table = AliasTable()
    table.add_many([
        ("E_obama", "Barack Obama"),
        ("E_obama", "B. Obama"),
        ("E_obama", "President Obama"),
        ("E_michelle", "Michelle Obama"),
        ("E_springfield_il", "Springfield"),
        ("E_springfield_ma", "Springfield"),
    ])
    return table


class TestNormalize:
    def test_lowercase_and_punctuation(self):
        assert normalize("B. Obama!") == "b obama"

    def test_whitespace_collapsed(self):
        assert normalize("  a   b ") == "a b"


class TestAliasTable:
    def test_aliases_of(self, table):
        assert "B. Obama" in table.aliases_of("E_obama")

    def test_num_entities(self, table):
        assert table.num_entities == 4

    def test_exact_lookup(self, table):
        assert table.exact("Barack Obama") == {"E_obama"}

    def test_ambiguous_alias(self, table):
        assert table.normalized_match("springfield") == {
            "E_springfield_il", "E_springfield_ma"}


class TestEntityLinker:
    def test_exact_match_scores_one(self, table):
        linker = EntityLinker(table)
        candidates = linker.link("Barack Obama")
        assert candidates[0].entity == "E_obama"
        assert candidates[0].score == 1.0
        assert candidates[0].method == "exact"

    def test_normalized_match(self, table):
        linker = EntityLinker(table)
        candidates = linker.link("barack obama")
        assert candidates[0].entity == "E_obama"
        assert candidates[0].method == "normalized"

    def test_token_overlap_match(self, table):
        linker = EntityLinker(table)
        candidates = linker.link("Obama")
        entities = {c.entity for c in candidates}
        assert "E_obama" in entities
        assert all(c.method == "overlap" for c in candidates)

    def test_no_match(self, table):
        assert EntityLinker(table).link("Zebra") == []

    def test_ambiguity_preserved(self, table):
        candidates = EntityLinker(table).link("Springfield")
        assert {c.entity for c in candidates} == {
            "E_springfield_il", "E_springfield_ma"}

    def test_top_limits(self, table):
        assert len(EntityLinker(table).link("Springfield", top=1)) == 1

    def test_min_overlap_threshold(self, table):
        strict = EntityLinker(table, min_overlap=0.9)
        # "Obama" vs "Barack Obama": jaccard 1/2 -> filtered when strict
        assert all(c.method != "overlap" for c in strict.link("Obama"))

    def test_ranking_deterministic(self, table):
        linker = EntityLinker(table)
        assert linker.link("Springfield") == linker.link("Springfield")


class TestLinkMentions:
    def test_bulk_linking(self, table):
        linker = EntityLinker(table)
        rows = link_mentions([("m1", "Barack Obama"), ("m2", "Zebra"),
                              ("m3", "Springfield")], linker)
        assert ("m1", "E_obama") in rows
        assert all(mid != "m2" for mid, _ in rows)
        springfield_rows = [r for r in rows if r[0] == "m3"]
        assert len(springfield_rows) == 2

    def test_min_score_filters(self, table):
        linker = EntityLinker(table)
        rows = link_mentions([("m1", "Obama")], linker, min_score=0.99)
        assert rows == []
