"""Parallel NUMA replicas: bit-identical determinism and failure fallback."""

import numpy as np
import pytest

import repro.inference.numa as numa_module
from repro import obs
from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.inference import NumaConfig, NumaGibbs
from repro.parallel import run_replicas_parallel


def chain_graph(n=24, weight=0.8):
    graph = FactorGraph()
    prev = graph.variable("v0")
    graph.add_factor(FactorFunction.IS_TRUE, [prev], graph.weight("u", 0.5))
    for i in range(1, n):
        cur = graph.variable(f"v{i}")
        graph.add_factor(FactorFunction.EQUAL, [prev, cur],
                         graph.weight("c", weight))
        prev = cur
    return CompiledGraph(graph)


def run(compiled, workers, **config_kwargs):
    config_kwargs.setdefault("pool_min_work", 0)   # tiny graphs: still dispatch
    config = NumaConfig(sockets=4, sync_every=5, workers=workers,
                        **config_kwargs)
    return NumaGibbs(compiled, config, seed=3).run(num_samples=20, burn_in=5)


class TestDeterminism:
    """Satellite: parallel == sequential, bit for bit, at 2 and 4 workers."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_marginals_bit_identical(self, workers):
        compiled = chain_graph()
        sequential = run(compiled, workers=0)
        parallel = run(compiled, workers=workers)
        assert np.array_equal(sequential.marginals, parallel.marginals)
        assert parallel.samples_drawn == sequential.samples_drawn
        assert parallel.modeled_time == sequential.modeled_time
        assert parallel.per_socket_cost == sequential.per_socket_cost

    def test_more_workers_than_sockets_clamped(self):
        compiled = chain_graph(n=10)
        sequential = run(compiled, workers=0)
        parallel = run(compiled, workers=16)
        assert np.array_equal(sequential.marginals, parallel.marginals)

    def test_outcome_totals_match_sequential_loop(self):
        compiled = chain_graph(n=10)
        sampler = NumaGibbs(compiled, NumaConfig(sockets=3, sync_every=2),
                            seed=9)
        reference = sampler._run_replicas_sequential(total_sweeps=12,
                                                     burn_in=4)
        outcome = run_replicas_parallel(
            compiled, sockets=3, seed=9, engine="chromatic",
            total_sweeps=12, burn_in=4, sync_every=2, workers=2)
        assert outcome is not None
        assert np.array_equal(outcome.totals, reference.totals)
        assert outcome.socket_samples == reference.socket_samples


class TestFailureFallback:
    def test_worker_exception_warns_and_returns_none(self):
        compiled = chain_graph(n=8)
        with pytest.warns(RuntimeWarning, match="falling back"):
            outcome = run_replicas_parallel(
                compiled, sockets=2, seed=0, engine="no-such-engine",
                total_sweeps=4, burn_in=1, workers=2)
        assert outcome is None

    def test_deadline_warns_and_returns_none(self):
        compiled = chain_graph(n=8)
        with pytest.warns(RuntimeWarning, match="falling back"):
            outcome = run_replicas_parallel(
                compiled, sockets=2, seed=0, engine="chromatic",
                total_sweeps=4, burn_in=1, workers=2, timeout=1e-6)
        assert outcome is None

    def test_numa_gibbs_falls_back_to_sequential(self, monkeypatch):
        """A dead parallel backend must not change NumaGibbs results."""
        compiled = chain_graph()
        sequential = run(compiled, workers=0)
        monkeypatch.setattr(numa_module, "run_replicas_parallel",
                            lambda *args, **kwargs: None)
        monkeypatch.setattr(numa_module, "get_pool",
                            lambda *args, **kwargs: None)
        for pool_warm in (True, False):
            fallback = run(compiled, workers=4, pool_warm=pool_warm)
            assert np.array_equal(sequential.marginals, fallback.marginals)
            assert fallback.samples_drawn == sequential.samples_drawn

    def test_unavailable_mode_warns_and_falls_back(self, monkeypatch):
        import repro.parallel.pool as pool_module
        monkeypatch.setattr(pool_module.mp, "get_all_start_methods",
                            lambda: ["spawn"])
        compiled = chain_graph(n=8)
        with pytest.warns(RuntimeWarning, match="unavailable"):
            outcome = run_replicas_parallel(
                compiled, sockets=2, seed=0, engine="chromatic",
                total_sweeps=4, burn_in=1, workers=2, mode="fork")
        assert outcome is None


class TestObservability:
    def test_worker_spans_and_metrics_adopted(self):
        compiled = chain_graph(n=10)
        collector = obs.Collector()
        with obs.installed(collector):
            result = run(compiled, workers=2)
        assert result.samples_drawn > 0
        profile = obs.Profile(spans=collector.roots,
                              metrics=collector.metrics.snapshot())
        assert profile.find("numa.parallel_replicas") is not None
        # each worker shipped its replica span back to the parent trace
        assert profile.span_total("numa.replica_worker") > 0.0
