"""E6 -- Section 4.2: sampling vs variational materialization for
incremental inference.

Paper artifact: "We found these two approaches are sensitive to changes in
the size of the factor graph, the sparsity of correlations, and the
anticipated number of future changes.  The performance varies by up to two
orders of magnitude in different points of the space.  To automatically
choose the materialization strategy, we use a simple rule-based optimizer."

We sweep all three axes, measure each strategy's *work units* per update
sequence, verify the crossover (each strategy wins somewhere, with a large
spread across the space), and score the optimizer's decisions.
"""

from __future__ import annotations

import numpy as np
from conftest import once

from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.grounding import (SamplingMaterialization,
                             VariationalMaterialization, choose_strategy)


def make_graph(num_variables: int, correlation_density: float,
               seed: int = 0) -> CompiledGraph:
    """KBC graph with tunable pairwise-correlation density (edges/variable)."""
    rng = np.random.default_rng(seed)
    graph = FactorGraph()
    for i in range(num_variables):
        v = graph.variable(i)
        weight = graph.weight(("f", int(rng.integers(0, 50))),
                              float(rng.normal(0, 0.8)))
        graph.add_factor(FactorFunction.IS_TRUE, [v], weight)
    num_edges = int(num_variables * correlation_density)
    for _ in range(num_edges):
        a, b = rng.integers(0, num_variables, size=2)
        if a == b:
            continue
        graph.add_factor(FactorFunction.EQUAL,
                         [graph.variable(int(a)), graph.variable(int(b))],
                         graph.weight("corr", 0.4))
    return CompiledGraph(graph)


def run_cell(num_variables: int, density: float, num_updates: int,
             change_size: int, seed: int = 0) -> dict:
    """Total work for each strategy over a sequence of weight-change updates."""
    compiled = make_graph(num_variables, density, seed)
    rng = np.random.default_rng(seed + 1)

    sampling = SamplingMaterialization(compiled, seed=seed,
                                       num_samples=50, burn_in=10)
    variational = VariationalMaterialization(compiled)

    sampling_work = 0.0
    variational_work = 0.0
    for _ in range(num_updates):
        changed = {int(v) for v in rng.integers(0, num_variables,
                                                size=change_size)}
        for var in changed:      # perturb that variable's unary weight
            mask = compiled.unary_var == var
            compiled.weight_values[compiled.unary_weight[mask]] += \
                float(rng.normal(0, 0.1))
        sampling_work += sampling.update(changed, radius=1,
                                         num_samples=20, burn_in=5).work
        variational_work += variational.update(changed).work

    choice = choose_strategy(compiled, expected_updates=num_updates,
                             expected_change_size=change_size)
    winner = "sampling" if sampling_work <= variational_work else "variational"
    return {
        "sampling": sampling_work,
        "variational": variational_work,
        "winner": winner,
        "choice": choice.strategy,
    }


def test_e6_materialization_sweep(benchmark, reporter):
    cells = [
        # (num_variables, density, num_updates, change_size)
        (800, 0.1, 2, 4),        # sparse, few small changes -> sampling
        (800, 0.1, 20, 4),       # many small changes
        (800, 0.1, 5, 200),      # mid-size changes
        (600, 0.1, 8, 600),      # global changes -> variational
        (400, 1.5, 2, 4),        # dense correlations, few changes
        (400, 1.5, 6, 400),      # dense + global changes -> variational
        (200, 0.5, 5, 10),       # small graph
    ]
    outcomes = []

    def experiment():
        for cell in cells:
            outcomes.append((cell, run_cell(*cell)))
        return outcomes

    once(benchmark, experiment)

    rows = []
    correct = 0
    ratios = []
    for (n, density, updates, size), outcome in outcomes:
        ratio = outcome["sampling"] / max(outcome["variational"], 1.0)
        ratios.append(max(ratio, 1.0 / max(ratio, 1e-9)))
        agree = outcome["choice"] == outcome["winner"]
        correct += agree
        rows.append([n, density, updates, size,
                     f"{outcome['sampling']:,.0f}",
                     f"{outcome['variational']:,.0f}",
                     outcome["winner"], outcome["choice"],
                     "yes" if agree else "no"])

    reporter.line("E6 / Sec 4.2 -- incremental-inference materialization")
    reporter.line("paper: performance varies by up to two orders of magnitude;")
    reporter.line("a simple rule-based optimizer picks the strategy")
    reporter.line()
    reporter.table(["vars", "density", "updates", "change size",
                    "sampling work", "variational work", "winner",
                    "optimizer", "agree"], rows)
    spread = max(ratios)
    reporter.line()
    reporter.line(f"max work ratio across the space: {spread:,.0f}x "
                  f"(paper: up to 100x)")
    reporter.line(f"optimizer agreement: {correct}/{len(cells)}")

    winners = {outcome["winner"] for _, outcome in outcomes}
    assert winners == {"sampling", "variational"}    # a real crossover exists
    assert spread > 10                               # large spread, as claimed
    assert correct >= len(cells) - 1                 # optimizer mostly right
