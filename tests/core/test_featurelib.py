"""Tests for the Section-5.3 feature library."""

import pytest

from repro.core import STANDARD_TEMPLATES, FeatureLibrary, FeatureTemplate
from repro.eval.error_analysis import FeatureStat

SENTENCE = "Barack and his wife Michelle attended the gala ."


class TestTemplates:
    def test_standard_templates_cover_core_families(self):
        names = {t.name for t in STANDARD_TEMPLATES}
        assert {"between", "left", "right", "dist", "shape"} <= names

    def test_between_template(self):
        library = FeatureLibrary()
        features = library.udf(0, 4, SENTENCE)
        assert "between:and his wife" in features

    def test_bigram_template(self):
        library = FeatureLibrary()
        features = library.udf(0, 4, SENTENCE)
        assert "bet_bigram:his wife" in features

    def test_distance_template(self):
        library = FeatureLibrary()
        features = library.udf(0, 4, SENTENCE)
        assert "dist:4" in features

    def test_shape_template(self):
        library = FeatureLibrary()
        features = library.udf(0, 4, SENTENCE)
        # tokens are lowercased before templates run, so shapes are xxxx
        assert any(f.startswith("shape:") for f in features)

    def test_argument_order_invariant(self):
        library = FeatureLibrary()
        assert set(library.udf(0, 4, SENTENCE)) == set(library.udf(4, 0, SENTENCE))

    def test_custom_template(self):
        template = FeatureTemplate("always", lambda p1, p2, tokens: ["x"])
        library = FeatureLibrary(templates=[template])
        assert library.udf(0, 1, SENTENCE) == ["always:x"]


class TestDictionaries:
    def test_dictionary_feature_between(self):
        library = FeatureLibrary(templates=[],
                                 dictionaries={"kinship": {"wife", "husband"}})
        features = library.udf(0, 4, SENTENCE)
        assert "dict_kinship:between" in features

    def test_dictionary_feature_on_mentions(self):
        library = FeatureLibrary(templates=[],
                                 dictionaries={"names": {"barack"}})
        features = library.udf(0, 4, SENTENCE)
        assert "dict_kinship:m1" not in features
        assert "dict_names:m1" in features

    def test_dictionary_miss(self):
        library = FeatureLibrary(templates=[],
                                 dictionaries={"colors": {"teal"}})
        assert library.udf(0, 4, SENTENCE) == []


class TestPruning:
    def stats(self):
        return [
            FeatureStat("rule0:between:and his wife", 2.0, 30),
            FeatureStat("rule0:bet_word:and", 0.001, 30),
            FeatureStat("rule0:dist:4", -0.8, 30),
            FeatureStat("rule0:prefix:gala", 0.3, 0),
        ]

    def test_prune_by_weight(self):
        library = FeatureLibrary()
        kept = library.prune(self.stats(), min_weight=0.05)
        assert "between:and his wife" in kept
        assert "dist:4" in kept
        assert "bet_word:and" not in kept

    def test_prune_by_observations(self):
        library = FeatureLibrary()
        kept = library.prune(self.stats(), min_weight=0.05, min_observations=1)
        assert "prefix:gala" not in kept

    def test_pruned_udf_filters(self):
        library = FeatureLibrary()
        library.prune(self.stats(), min_weight=0.05)
        features = library.udf(0, 4, SENTENCE)
        assert "between:and his wife" in features
        assert all(not f.startswith("bet_word:") for f in features)

    def test_reset_restores_everything(self):
        library = FeatureLibrary()
        before = set(library.udf(0, 4, SENTENCE))
        library.prune(self.stats(), min_weight=999)
        assert library.udf(0, 4, SENTENCE) == []
        library.reset()
        assert set(library.udf(0, 4, SENTENCE)) == before


class TestEndToEnd:
    def test_library_drives_a_full_run(self):
        """The library's free features alone reach good spouse quality."""
        from repro.apps import spouse
        from repro.core.app import DeepDive
        from repro.corpus import spouse as spouse_corpus
        from repro.inference import LearningOptions

        corpus = spouse_corpus.generate(
            spouse_corpus.SpouseConfig(num_couples=25, num_distractor_pairs=25,
                                       num_sibling_pairs=8,
                                       sentences_per_pair=3), seed=17)
        app = DeepDive(spouse.PROGRAM, seed=0)
        library = FeatureLibrary()
        app.register_udf("spouse_features",
                         lambda p1, p2, c: library.udf(p1, p2, c))
        known_names = {name.lower() for name, _ in corpus.kb["NameEL"]}
        app.add_extractor("PersonCandidate",
                          spouse.person_extractor_factory(known_names))
        app.add_extractor("SpouseSentence", lambda s: [(s.key, s.text)])
        app.load_documents(corpus.documents)
        name_entities = {}
        for name, entity in corpus.kb["NameEL"]:
            name_entities.setdefault(name.lower(), []).append(entity)
        app.add_rows("EL", [(m, e) for (_, m, t, _)
                            in app.db["PersonCandidate"].distinct_rows()
                            for e in name_entities.get(t, ())])
        app.add_rows("Married", corpus.kb["Married"])
        app.add_rows("Sibling", corpus.kb["Sibling"])
        acquainted = []
        for a, b in corpus.metadata["distractors"][::2]:
            acquainted += [(a, b), (b, a)]
        app.add_rows("Acquainted", acquainted)
        result = app.run(threshold=0.8, holdout_fraction=0.1,
                         learning=LearningOptions(epochs=60, seed=0),
                         num_samples=200, burn_in=30,
                         compute_train_histogram=False)
        quality = spouse.evaluate(app, result, corpus)
        assert quality.f1 > 0.8
