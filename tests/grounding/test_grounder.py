"""Grounding tests built around the paper's spouse example (Figure 3)."""

import pytest

from repro.datastore import Database
from repro.ddlog import DDlogProgram
from repro.factorgraph import FactorFunction
from repro.grounding import Grounder, ground

SPOUSE_PROGRAM = """
Sentence(s text, content text).
PersonCandidate(s text, m text).
MarriedCandidate(m1 text, m2 text).
MarriedMentions?(m1 text, m2 text).
EL(m text, e text).
Married(e1 text, e2 text).
Sibling(e1 text, e2 text).

MarriedCandidate(m1, m2) :-
    PersonCandidate(s, m1), PersonCandidate(s, m2), [m1 < m2].

MarriedMentions(m1, m2) :-
    MarriedCandidate(m1, m2), PersonCandidate(s, m1), Sentence(s, sent)
    weight = phrase(m1, m2, sent).

MarriedMentions_Ev(m1, m2, true) :-
    MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).

MarriedMentions_Ev(m1, m2, false) :-
    MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Sibling(e1, e2).
"""


def make_app(extra_rules=""):
    program = DDlogProgram.parse(SPOUSE_PROGRAM + extra_rules)
    program.register_udf("phrase", lambda m1, m2, sent: f"between:{sent.split()[1]}")
    db = Database()
    program.create_relations(db)
    db.insert("Sentence", [("s1", "obama and michelle married"),
                           ("s2", "alice visited bob")])
    db.insert("PersonCandidate", [("s1", "obama"), ("s1", "michelle"),
                                  ("s2", "alice"), ("s2", "bob")])
    db.insert("EL", [("obama", "E_obama"), ("michelle", "E_michelle")])
    # KB stored in both orders, as a real marriage KB would be
    db.insert("Married", [("E_obama", "E_michelle"), ("E_michelle", "E_obama")])
    return program, db


class TestInitialGrounding:
    def test_candidate_relation_populated(self):
        program, db = make_app()
        Grounder(program, db)
        assert set(db["MarriedCandidate"]) == {("michelle", "obama"), ("alice", "bob")}

    def test_variables_created_per_candidate(self):
        program, db = make_app()
        grounder = Grounder(program, db)
        keys = {v.key for v in grounder.graph.variables.values()}
        assert ("MarriedMentions", ("michelle", "obama")) in keys
        assert ("MarriedMentions", ("alice", "bob")) in keys

    def test_feature_factors_are_unary(self):
        program, db = make_app()
        grounder = Grounder(program, db)
        assert all(f.function == FactorFunction.IS_TRUE
                   for f in grounder.graph.factors.values())
        assert grounder.graph.num_factors == 2

    def test_weights_tied_by_feature_value(self):
        program, db = make_app()
        grounder = Grounder(program, db)
        # phrase() returns 'between:and' for s1 and 'between:visited' for s2
        keys = {w.key for w in grounder.graph.weights.values()}
        assert any("between:and" in str(k) for k in keys)
        assert any("between:visited" in str(k) for k in keys)

    def test_evidence_applied(self):
        program, db = make_app()
        grounder = Grounder(program, db)
        var = grounder.graph.variables[
            grounder.graph.variable_id(("MarriedMentions", ("michelle", "obama")))]
        assert var.evidence is True

    def test_unsupervised_candidate_has_no_evidence(self):
        program, db = make_app()
        grounder = Grounder(program, db)
        var = grounder.graph.variables[
            grounder.graph.variable_id(("MarriedMentions", ("alice", "bob")))]
        assert var.evidence is None

    def test_var_relation_rows_inserted(self):
        program, db = make_app()
        Grounder(program, db)
        assert ("michelle", "obama") in db["MarriedMentions"]

    def test_ground_convenience(self):
        program, db = make_app()
        graph = ground(program, db)
        assert graph.num_variables == 2

    def test_weight_provenance_recorded(self):
        program, db = make_app()
        grounder = Grounder(program, db)
        assert grounder.weight_provenance
        provenance = next(iter(grounder.weight_provenance.values()))
        assert "MarriedMentions" in provenance.rule_text


class TestEvidenceConflicts:
    def test_conflicting_labels_abstain(self):
        program, db = make_app()
        # obama & michelle are ALSO (incorrectly) in the sibling KB -> conflict
        db.insert("Sibling", [("E_michelle", "E_obama")])
        grounder = Grounder(program, db)
        var = grounder.graph.variables[
            grounder.graph.variable_id(("MarriedMentions", ("michelle", "obama")))]
        assert var.evidence is None

    def test_majority_wins(self):
        program, db = make_app()
        # a second entity link for obama yields a second positive vote,
        # outvoting the single (incorrect) sibling entry
        db.insert("EL", [("obama", "E_obama2")])
        db.insert("Married", [("E_michelle", "E_obama2")])
        db.insert("Sibling", [("E_michelle", "E_obama")])
        grounder = Grounder(program, db)
        var = grounder.graph.variables[
            grounder.graph.variable_id(("MarriedMentions", ("michelle", "obama")))]
        assert var.evidence is True


class TestInferenceRules:
    SYMMETRY = """
    MarriedMentions(m1, m2) = MarriedMentions(m2, m1) :-
        MarriedCandidate(m1, m2), MarriedCandidate(m2, m1)
        weight = 5.0.
    """

    def test_equal_factor_grounded(self):
        program, db = make_app(self.SYMMETRY)
        # add the reversed candidate pair so the symmetry rule fires
        db.insert("PersonCandidate", [("s3", "michelle"), ("s3", "obama")])
        db.insert("Sentence", [("s3", "michelle and obama wed")])
        # reversed pair requires m1 < m2 both ways, impossible with R1 alone;
        # instead check that the rule grounds when candidates exist both ways
        grounder = Grounder(program, db)
        equal_factors = [f for f in grounder.graph.factors.values()
                         if f.function == FactorFunction.EQUAL]
        assert equal_factors == []  # [m1 < m2] forbids reversed candidates

    def test_imply_rule(self):
        program = DDlogProgram.parse("""
        Link(x text, y text).
        A?(x text).
        B?(x text).
        A(x) :- Link(x, y) weight = 1.0.
        A(x) => B(y) :- Link(x, y) weight = 2.0.
        """)
        db = Database()
        program.create_relations(db)
        db.insert("Link", [("p", "q")])
        grounder = Grounder(program, db)
        imply = [f for f in grounder.graph.factors.values()
                 if f.function == FactorFunction.IMPLY]
        assert len(imply) == 1
        keys = [grounder.graph.variables[v].key for v in imply[0].var_ids]
        assert keys == [("A", ("p",)), ("B", ("q",))]
        weight = grounder.graph.weights[imply[0].weight_id]
        assert weight.fixed and weight.value == 2.0

    def test_negated_head(self):
        program = DDlogProgram.parse("""
        Link(x text, y text).
        A?(x text).
        !A(x) | A(y) :- Link(x, y) weight = 1.5.
        """)
        db = Database()
        program.create_relations(db)
        db.insert("Link", [("p", "q")])
        grounder = Grounder(program, db)
        factor = next(iter(grounder.graph.factors.values()))
        assert factor.function == FactorFunction.OR
        assert factor.negated == (True, False)


class TestUdfWeightShapes:
    def test_udf_returning_none_grounds_nothing(self):
        program = DDlogProgram.parse("""
        R(a text).
        Q?(a text).
        Q(a) :- R(a) weight = f(a).
        """)
        program.register_udf("f", lambda a: None)
        db = Database()
        program.create_relations(db)
        db.insert("R", [("x",)])
        grounder = Grounder(program, db)
        assert grounder.graph.num_factors == 0
        assert grounder.graph.num_variables == 0

    def test_udf_returning_list_grounds_many(self):
        program = DDlogProgram.parse("""
        R(a text).
        Q?(a text).
        Q(a) :- R(a) weight = f(a).
        """)
        program.register_udf("f", lambda a: [f"feat1:{a}", f"feat2:{a}"])
        db = Database()
        program.create_relations(db)
        db.insert("R", [("x",)])
        grounder = Grounder(program, db)
        assert grounder.graph.num_factors == 2
        assert grounder.graph.num_variables == 1
        assert grounder.graph.num_weights == 2

    def test_per_rule_weight_shared(self):
        program = DDlogProgram.parse("""
        R(a text).
        Q?(a text).
        Q(a) :- R(a) weight = ?.
        """)
        db = Database()
        program.create_relations(db)
        db.insert("R", [("x",), ("y",)])
        grounder = Grounder(program, db)
        assert grounder.graph.num_weights == 1
        assert grounder.graph.num_factors == 2
