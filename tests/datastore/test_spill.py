"""Spill operator units: budget governor, partitioning, dispatch wiring."""

import numpy as np

from repro.datastore import Relation, Schema
from repro.datastore import query as Q
from repro.datastore import spill
from repro.obs.config import EngineConfig


def relation(rows, name="r"):
    out = Relation(name, Schema.of(k="int", v="text"))
    for row in rows:
        out.insert(row)
    return out


class TestBudgetGovernor:
    def test_none_never_spills(self):
        store = relation([(1, "a")] * 3).columnar()
        assert not spill.should_spill(None, store)

    def test_zero_always_spills_nonempty(self):
        store = relation([(1, "a")]).columnar()
        assert spill.should_spill(0, store)
        empty = relation([]).columnar()
        assert not spill.should_spill(0, empty)     # nothing to spill

    def test_threshold_is_bytes(self):
        store = relation([(i, "x") for i in range(10)]).columnar()
        nbytes = spill.store_nbytes(store)
        assert spill.should_spill(nbytes - 1, store)
        assert not spill.should_spill(nbytes, store)

    def test_partition_count_clamped(self):
        assert spill.partition_count(0, 10 ** 9) == spill.ZERO_BUDGET_PARTITIONS
        assert spill.partition_count(10 ** 9, 10) == spill.MIN_PARTITIONS
        assert spill.partition_count(1, 10 ** 9) == spill.MAX_PARTITIONS


class TestPartitionHash:
    def test_equal_keys_same_partition(self):
        codes = np.array([[3, 1, 3, 2, 3], [7, 7, 7, 7, 7]], dtype=np.int64)
        pids = spill.partition_ids(codes, 8)
        assert pids[0] == pids[2] == pids[4]

    def test_partition_is_total(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 50, size=(2, 500)).astype(np.int64)
        pids = spill.partition_ids(codes, 8)
        assert ((pids >= 0) & (pids < 8)).all()
        # sane spread: no single partition hoards everything
        assert len(np.unique(pids)) > 1

    def test_zero_key_columns_degenerate(self):
        codes = np.empty((0, 5), dtype=np.int64)
        pids = spill.partition_ids(codes, 4)
        assert len(set(pids.tolist())) == 1          # all rows together


class TestDispatchWiring:
    def test_join_spills_and_matches(self):
        left = relation([(i % 7, f"l{i % 3}") for i in range(200)], "l")
        right = relation([(i % 7, f"r{i % 5}") for i in range(100)], "r")
        inmem = EngineConfig(datastore_backend="columnar")
        spilled = EngineConfig(datastore_backend="columnar", memory_budget=0)
        a = Q.join(left, right, on=[("k", "k")], config=inmem)
        b = Q.join(left, right, on=[("k", "k")], config=spilled)
        assert a.counts_copy() == b.counts_copy()
        assert a.schema == b.schema

    def test_aggregate_spills_and_matches(self):
        rel = relation([(i % 9, f"v{i % 4}") for i in range(300)])
        aggs = {"n": ("count", "*"), "lo": ("min", "v")}
        inmem = EngineConfig(datastore_backend="columnar")
        spilled = EngineConfig(datastore_backend="columnar", memory_budget=64)
        a = Q.aggregate(rel, ["k"], aggs, config=inmem)
        b = Q.aggregate(rel, ["k"], aggs, config=spilled)
        assert a.counts_copy() == b.counts_copy()

    def test_distinct_spills_and_matches(self):
        rel = relation([(i % 5, f"v{i % 3}") for i in range(200)])
        inmem = EngineConfig(datastore_backend="columnar")
        spilled = EngineConfig(datastore_backend="columnar", memory_budget=0)
        a = Q.distinct(rel, config=inmem)
        b = Q.distinct(rel, config=spilled)
        row = Q.distinct(rel, config=EngineConfig(datastore_backend="row"))
        assert a.counts_copy() == b.counts_copy() == row.counts_copy()

    def test_budget_none_stays_in_memory(self):
        rel = relation([(i, "x") for i in range(100)])
        out = Q.distinct(rel, config=EngineConfig(datastore_backend="columnar"))
        assert len(out) == 100

    def test_spill_records_metrics(self):
        from repro import obs

        rel = relation([(i % 5, "x") for i in range(100)])
        collector = obs.Collector()
        with obs.installed(collector):
            Q.distinct(rel, config=EngineConfig(datastore_backend="columnar",
                                                memory_budget=0))
        snap = collector.metrics.snapshot()
        assert any("datastore.spill.bytes" in key for key in snap["gauges"])
        assert any("engine=columnar-spill" in key or "columnar-spill" in key
                   for key in snap["counters"])
