"""repro.compliance: PII scanning + deterministic anonymization.

The paper's flagship dark-data deployments (classified ads, anti-human-
trafficking) extract exactly the data a served knowledge base must govern:
phone numbers, emails, locations tied to people.  This package is the
governance story for :mod:`repro.serve`:

* **detectors** — regex + confidence PII detectors (email, phone, SSN,
  credit card, person-adjacent location) over raw strings;
* **scanner** — column-by-column scans of relations, databases, and
  published snapshots, emitting a typed :class:`ComplianceManifest`
  (per-column detector, hit rate, confidence, masked examples);
* **anonymizer** — keyed deterministic anonymization: HMAC-based stable
  surrogates per detector class, so the same raw value always maps to the
  same surrogate and join keys / dedup survive scrubbing;
* **policy** — a frozen :class:`CompliancePolicy` selecting per-relation /
  per-column actions (``allow | redact | anonymize | drop``), with
  env fallbacks (:data:`repro.obs.config.COMPLIANCE_ENV_VARS`) parsed
  by the observability config module;
* **apply** — the snapshot-publish transform: scrub a marginal mapping
  under a policy without perturbing a single probability, so inference
  results are bit-identical pre/post anonymization.

The serving layer applies the policy at its one shared choke point —
snapshot publish (:meth:`repro.serve.engine.ServeEngine._publish`) — so
reader-visible versions are scrubbed while the WAL and checkpoints keep the
raw ground truth.
"""

from repro.compliance.anonymizer import Anonymizer, SurrogateCollision
from repro.compliance.apply import scrub_marginals, scrub_value
from repro.compliance.detectors import (DEFAULT_DETECTORS, DETECTOR_NAMES,
                                        CreditCardDetector, Detection,
                                        Detector, EmailDetector,
                                        LocationDetector, PhoneDetector,
                                        SsnDetector, default_detectors,
                                        luhn_valid, mask)
from repro.compliance.manifest import ColumnReport, ComplianceManifest
from repro.compliance.policy import (VALID_ACTIONS, CompliancePolicy,
                                     PolicyError, parse_rules)
from repro.compliance.scanner import (Scanner, scan_database, scan_relation,
                                      scan_rows, scan_snapshot)

__all__ = [
    "Anonymizer",
    "ColumnReport",
    "ComplianceManifest",
    "CompliancePolicy",
    "CreditCardDetector",
    "DEFAULT_DETECTORS",
    "DETECTOR_NAMES",
    "Detection",
    "Detector",
    "EmailDetector",
    "LocationDetector",
    "PhoneDetector",
    "PolicyError",
    "Scanner",
    "SsnDetector",
    "SurrogateCollision",
    "VALID_ACTIONS",
    "default_detectors",
    "luhn_valid",
    "mask",
    "parse_rules",
    "scan_database",
    "scan_marginals",
    "scan_relation",
    "scan_rows",
    "scan_snapshot",
    "scrub_marginals",
    "scrub_value",
]

from repro.compliance.scanner import scan_marginals  # noqa: E402  (re-export)
