"""The document-loading pipeline: raw documents -> sentence rows with markup.

Mirrors DeepDive's default loading step: each input document is HTML-stripped,
split into sentences, tokenized, and POS-tagged; the result is stored *one
sentence per row* in the ``sentences`` relation of the datastore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro import obs
from repro.datastore import Database, Schema
from repro.nlp.chunker import Chunk, noun_phrases
from repro.nlp.htmlstrip import strip_html
from repro.nlp.pos import tag
from repro.nlp.sentences import split_sentences
from repro.nlp.tokenize import Token, tokenize


@dataclass(frozen=True)
class Document:
    """A raw input document (possibly HTML)."""

    doc_id: str
    content: str


@dataclass(frozen=True)
class Sentence:
    """One preprocessed sentence: the unit DeepDive candidates live in."""

    doc_id: str
    sentence_id: int      # position of the sentence within its document
    text: str
    tokens: tuple[str, ...]
    pos_tags: tuple[str, ...]
    offsets: tuple[tuple[int, int], ...] = field(default=())

    @property
    def key(self) -> str:
        """Globally unique sentence identifier."""
        return f"{self.doc_id}:{self.sentence_id}"

    def noun_phrase_chunks(self) -> list[Chunk]:
        return noun_phrases(list(self.pos_tags))


SENTENCE_SCHEMA = Schema.of(
    sentence_key="text", doc_id="text", sentence_id="int", text="text",
    tokens="array", pos_tags="array")

DOCUMENT_SCHEMA = Schema.of(doc_id="text", content="text")


def preprocess_document(doc: Document) -> list[Sentence]:
    """Run the full NLP chain on one document."""
    text = strip_html(doc.content)
    sentences = []
    for index, sentence_text in enumerate(split_sentences(text)):
        tokens: list[Token] = tokenize(sentence_text)
        texts = [t.text for t in tokens]
        sentences.append(Sentence(
            doc_id=doc.doc_id,
            sentence_id=index,
            text=sentence_text,
            tokens=tuple(texts),
            pos_tags=tuple(tag(texts)),
            offsets=tuple((t.start, t.end) for t in tokens),
        ))
    if obs.enabled():
        obs.count("nlp.documents")
        obs.observe("nlp.sentences_per_doc", len(sentences))
        obs.observe("nlp.tokens_per_doc",
                    sum(len(s.tokens) for s in sentences))
    return sentences


def load_corpus(db: Database, documents: Iterable[Document]) -> int:
    """Preprocess ``documents`` into the ``documents``/``sentences`` relations.

    Creates the relations if absent.  Returns the number of sentences loaded.
    """
    if "documents" not in db:
        db.create("documents", DOCUMENT_SCHEMA)
    if "sentences" not in db:
        db.create("sentences", SENTENCE_SCHEMA)
    loaded = 0
    for doc in documents:
        db["documents"].insert((doc.doc_id, doc.content))
        for sentence in preprocess_document(doc):
            db["sentences"].insert(sentence_row(sentence))
            loaded += 1
    return loaded


def sentence_row(sentence: Sentence) -> tuple:
    """The ``sentences`` relation row for a :class:`Sentence`."""
    return (sentence.key, sentence.doc_id, sentence.sentence_id, sentence.text,
            sentence.tokens, sentence.pos_tags)


def sentence_from_row(row: Sequence) -> Sentence:
    """Reconstruct a :class:`Sentence` from its ``sentences`` relation row."""
    _, doc_id, sentence_id, text, tokens, pos_tags = row
    return Sentence(doc_id=doc_id, sentence_id=sentence_id, text=text,
                    tokens=tuple(tokens), pos_tags=tuple(pos_tags))
