"""End-to-end compliance over the serving layer, on both backends.

The ads application (``AdsConfig(pii=True)``) publishes contact phone and
email relations, so these tests exercise the real pipeline: corpus with
seeded PII → extraction → learning → published snapshots scrubbed at
publish time, while WAL + checkpoints keep the raw ground truth.
"""

import pytest

from repro.apps import ads
from repro.compliance import CompliancePolicy, scrub_marginals
from repro.corpus.ads import AdsConfig, generate
from repro.nlp.pipeline import Document
from repro.serve import KBClient, ServeConfig, add_documents

from .conftest import RUN_KWARGS

SCHEMAS = {"AdPhone": ("ad", "phone"), "AdEmail": ("ad", "email")}

pytestmark = pytest.mark.parametrize("shards", [1, 2])


@pytest.fixture(scope="module")
def corpus():
    return generate(AdsConfig(num_ads=8, forum_posts_per_ad=0.75, pii=True),
                    seed=5)


def raw_pii_values(corpus):
    """Every seeded raw PII string: short phones, full phones, emails."""
    values = {phone for _ad, phone in corpus.truth["ad_phone"]}
    values |= {phone for _ad, phone in corpus.truth["ad_contact_phone"]}
    values |= {email for _ad, email in corpus.truth["ad_email"]}
    return values


def flatten_keys(marginals):
    return " ".join(str(cell) for _rel, values in marginals
                    for cell in values)


def make_client(tmp_path, corpus, policy, shards, name="kb"):
    config = ServeConfig(checkpoint_every=0, refresh_samples=40,
                         refresh_burn_in=10, compliance=policy,
                         shards=shards)
    return KBClient.create(tmp_path / name, ads.make_serve_factory(),
                           ads.serve_bootstrap_ops(corpus), config=config,
                           run_kwargs=RUN_KWARGS)


def anonymize_policy(**changes):
    options = dict(enabled=True, default_action="anonymize",
                   min_confidence=0.5)
    options.update(changes)
    return CompliancePolicy(**options)


class TestPublishedViewsAreScrubbed:
    def test_published_pii_is_anonymized(self, tmp_path, corpus, shards):
        with make_client(tmp_path, corpus, anonymize_policy(),
                         shards) as client:
            snapshot = client.snapshot()
            assert snapshot.output_tuples("AdPhone")   # phones ARE published
            flat = flatten_keys(snapshot.marginals)
            for raw in raw_pii_values(corpus):
                assert raw not in flat

            # the manifest reports every seeded PII column with its action
            manifest = client.compliance_manifest()
            assert manifest is not None
            detected = set(manifest.detected_columns())
            assert ("AdPhone", "phone") in detected
            assert ("AdEmail", "email") in detected
            assert manifest.actions()[("AdPhone", "phone")] == "anonymize"

            # versioned reads resolve to the scrubbed view too
            past = client.snapshot_at(client.lsn_vector())
            assert flatten_keys(past.marginals) == flat
            assert past.manifest is not None

    def test_ingested_deltas_are_scrubbed_on_next_publish(
            self, tmp_path, corpus, shards):
        with make_client(tmp_path, corpus, anonymize_policy(),
                         shards) as client:
            client.ingest([add_documents([Document(
                "ad9000",
                "new loft , $900 . call 555-301-0187 "
                "or mail zed@late.example.net .")])])
            snapshot = client.flush()
            flat = flatten_keys(snapshot.marginals)
            assert "555-301-0187" not in flat
            assert "zed@late.example.net" not in flat
            assert snapshot.manifest is not None

    def test_scan_audits_raw_store_including_documents(
            self, tmp_path, corpus, shards):
        with make_client(tmp_path, corpus, anonymize_policy(),
                         shards) as client:
            audit = client.scan()
            assert audit.rows_scanned > 0
            detectors = {report.detector for report in audit if report.hits}
            assert {"email", "phone", "ssn"} <= detectors
            # the seeded SSNs live in forum documents, never in a
            # published relation
            ssn_hits = [r for r in audit
                        if r.detector == "ssn" and r.hits]
            assert any(r.relation == "documents" for r in ssn_hits)
            published = client.snapshot().marginals
            for _doc, ssn in corpus.metadata["pii_ssns"]:
                assert ssn not in flatten_keys(published)


class TestAnonymizationPreservesInference:
    def test_marginals_bit_identical_pre_post_anonymization(
            self, tmp_path, corpus, shards):
        """The headline guarantee: scrubbing relabels keys and copies
        probabilities — it never perturbs inference.  A raw service and a
        scrubbed service built from the same ops publish marginal *values*
        that agree bit for bit, related by the pure scrub transform."""
        policy = anonymize_policy()
        with make_client(tmp_path, corpus, CompliancePolicy(),
                         shards, name="raw") as client:
            raw = dict(client.snapshot().marginals)
            raw_accepted = client.snapshot().output_tuples("AdPhone")
            threshold = client.snapshot().threshold
        with make_client(tmp_path, corpus, policy,
                         shards, name="scrubbed") as client:
            scrubbed = dict(client.snapshot().marginals)
            scrubbed_accepted = client.snapshot().output_tuples("AdPhone")

        expected, _manifest = scrub_marginals(raw, SCHEMAS, policy)
        assert scrubbed == expected              # keys AND probabilities

        # acceptance decisions survive: same count, and exactly the
        # transform of the raw accepted set
        expected_accepted = {
            values for (rel, values), probability in expected.items()
            if rel == "AdPhone" and probability >= threshold}
        assert scrubbed_accepted == expected_accepted
        assert len(scrubbed_accepted) == len(raw_accepted)


class TestRawTruthSurvivesUnderneath:
    def test_redaction_never_leaks_and_recovery_reproduces_raw(
            self, tmp_path, corpus, shards):
        """Published views under ``redact`` contain class markers, never
        raw PII — while checkpoint + WAL recovery rebuilds the raw store
        bit-identically (the scrub lives only at the publish boundary)."""
        policy = CompliancePolicy(enabled=True, default_action="redact",
                                  min_confidence=0.5)
        config = ServeConfig(checkpoint_every=0, refresh_samples=40,
                             refresh_burn_in=10, compliance=policy,
                             shards=shards)
        client = KBClient.create(tmp_path / "kb", ads.make_serve_factory(),
                                 ads.serve_bootstrap_ops(corpus),
                                 config=config, run_kwargs=RUN_KWARGS)
        with client:
            before_view = dict(client.snapshot().marginals)
            before_audit = client.scan()
            flat = flatten_keys(before_view)
            assert "[REDACTED:" in flat
            for raw in raw_pii_values(corpus):
                assert raw not in flat
            client.checkpoint()

        reopened = KBClient.open(tmp_path / "kb", ads.make_serve_factory(),
                                 config=config, run_kwargs=RUN_KWARGS)
        with reopened:
            # raw store recovered bit-identically: the audit scan (which
            # reads raw relations) reports exactly the same manifest
            assert reopened.scan() == before_audit
            # and the republished scrubbed view matches too
            assert dict(reopened.snapshot().marginals) == before_view
            assert reopened.compliance_manifest() is not None
