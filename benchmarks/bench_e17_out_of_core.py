"""E17 -- the out-of-core datastore: bounded-RSS ingest, spill operators,
O(delta) checkpoints.

The paper's premise is corpora much larger than RAM; ROADMAP item 3 asks the
datastore to honor that.  Three measurements against a corpus ~10x the
configured memory budget:

* **streaming ingest**: ``spouse.stream`` feeds ``load_corpus``'s chunked
  path into segmented (disk-backed) ``documents``/``sentences`` relations;
  a sampler thread watches ``/proc/self/status`` and the bench asserts the
  post-warmup peak-RSS *delta* stays within 2x the budget even though the
  corpus is 10x it;
* **spill equivalence**: a join whose inputs exceed the budget runs through
  the grace-hash spill path and must match the in-memory kernels bag-for-bag;
* **checkpointing**: a segment-manifest checkpoint of the unchanged store
  (hard-links + seal-cache hits, O(delta)) against a full inline dump
  (O(store)); the speedup floor is 5x.

Machine-readable results land in ``results/BENCH_e17_out_of_core.json``; the
RSS check is soft-gated (``rss_enforced``) on hosts without ``/proc``, like
e15's CPU-count gate.
"""

from __future__ import annotations

import gc
import threading
from time import perf_counter, sleep

from conftest import once, write_json

from repro.corpus import spouse
from repro.datastore import Database, Relation, Schema
from repro.datastore import query as Q
from repro.datastore.io import database_from_dict, database_to_dict
from repro.nlp.pipeline import DOCUMENT_SCHEMA, SENTENCE_SCHEMA, load_corpus
from repro.obs.config import EngineConfig
from repro.serve import CheckpointManager

MEMORY_BUDGET = 2 << 20          # 2 MiB -- the knob REPRO_MEMORY_BUDGET sets
CORPUS_MULTIPLE = 10             # corpus must be >= this many budgets of text
RSS_MULTIPLE = 2.0               # peak RSS delta must stay <= 2x budget
CHECKPOINT_SPEEDUP_FLOOR = 5.0
SEGMENT_ROWS = 512               # small seals keep the resident tail tiny

CHUNK_CONFIG = spouse.SpouseConfig(num_couples=120, num_distractor_pairs=120,
                                   num_sibling_pairs=40)


def read_rss_bytes():
    """Current VmRSS from /proc, or None where the kernel interface is absent."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


class RssSampler:
    """Background thread tracking the peak resident set at ~20ms cadence."""

    def __init__(self, interval: float = 0.02) -> None:
        self.interval = interval
        self.baseline = read_rss_bytes()
        self.peak = self.baseline or 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def enabled(self) -> bool:
        return self.baseline is not None

    def _run(self) -> None:
        while not self._stop.is_set():
            rss = read_rss_bytes()
            if rss is not None and rss > self.peak:
                self.peak = rss
            sleep(self.interval)

    def start(self) -> None:
        if self.enabled:
            self._thread.start()

    def rebase(self) -> None:
        """Reset the baseline (after warmup, so arena growth is excluded)."""
        gc.collect()
        rss = read_rss_bytes()
        if rss is not None:
            self.baseline = rss
            self.peak = rss

    def stop(self) -> int:
        self._stop.set()
        if self.enabled:
            self._thread.join(timeout=5)
        return max(0, self.peak - (self.baseline or 0))


def counting_stream(chunks: int):
    """spouse.stream, with a running total of corpus bytes on the side."""
    seen = {"bytes": 0, "docs": 0}

    def docs():
        for doc in spouse.stream(chunks, config=CHUNK_CONFIG, seed=7):
            seen["bytes"] += len(doc.content)
            seen["docs"] += 1
            yield doc

    return docs(), seen


def calibrate_chunks():
    """How many generator chunks add up to CORPUS_MULTIPLE x the budget."""
    probe = spouse.generate(CHUNK_CONFIG, seed=7)
    chunk_bytes = sum(len(doc.content) for doc in probe.documents)
    chunk_docs = len(probe.documents)
    # 5% margin: chunk sizes vary a few percent with the per-chunk seed, and
    # the corpus must land at >= CORPUS_MULTIPLE x the budget, not near it
    target = int(CORPUS_MULTIPLE * MEMORY_BUDGET * 1.05)
    chunks = -(-target // chunk_bytes)
    return int(chunks), chunk_docs


def measure_streaming_ingest(tmp_path, results):
    """Corpus 10x the budget through the chunked path; RSS stays bounded."""
    config = EngineConfig(datastore_backend="columnar",
                          memory_budget=MEMORY_BUDGET,
                          segment_rows=SEGMENT_ROWS)
    db = Database(config=config)
    db.create_segmented("documents", DOCUMENT_SCHEMA,
                        directory=tmp_path / "documents")
    db.create_segmented("sentences", SENTENCE_SCHEMA,
                        directory=tmp_path / "sentences")

    chunks, chunk_docs = calibrate_chunks()
    documents, seen = counting_stream(chunks)

    sampler = RssSampler()
    sampler.start()
    # warmup: one chunk through the whole chain grows the allocator arenas
    # and the interpreter's caches; measure steady state after it
    warm_docs = [next(documents) for _ in range(chunk_docs)]
    load_corpus(db, warm_docs, chunk_docs=chunk_docs)
    sampler.rebase()

    started = perf_counter()
    sentences = load_corpus(db, documents, chunk_docs=chunk_docs)
    ingest_seconds = perf_counter() - started
    peak_delta = sampler.stop()

    for name in ("documents", "sentences"):
        db[name].flush()

    corpus_bytes = seen["bytes"]
    results.update({
        "memory_budget_bytes": MEMORY_BUDGET,
        "corpus_bytes": corpus_bytes,
        "corpus_budget_multiple": corpus_bytes / MEMORY_BUDGET,
        "documents_loaded": seen["docs"],
        "sentences_loaded": sentences + len(warm_docs),
        "chunk_docs": chunk_docs,
        "ingest_seconds": ingest_seconds,
        "ingest_mb_per_sec": corpus_bytes / (1 << 20) / ingest_seconds,
        "rss_enforced": sampler.enabled,
        "peak_rss_delta_bytes": peak_delta,
        "rss_budget_multiple": peak_delta / MEMORY_BUDGET,
        "rss_multiple_limit": RSS_MULTIPLE,
        "rss_ok": (not sampler.enabled
                   or peak_delta <= RSS_MULTIPLE * MEMORY_BUDGET),
        "segment_files": sum(len(db[n].segment_refs)
                             for n in ("documents", "sentences")),
    })
    return db


def measure_spill_equivalence(results):
    """A join bigger than the budget spills and still matches in-memory."""
    left = Relation("mentions", Schema.of(k="int", tag="text"))
    right = Relation("labels", Schema.of(k="int", label="text"))
    # 140k distinct left rows -> ~2.2 MB of key/tag codes, over the budget;
    # right matches every even key once so the output stays modest
    for i in range(140_000):
        left.insert((i, f"t{i % 13}"))
    for i in range(30_000):
        right.insert((i * 2, f"l{i % 7}"))
    in_memory = EngineConfig(datastore_backend="columnar")
    budgeted = EngineConfig(datastore_backend="columnar",
                            memory_budget=MEMORY_BUDGET)
    assert (left.columnar().codes.nbytes
            + right.columnar().codes.nbytes) > MEMORY_BUDGET

    started = perf_counter()
    reference = Q.join(left, right, on=[("k", "k")], config=in_memory)
    in_memory_seconds = perf_counter() - started
    started = perf_counter()
    spilled = Q.join(left, right, on=[("k", "k")], config=budgeted)
    spill_seconds = perf_counter() - started

    results.update({
        "spill_bit_identical":
            spilled.counts_copy() == reference.counts_copy(),
        "spill_join_rows": len(spilled),
        "spill_join_seconds": spill_seconds,
        "in_memory_join_seconds": in_memory_seconds,
    })


def measure_checkpoints(tmp_path, db, results):
    """Unchanged store: segment hard-links vs a full inline dump."""
    payload = {"kind": "bench_e17"}

    manifest = CheckpointManager(tmp_path / "ckpt_manifest", keep=3)
    started = perf_counter()
    manifest.save(payload, lsn=1, database=db)    # seals + hard-links all
    first_seconds = perf_counter() - started
    first_bytes = manifest.last_save_bytes
    started = perf_counter()
    manifest.save(payload, lsn=2, database=db)    # unchanged: O(delta) = O(1)
    link_seconds = perf_counter() - started
    link_bytes = manifest.last_save_bytes

    full = CheckpointManager(tmp_path / "ckpt_full", keep=3)
    started = perf_counter()
    full.save({**payload, "database": database_to_dict(db)}, lsn=2)
    full_seconds = perf_counter() - started
    full_bytes = full.last_save_bytes

    restored = database_from_dict(manifest.load()["database"])
    restore_ok = all(
        len(restored[name]) == len(db[name])
        and restored[name].counts_copy() == db[name].counts_copy()
        for name in db.names())

    results.update({
        "checkpoint_first_seconds": first_seconds,
        "checkpoint_first_bytes": first_bytes,
        "checkpoint_link_seconds": link_seconds,
        "checkpoint_link_bytes": link_bytes,
        "checkpoint_full_seconds": full_seconds,
        "checkpoint_full_bytes": full_bytes,
        "checkpoint_speedup": full_seconds / max(link_seconds, 1e-9),
        "checkpoint_speedup_floor": CHECKPOINT_SPEEDUP_FLOOR,
        "restore_bit_identical": restore_ok,
    })


def test_e17_out_of_core(benchmark, reporter, tmp_path):
    results = {"experiment": "e17_out_of_core"}

    def experiment():
        db = measure_streaming_ingest(tmp_path, results)
        measure_spill_equivalence(results)
        measure_checkpoints(tmp_path, db, results)
        return results

    once(benchmark, experiment)

    mib = 1 << 20
    reporter.line("E17 -- out-of-core datastore: corpus >> memory budget")
    reporter.line()
    reporter.table(
        ["measurement", "value"],
        [["memory budget", f"{MEMORY_BUDGET / mib:.1f} MiB"],
         ["corpus size",
          f"{results['corpus_bytes'] / mib:.1f} MiB "
          f"({results['corpus_budget_multiple']:.1f}x budget, "
          f"{results['documents_loaded']} docs)"],
         ["streaming ingest",
          f"{results['ingest_seconds']:.1f} s "
          f"({results['ingest_mb_per_sec']:.2f} MB/s, "
          f"{results['sentences_loaded']} sentences, "
          f"{results['segment_files']} segments)"],
         ["peak RSS delta",
          f"{results['peak_rss_delta_bytes'] / mib:.2f} MiB "
          f"({results['rss_budget_multiple']:.2f}x budget, "
          f"limit {RSS_MULTIPLE:.0f}x)"
          if results["rss_enforced"] else "unmeasured (no /proc)"],
         ["spill join vs in-memory",
          f"bit-identical={results['spill_bit_identical']} "
          f"({results['spill_join_rows']} rows, "
          f"{results['spill_join_seconds']:.2f} s vs "
          f"{results['in_memory_join_seconds']:.2f} s)"],
         ["checkpoint, first (seal + link)",
          f"{results['checkpoint_first_seconds']:.2f} s, "
          f"{results['checkpoint_first_bytes']} bytes"],
         ["checkpoint, unchanged store",
          f"{results['checkpoint_link_seconds'] * 1000:.1f} ms, "
          f"{results['checkpoint_link_bytes']} bytes"],
         ["checkpoint, full dump",
          f"{results['checkpoint_full_seconds']:.2f} s, "
          f"{results['checkpoint_full_bytes']} bytes"],
         ["hard-link speedup",
          f"{results['checkpoint_speedup']:.0f}x "
          f"(floor {CHECKPOINT_SPEEDUP_FLOOR:.0f}x)"],
         ["restore bit-identical", str(results["restore_bit_identical"])]])
    write_json("BENCH_e17_out_of_core", results)

    assert results["corpus_budget_multiple"] >= CORPUS_MULTIPLE
    assert results["spill_bit_identical"]
    assert results["restore_bit_identical"]
    assert results["checkpoint_speedup"] >= CHECKPOINT_SPEEDUP_FLOOR
    if results["rss_enforced"]:
        assert results["rss_ok"], (
            f"peak RSS delta {results['peak_rss_delta_bytes']} exceeds "
            f"{RSS_MULTIPLE}x the {MEMORY_BUDGET}-byte budget")
