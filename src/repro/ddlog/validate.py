"""Semantic validation of parsed DDlog programs.

Catches the errors the paper's engineers hit in practice: unbound head
variables, undeclared relations, arity mismatches, missing weight clauses,
and malformed evidence relations -- before any grounding work starts.
"""

from __future__ import annotations

from repro.ddlog.ast import (Comparison, Const, Declaration, ProgramAst,
                             RelationAtom, Rule, RuleKind, UdfBinding,
                             UdfCondition, UdfWeight, Var, VarWeight)
from repro.ddlog.parser import EVIDENCE_SUFFIX

_VALID_TYPES = {"text", "int", "float", "bool", "array"}


class DDlogValidationError(ValueError):
    """A semantic error in a DDlog program."""


def validate_program(program: ProgramAst, udfs: set[str] | None = None) -> None:
    """Validate ``program``; raise :class:`DDlogValidationError` on problems.

    ``udfs`` is the set of registered UDF names; pass ``None`` to skip the
    registration check (used when validating before UDFs are attached).
    """
    declarations = {d.name: d for d in program.declarations}
    _check_declarations(program.declarations)
    for rule in program.rules:
        _check_rule(rule, declarations, udfs)


def evidence_base(name: str) -> str | None:
    """The variable relation an ``_Ev`` relation supervises, or None."""
    if name.endswith(EVIDENCE_SUFFIX):
        return name[:-len(EVIDENCE_SUFFIX)]
    return None


def _check_declarations(declarations: list[Declaration]) -> None:
    seen: set[str] = set()
    for decl in declarations:
        if decl.name in seen:
            raise DDlogValidationError(f"relation {decl.name!r} declared twice")
        seen.add(decl.name)
        if not decl.columns:
            raise DDlogValidationError(f"relation {decl.name!r} has no columns")
        for column, type_name in decl.columns:
            if type_name not in _VALID_TYPES:
                raise DDlogValidationError(
                    f"relation {decl.name!r}: unknown type {type_name!r} for "
                    f"column {column!r} (valid: {sorted(_VALID_TYPES)})")
        names = [c for c, _ in decl.columns]
        if len(set(names)) != len(names):
            raise DDlogValidationError(f"relation {decl.name!r} has duplicate columns")


def _check_rule(rule: Rule, declarations: dict[str, Declaration],
                udfs: set[str] | None) -> None:
    where = f"in rule {rule.text!r}"
    bound = _bound_variables(rule, declarations, udfs, where)

    for head in rule.heads:
        _check_head_atom(rule, head, declarations, bound, where)

    if rule.kind in (RuleKind.FEATURE, RuleKind.INFERENCE):
        if rule.weight is None:
            raise DDlogValidationError(f"{rule.kind.value} rule needs a weight clause {where}")
        if isinstance(rule.weight, UdfWeight):
            _check_udf(rule.weight.udf, udfs, where)
            for arg in rule.weight.args:
                if isinstance(arg, Var) and arg.name not in bound:
                    raise DDlogValidationError(
                        f"weight UDF argument {arg.name!r} is unbound {where}")
        if isinstance(rule.weight, VarWeight) and rule.weight.var not in bound:
            raise DDlogValidationError(
                f"weight variable {rule.weight.var!r} is unbound {where}")
    elif rule.weight is not None:
        raise DDlogValidationError(
            f"{rule.kind.value} rule cannot have a weight clause {where}")

    if rule.kind == RuleKind.INFERENCE:
        if rule.connective is None:
            raise DDlogValidationError(f"inference rule needs a connective {where}")
        if rule.connective.value == "=" and len(rule.heads) != 2:
            raise DDlogValidationError(f"'=' connective takes exactly two heads {where}")
    else:
        for head in rule.heads:
            if head.negated:
                raise DDlogValidationError(
                    f"negated head only allowed in inference rules {where}")


def _bound_variables(rule: Rule, declarations: dict[str, Declaration],
                     udfs: set[str] | None, where: str) -> set[str]:
    """Walk the body in order, checking boundness and returning bound vars."""
    bound: set[str] = set()
    for item in rule.body:
        if isinstance(item, RelationAtom):
            decl = declarations.get(item.relation)
            if decl is None:
                raise DDlogValidationError(
                    f"undeclared relation {item.relation!r} {where}")
            if len(item.terms) != decl.arity:
                raise DDlogValidationError(
                    f"{item.relation} used with arity {len(item.terms)}, "
                    f"declared {decl.arity} {where}")
            bound.update(item.variables())
        elif isinstance(item, UdfBinding):
            _check_udf(item.udf, udfs, where)
            for arg in item.args:
                if isinstance(arg, Var) and arg.name not in bound:
                    raise DDlogValidationError(
                        f"UDF argument {arg.name!r} used before binding {where}")
            bound.add(item.target)
        elif isinstance(item, Comparison):
            for term in (item.left, item.right):
                if isinstance(term, Var) and term.name not in bound:
                    raise DDlogValidationError(
                        f"comparison variable {term.name!r} is unbound {where}")
        elif isinstance(item, UdfCondition):
            _check_udf(item.udf, udfs, where)
            for arg in item.args:
                if isinstance(arg, Var) and arg.name not in bound:
                    raise DDlogValidationError(
                        f"condition argument {arg.name!r} is unbound {where}")
    if not any(isinstance(item, RelationAtom) for item in rule.body):
        raise DDlogValidationError(f"rule body has no relation atom {where}")
    return bound


def _check_head_atom(rule: Rule, head: RelationAtom,
                     declarations: dict[str, Declaration],
                     bound: set[str], where: str) -> None:
    base = evidence_base(head.relation)
    if rule.kind == RuleKind.SUPERVISION and base is not None:
        var_decl = declarations.get(base)
        if var_decl is None or not var_decl.is_variable:
            raise DDlogValidationError(
                f"evidence relation {head.relation!r} needs a declared variable "
                f"relation {base!r} {where}")
        if len(head.terms) != var_decl.arity + 1:
            raise DDlogValidationError(
                f"evidence head {head.relation!r} must have arity "
                f"{var_decl.arity + 1} (columns + label) {where}")
        label = head.terms[-1]
        if isinstance(label, Const) and not isinstance(label.value, bool):
            raise DDlogValidationError(
                f"evidence label must be true/false or a bound variable {where}")
    else:
        decl = declarations.get(head.relation)
        if decl is None:
            raise DDlogValidationError(f"undeclared head relation {head.relation!r} {where}")
        if len(head.terms) != decl.arity:
            raise DDlogValidationError(
                f"head {head.relation} has arity {len(head.terms)}, declared "
                f"{decl.arity} {where}")
        if rule.kind in (RuleKind.FEATURE, RuleKind.INFERENCE) and not decl.is_variable:
            raise DDlogValidationError(
                f"{rule.kind.value} rule head {head.relation!r} must be a "
                f"variable relation (declare with '?') {where}")
        if rule.kind == RuleKind.DERIVATION and decl.is_variable:
            raise DDlogValidationError(
                f"derivation rule cannot target variable relation "
                f"{head.relation!r}; use a feature rule with a weight {where}")
    for term in head.terms:
        if isinstance(term, Var) and term.name not in bound:
            raise DDlogValidationError(
                f"head variable {term.name!r} is not bound in the body {where}")


def _check_udf(name: str, udfs: set[str] | None, where: str) -> None:
    if udfs is not None and name not in udfs:
        raise DDlogValidationError(f"UDF {name!r} is not registered {where}")
