"""E4 -- Section 4.2: NUMA-aware sampling scalability.

Paper artifacts: (a) on a 4-socket machine, NUMA-aware execution with model
averaging is "more than 4x faster than a non-NUMA-aware implementation";
(b) absolute throughput: "1,000 samples for all 0.2 billion random variables
in 28 minutes" (~119M variable-samples/second).

We run the simulated-NUMA engine in both configurations on a KBC-shaped
graph, report the modeled-time speedup next to the paper's 4x, the effect of
the model-averaging sync cadence (the statistical/hardware efficiency
trade-off), and our real measured variable-samples/second next to the
paper's hardware number.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import once

from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.inference import GibbsSampler, NumaConfig, NumaGibbs

PAPER_RATE = 0.2e9 * 1000 / (28 * 60)    # variable-samples per second


def kbc_graph(num_candidates=2000, seed=0) -> CompiledGraph:
    rng = np.random.default_rng(seed)
    graph = FactorGraph()
    for i in range(num_candidates):
        v = graph.variable(("cand", i))
        weight = graph.weight(("feat", int(rng.integers(0, 100))),
                              float(rng.normal(0, 0.5)))
        graph.add_factor(FactorFunction.IS_TRUE, [v], weight)
    for i in range(0, num_candidates - 1, 10):
        weight = graph.weight("corr", 0.5)
        graph.add_factor(FactorFunction.EQUAL,
                         [graph.variable(("cand", i)),
                          graph.variable(("cand", i + 1))], weight)
    return CompiledGraph(graph)


def test_e4_numa_speedup(benchmark, reporter):
    compiled = kbc_graph()
    outcomes = {}

    # Remote accesses on a loaded 4-socket interconnect cost well above the
    # raw latency ratio (~2-3x) once contention is included; 6x reproduces
    # the class of machine the paper reports ">4x" on.
    penalty = 6.0

    def experiment():
        for sockets in (1, 2, 4):
            aware = NumaGibbs(compiled, NumaConfig(
                sockets=sockets, numa_aware=True, sync_every=10,
                remote_penalty=penalty), seed=0)
            outcomes[("aware", sockets)] = aware.run(num_samples=40, burn_in=10)
        shared = NumaGibbs(compiled, NumaConfig(sockets=4, numa_aware=False,
                                                remote_penalty=penalty), seed=0)
        outcomes[("shared", 4)] = shared.run(num_samples=40, burn_in=10)
        return outcomes

    once(benchmark, experiment)

    shared_time = outcomes[("shared", 4)].modeled_time
    rows = []
    for (mode, sockets), result in outcomes.items():
        rows.append([mode, sockets, f"{result.modeled_time:,.0f}",
                     f"{shared_time / result.modeled_time:.2f}x"])
    reporter.line("E4 / Sec 4.2 -- NUMA-aware vs shared-model sampling")
    reporter.line("paper: 4-socket NUMA-aware run is >4x faster than a")
    reporter.line("non-NUMA-aware implementation")
    reporter.line()
    reporter.table(["mode", "sockets", "modeled time", "speedup vs shared/4"],
                   rows)

    aware4 = outcomes[("aware", 4)].modeled_time
    speedup = shared_time / aware4
    reporter.line()
    reporter.line(f"modeled speedup (aware/4 vs shared/4): {speedup:.2f}x "
                  f"(paper: >4x)")
    assert speedup > 3.0

    # statistical efficiency: replica marginals stay close to a single chain
    single = outcomes[("aware", 1)].marginals
    replicated = outcomes[("aware", 4)].marginals
    disagreement = float(np.mean(np.abs(single - replicated)))
    reporter.line(f"mean marginal disagreement 1-socket vs 4-socket: "
                  f"{disagreement:.3f}")
    assert disagreement < 0.15


def test_e4_sync_cadence_tradeoff(benchmark, reporter):
    compiled = kbc_graph()
    rows = []

    def experiment():
        for sync_every in (1, 5, 25):
            engine = NumaGibbs(compiled, NumaConfig(
                sockets=4, numa_aware=True, sync_every=sync_every), seed=0)
            result = engine.run(num_samples=40, burn_in=10)
            rows.append([sync_every, f"{result.modeled_time:,.0f}"])
        return rows

    once(benchmark, experiment)
    reporter.line("E4b -- model-averaging cadence (hardware vs statistical "
                  "efficiency)")
    reporter.table(["sync every N sweeps", "modeled time"], rows)
    times = [float(r[1].replace(",", "")) for r in rows]
    assert times[0] > times[-1]   # frequent sync costs communication time


def test_e4_absolute_throughput(benchmark, reporter):
    compiled = kbc_graph(num_candidates=20000)
    sampler = GibbsSampler(compiled, seed=0)
    world = sampler.initial_assignment()

    def one_sweep():
        return sampler.sweep(world)

    samples = benchmark(one_sweep)
    elapsed = benchmark.stats["mean"]
    rate = samples / elapsed
    reporter.line("E4c -- absolute sampling throughput")
    reporter.table(
        ["engine", "variable-samples/s"],
        [["this repo (1 core, Python+numpy)", f"{rate:,.0f}"],
         ["paper (40 cores, C++, 4-socket NUMA)", f"{PAPER_RATE:,.0f}"]])
    reporter.line()
    reporter.line(f"gap: {PAPER_RATE / rate:,.0f}x -- expected for a pure-"
                  f"Python single-core substrate")
    assert rate > 100_000
