"""Sentence splitting.

A rule-based splitter good enough for the synthetic corpora and robust to the
abbreviation traps that matter for our applications (``Dr.``, ``Mr.``,
``et al.``, initials like ``B. Obama``, decimal numbers).
"""

from __future__ import annotations

import re

# Abbreviations after which a period does NOT end the sentence.
_ABBREVIATIONS = {
    "dr", "mr", "mrs", "ms", "prof", "sr", "jr", "st", "vs", "etc", "et",
    "al", "fig", "eq", "no", "vol", "pp", "inc", "corp", "co", "dept",
    "approx", "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep",
    "sept", "oct", "nov", "dec", "e.g", "i.e", "cf",
}

_BOUNDARY = re.compile(r"([.!?])(\s+|$)")


def split_sentences(text: str) -> list[str]:
    """Split ``text`` into sentences.

    Newlines are always sentence boundaries (the HTML stripper emits one per
    block element).  Within a line, ``. ! ?`` followed by whitespace ends a
    sentence unless the period terminates a known abbreviation or a single
    capital initial, or the next character is lowercase (mid-sentence period).
    """
    sentences: list[str] = []
    for line in text.split("\n"):
        line = line.strip()
        if not line:
            continue
        sentences.extend(_split_line(line))
    return sentences


def _split_line(line: str) -> list[str]:
    pieces: list[str] = []
    start = 0
    for match in _BOUNDARY.finditer(line):
        end = match.end(1)
        if match.group(1) == "." and _is_non_terminal_period(line, match.start(1)):
            continue
        nxt = match.end()
        if nxt < len(line) and line[nxt].islower():
            continue
        piece = line[start:end].strip()
        if piece:
            pieces.append(piece)
        start = match.end()
    tail = line[start:].strip()
    if tail:
        pieces.append(tail)
    return pieces


def _is_non_terminal_period(line: str, period_index: int) -> bool:
    before = line[:period_index]
    word_match = re.search(r"([A-Za-z][\w.]*)$", before)
    if not word_match:
        return False
    word = word_match.group(1)
    if word.lower().rstrip(".") in _ABBREVIATIONS or word.lower() in _ABBREVIATIONS:
        return True
    # Single capital initial, e.g. the "B." in "B. Obama".
    if len(word) == 1 and word.isupper():
        return True
    # Internal-period tokens like "e.g" already matched above; also treat
    # digit-adjacent periods as decimal points.
    if period_index + 1 < len(line) and line[period_index + 1].isdigit():
        return True
    return False
