"""Property-based tests for the datastore: relational-algebra laws and
multiset invariants under arbitrary data."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastore import Relation, Schema
from repro.datastore import query as Q

# small value domains keep collision (and thus join/dup coverage) high
values = st.integers(min_value=0, max_value=5)
rows2 = st.lists(st.tuples(values, values), max_size=25)
rows2_nonneg = rows2


def relation2(name, rows):
    relation = Relation(name, Schema.of(a="int", b="int"))
    for row in rows:
        relation.insert(row)
    return relation


def relation2_named(name, columns, rows):
    relation = Relation(name, Schema.of(**{c: "int" for c in columns}))
    for row in rows:
        relation.insert(row)
    return relation


def bag(relation):
    return Counter(iter(relation))


class TestRelationInvariants:
    @given(rows2)
    def test_len_equals_sum_of_counts(self, rows):
        relation = relation2("r", rows)
        assert len(relation) == len(rows)
        assert sum(count for _, count in relation.counted_rows()) == len(rows)

    @given(rows2, rows2)
    def test_insert_then_delete_roundtrip(self, rows, to_delete):
        relation = relation2("r", rows)
        original = bag(relation)
        inserted = [relation.insert(row) for row in to_delete]
        for row in inserted:
            assert relation.delete(row) == 1
        assert bag(relation) == original

    @given(rows2)
    def test_index_lookup_agrees_with_scan(self, rows):
        relation = relation2("r", rows)
        for key in {row[0] for row in rows}:
            via_index = Counter(relation.lookup(["a"], [key]))
            via_scan = Counter(row for row in relation if row[0] == key)
            assert via_index == via_scan

    @given(rows2)
    def test_copy_preserves_bag(self, rows):
        relation = relation2("r", rows)
        assert bag(relation.copy()) == bag(relation)


class TestAlgebraLaws:
    @given(rows2)
    def test_select_true_is_identity(self, rows):
        relation = relation2("r", rows)
        assert bag(Q.select(relation, lambda r: True)) == bag(relation)

    @given(rows2)
    def test_select_conjunction_is_composition(self, rows):
        relation = relation2("r", rows)
        p1 = lambda r: r["a"] > 1
        p2 = lambda r: r["b"] < 4
        combined = Q.select(relation, lambda r: p1(r) and p2(r))
        composed = Q.select(Q.select(relation, p1), p2)
        assert bag(combined) == bag(composed)

    @given(rows2)
    def test_project_preserves_cardinality(self, rows):
        relation = relation2("r", rows)
        assert len(Q.project(relation, ["a"])) == len(relation)

    @given(rows2, rows2)
    def test_union_counts_add(self, rows_a, rows_b):
        left = relation2("l", rows_a)
        right = relation2("r", rows_b)
        merged = bag(Q.union(left, right))
        assert merged == bag(left) + bag(right)

    @given(rows2, rows2)
    def test_difference_is_bag_subtraction(self, rows_a, rows_b):
        left = relation2("l", rows_a)
        right = relation2("r", rows_b)
        expected = bag(left) - bag(right)
        assert bag(Q.difference(left, right)) == expected

    @given(rows2, rows2)
    def test_join_commutes_up_to_column_order(self, rows_a, rows_b):
        left = relation2_named("l", ["k", "x"], rows_a)
        right = relation2_named("r", ["k", "y"], rows_b)
        forward = Q.join(left, right, on=[("k", "k")])
        backward = Q.join(right, left, on=[("k", "k")])
        fwd = Counter((r[0], r[1], r[2]) for r in forward)      # k, x, y
        bwd = Counter((r[0], r[2], r[1]) for r in backward)     # k, x, y
        assert fwd == bwd

    @given(rows2, rows2)
    def test_join_cardinality_formula(self, rows_a, rows_b):
        left = relation2_named("l", ["k", "x"], rows_a)
        right = relation2_named("r", ["k", "y"], rows_b)
        joined = Q.join(left, right, on=[("k", "k")])
        expected = sum(
            Counter(r[0] for r in rows_a)[key] * count
            for key, count in Counter(r[0] for r in rows_b).items())
        assert len(joined) == expected

    @given(rows2)
    def test_distinct_idempotent(self, rows):
        relation = relation2("r", rows)
        once = Q.distinct(relation)
        twice = Q.distinct(once)
        assert bag(once) == bag(twice)
        assert all(count == 1 for _, count in once.counted_rows())

    @given(rows2)
    def test_aggregate_count_totals(self, rows):
        relation = relation2("r", rows)
        out = Q.aggregate(relation, ["a"], {"n": ("count", "*")})
        assert sum(row[1] for row in out) == len(relation)


class TestSqlAgreesWithAlgebra:
    """The SQL layer must agree with hand-composed relational algebra."""

    @given(rows2)
    def test_where_equals_select(self, rows):
        from repro.datastore import Database
        from repro.datastore.sql import execute
        db = Database()
        db.create("t", a="int", b="int")
        db.insert("t", rows)
        via_sql = Counter(execute(db, "SELECT a, b FROM t WHERE a > 2"))
        via_algebra = Counter(iter(Q.select(db["t"], lambda r: r["a"] > 2)))
        assert via_sql == via_algebra

    @given(rows2, rows2)
    def test_join_equals_algebra_join(self, rows_a, rows_b):
        from repro.datastore import Database
        from repro.datastore.sql import execute
        db = Database()
        db.create("l", k="int", x="int")
        db.create("r", k="int", y="int")
        db.insert("l", rows_a)
        db.insert("r", rows_b)
        via_sql = Counter(execute(
            db, "SELECT l.k, l.x, r.y FROM l JOIN r ON l.k = r.k"))
        joined = Q.join(db["l"], db["r"], on=[("k", "k")])
        via_algebra = Counter(iter(joined))
        assert via_sql == via_algebra

    @given(rows2)
    def test_group_count_equals_aggregate(self, rows):
        from repro.datastore import Database
        from repro.datastore.sql import execute
        db = Database()
        db.create("t", a="int", b="int")
        db.insert("t", rows)
        via_sql = Counter(execute(db, "SELECT a, COUNT(*) AS n FROM t GROUP BY a"))
        via_algebra = Counter(iter(Q.aggregate(db["t"], ["a"], {"n": ("count", "*")})))
        assert via_sql == via_algebra

    @given(rows2)
    def test_limit_bounds_output(self, rows):
        from repro.datastore import Database
        from repro.datastore.sql import execute
        db = Database()
        db.create("t", a="int", b="int")
        db.insert("t", rows)
        result = execute(db, "SELECT a FROM t ORDER BY a LIMIT 3")
        assert len(result) <= 3
        values = [row[0] for row in result]
        assert values == sorted(values)
