"""The classified-ads application (modelled on paper Section 6.4).

Aspirational schema per ad: price, location, phone.  Price and location are
probabilistic extractions (distractor numbers and loose phrasing make them
genuinely ambiguous); phone numbers are extracted with a deterministic regex
-- the paper's one honest exception: "It has led to failure every single time
but two: when extracting phone numbers and email addresses."

Forum posts citing an ad's phone number are joined to ads deterministically,
reproducing the paper's ad<->forum linkage analysis.
"""

from __future__ import annotations

import re

from repro.apps.common import window_features
from repro.core.app import DeepDive
from repro.core.result import RunResult
from repro.corpus.base import GeneratedCorpus
from repro.eval.metrics import PrecisionRecall, precision_recall
from repro.nlp.tokenize import token_texts

PROGRAM = """
AdSentence(s text, ad text, content text).
PriceCandidate(s text, m text, ad text, value text, position int).
LocCandidate(s text, m text, ad text, city text, position int).
AdPrice?(ad text, value text).
AdLocation?(ad text, city text).
KnownPrice(ad text, value text).
KnownLocation(ad text, city text).

AdPrice(ad, v) :-
    PriceCandidate(s, m, ad, v, pos), AdSentence(s, ad, content)
    weight = price_features(pos, content).

AdLocation(ad, c) :-
    LocCandidate(s, m, ad, c, pos), AdSentence(s, ad, content)
    weight = loc_features(pos, content).

AdPrice_Ev(ad, v, true) :-
    PriceCandidate(s, m, ad, v, pos), KnownPrice(ad, v).

AdPrice_Ev(ad, v, false) :-
    PriceCandidate(s, m, ad, v, pos), KnownPrice(ad, v2), [v != v2].

AdLocation_Ev(ad, c, true) :-
    LocCandidate(s, m, ad, c, pos), KnownLocation(ad, c).

AdLocation_Ev(ad, c, false) :-
    LocCandidate(s, m, ad, c, pos), KnownLocation(ad, c2), [c != c2].
"""

#: The online (serving) flavour of the ads schema: contact details become
#: *published* variable relations so the compliance layer has real PII to
#: scrub at snapshot publish.  Supervision is positive-only distant
#: supervision from the KnownPhone/KnownEmail samples the PII corpus emits
#: (``AdsConfig(pii=True)``) — contact extraction is near-deterministic, so
#: one-sided evidence is enough to drive accepted marginals high.
SERVE_PROGRAM = """
ContactSentence(s text, ad text, content text).
PhoneCandidate(s text, m text, ad text, phone text, position int).
EmailCandidate(s text, m text, ad text, email text, position int).
AdPhone?(ad text, phone text).
AdEmail?(ad text, email text).
KnownPhone(ad text, phone text).
KnownEmail(ad text, email text).

AdPhone(ad, p) :-
    PhoneCandidate(s, m, ad, p, pos), ContactSentence(s, ad, content)
    weight = contact_features(pos, content).

AdEmail(ad, e) :-
    EmailCandidate(s, m, ad, e, pos), ContactSentence(s, ad, content)
    weight = contact_features(pos, content).

AdPhone_Ev(ad, p, true) :-
    PhoneCandidate(s, m, ad, p, pos), KnownPhone(ad, p).

AdEmail_Ev(ad, e, true) :-
    EmailCandidate(s, m, ad, e, pos), KnownEmail(ad, e).
"""

NUMBER_PATTERN = re.compile(r"^\d[\d,]*$")
PHONE_PATTERN = re.compile(r"\b(555-\d{4})\b")
#: Serving-side contact shapes: parenthesized and dashed 10-digit numbers
#: plus the classic 7-digit local form (ordered longest-first so a 10-digit
#: number is never re-reported as its 7-digit tail).
CONTACT_PHONE_PATTERN = re.compile(
    r"\(\d{3}\)\s*\d{3}-\d{4}|(?<![\d-])\d{3}-\d{3}-\d{4}(?![\d-])"
    r"|(?<![\d-])\d{3}-\d{4}(?![\d-])")
EMAIL_PATTERN = re.compile(
    r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b")


def is_ad(doc_id: str) -> bool:
    return doc_id.startswith("ad")


def price_candidate_extractor(sentence):
    """Every bare number in an ad is a price candidate (high recall)."""
    if not is_ad(sentence.doc_id):
        return []
    rows = []
    for position, token in enumerate(sentence.tokens):
        if NUMBER_PATTERN.match(token) and "-" not in token:
            mention = f"{sentence.key}:{position}"
            rows.append((sentence.key, mention, sentence.doc_id,
                         token.replace(",", ""), position))
    return rows


def location_candidate_extractor_factory(cities: set[str]):
    """City-gazetteer location candidates."""
    lowered = {c.lower() for c in cities}

    def extract(sentence):
        if not is_ad(sentence.doc_id):
            return []
        rows = []
        for position, token in enumerate(sentence.tokens):
            if token.lower() in lowered:
                mention = f"{sentence.key}:{position}"
                rows.append((sentence.key, mention, sentence.doc_id,
                             token, position))
        return rows
    return extract


def price_features(position: int, content: str) -> list[str]:
    """Window features for a numeric candidate; '$ to the left' is the
    paper's own running example of a feature."""
    tokens = [t.lower() for t in token_texts(content)]
    features = window_features(position, content, prefix="price_")
    if position > 0 and tokens[position - 1] == "$":
        features.append("price_dollar_left")
    return features


def loc_features(position: int, content: str) -> list[str]:
    return window_features(position, content, prefix="loc_")


def contact_features(position: int, content: str) -> list[str]:
    """Features for a contact candidate: a bias plus the word to its left
    (``txt``, ``ph``, ``line``, ``email`` ... — how ads flag contacts)."""
    features = ["contact_bias"]
    left = content[:position].rstrip().rsplit(None, 1)
    if left:
        features.append(f"contact_left:{left[-1].lower()}")
    return features


def phone_candidate_extractor(sentence):
    """Regex contact-phone candidates over the raw sentence text (token
    splitting mangles parenthesized numbers, so spans are character-based)."""
    if not is_ad(sentence.doc_id):
        return []
    return [(sentence.key, f"{sentence.key}:{m.start()}", sentence.doc_id,
             m.group(0), m.start())
            for m in CONTACT_PHONE_PATTERN.finditer(sentence.text)]


def email_candidate_extractor(sentence):
    if not is_ad(sentence.doc_id):
        return []
    return [(sentence.key, f"{sentence.key}:{m.start()}", sentence.doc_id,
             m.group(0), m.start())
            for m in EMAIL_PATTERN.finditer(sentence.text)]


def make_serve_factory(seed: int = 0):
    """An :data:`repro.serve.AppFactory` for the online ads application.

    Builds a fresh, empty app per call (documents and KB rows arrive as
    ingest operations); ``extra_rules`` carries any accumulated rule
    deltas, per the factory contract.
    """
    def app_factory(extra_rules: str = "") -> DeepDive:
        source = SERVE_PROGRAM + ("\n" + extra_rules if extra_rules else "")
        app = DeepDive(source, seed=seed)
        app.register_udf("contact_features", contact_features)
        app.add_extractor("PhoneCandidate", phone_candidate_extractor,
                          name="contact_phones")
        app.add_extractor("EmailCandidate", email_candidate_extractor,
                          name="contact_emails")
        app.add_extractor(
            "ContactSentence",
            lambda s: [(s.key, s.doc_id, s.text)] if is_ad(s.doc_id) else [],
            name="contact_sentences")
        return app
    return app_factory


def serve_bootstrap_ops(corpus: GeneratedCorpus) -> list:
    """Bootstrap operations for :func:`make_serve_factory` services: the
    corpus documents plus the KnownPhone/KnownEmail supervision samples
    (present when the corpus was generated with ``AdsConfig(pii=True)``)."""
    from repro.serve import add_documents, add_rows
    ops = [add_documents(corpus.documents)]
    for relation in ("KnownPhone", "KnownEmail"):
        rows = corpus.kb.get(relation, [])
        if rows:
            ops.append(add_rows(relation, rows))
    return ops


def phone_rows(documents) -> list[tuple]:
    """Deterministic phone extraction: (doc_id, phone) via regex."""
    rows = []
    for doc in documents:
        for match in PHONE_PATTERN.finditer(doc.content):
            rows.append((doc.doc_id, match.group(1)))
    return rows


def build(corpus: GeneratedCorpus, seed: int = 0) -> DeepDive:
    """Wire the ads application for a generated corpus."""
    app = DeepDive(PROGRAM, seed=seed)
    app.register_udf("price_features", price_features)
    app.register_udf("loc_features", loc_features)

    cities = set(corpus.metadata["cities"])
    app.add_extractor("PriceCandidate", price_candidate_extractor, name="prices")
    app.add_extractor("LocCandidate",
                      location_candidate_extractor_factory(cities), name="cities")
    app.add_extractor(
        "AdSentence",
        lambda s: [(s.key, s.doc_id, s.text)] if is_ad(s.doc_id) else [],
        name="ad_sentences")
    app.load_documents(corpus.documents)
    app.add_rows("KnownPrice", corpus.kb["KnownPrice"])
    app.add_rows("KnownLocation", corpus.kb["KnownLocation"])
    return app


def phone_predictions(corpus: GeneratedCorpus) -> set[tuple]:
    """The deterministic phone table over ad documents."""
    return {(doc_id, phone) for doc_id, phone
            in phone_rows(corpus.documents) if is_ad(doc_id)}


def forum_links(corpus: GeneratedCorpus) -> set[tuple]:
    """(ad_id, forum_doc_id) pairs joined on a shared phone number."""
    ad_by_phone = {}
    forum_mentions = []
    for doc_id, phone in phone_rows(corpus.documents):
        if is_ad(doc_id):
            ad_by_phone[phone] = doc_id
        else:
            forum_mentions.append((doc_id, phone))
    return {(ad_by_phone[phone], doc_id)
            for doc_id, phone in forum_mentions if phone in ad_by_phone}


def evaluate_price(app: DeepDive, result: RunResult,
                   corpus: GeneratedCorpus) -> PrecisionRecall:
    return precision_recall(result.output_tuples("AdPrice"),
                            corpus.truth["ad_price"])


def evaluate_location(app: DeepDive, result: RunResult,
                      corpus: GeneratedCorpus) -> PrecisionRecall:
    return precision_recall(result.output_tuples("AdLocation"),
                            corpus.truth["ad_location"])


def evaluate_phone(corpus: GeneratedCorpus) -> PrecisionRecall:
    return precision_recall(phone_predictions(corpus), corpus.truth["ad_phone"])
