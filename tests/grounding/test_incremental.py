"""Incremental grounding tests: the invariant is that a grounder that saw a
sequence of change batches must end in the same state as a grounder built
fresh on the final database."""

import pytest

from repro.datastore import Database
from repro.ddlog import DDlogProgram
from repro.grounding import Grounder

PROGRAM = """
Sentence(s text, content text).
PersonCandidate(s text, m text).
MarriedCandidate(m1 text, m2 text).
MarriedMentions?(m1 text, m2 text).
EL(m text, e text).
Married(e1 text, e2 text).

MarriedCandidate(m1, m2) :-
    PersonCandidate(s, m1), PersonCandidate(s, m2), [m1 < m2].

MarriedMentions(m1, m2) :-
    MarriedCandidate(m1, m2), PersonCandidate(s, m1), Sentence(s, sent)
    weight = phrase(m1, m2, sent).

MarriedMentions_Ev(m1, m2, true) :-
    MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
"""


def new_app():
    program = DDlogProgram.parse(PROGRAM)
    program.register_udf("phrase", lambda m1, m2, sent: f"p:{sent.split()[0]}")
    db = Database()
    program.create_relations(db)
    return program, db


def base_rows():
    return {
        "Sentence": [("s1", "and married obama michelle")],
        "PersonCandidate": [("s1", "obama"), ("s1", "michelle")],
        "EL": [("obama", "E_o"), ("michelle", "E_m")],
        "Married": [("E_m", "E_o")],
    }


def graph_signature(grounder):
    """Canonical description of the graph for cross-grounder comparison."""
    graph = grounder.graph
    variables = {v.key: v.evidence for v in graph.variables.values()}
    factors = sorted(
        (f.function, tuple(graph.variables[v].key for v in f.var_ids),
         graph.weights[f.weight_id].key)
        for f in graph.factors.values())
    return variables, factors


class TestIncrementalMatchesFresh:
    def test_insert_only(self):
        program, db = new_app()
        db.insert("Sentence", base_rows()["Sentence"])
        db.insert("PersonCandidate", base_rows()["PersonCandidate"])
        incremental = Grounder(program, db)
        delta = incremental.apply_changes(inserts={
            "EL": base_rows()["EL"], "Married": base_rows()["Married"]})
        assert delta.evidence_changed == 1

        fresh_program, fresh_db = new_app()
        for name, rows in base_rows().items():
            fresh_db.insert(name, rows)
        fresh = Grounder(fresh_program, fresh_db)
        assert graph_signature(incremental) == graph_signature(fresh)

    def test_new_document(self):
        program, db = new_app()
        for name, rows in base_rows().items():
            db.insert(name, rows)
        incremental = Grounder(program, db)
        delta = incremental.apply_changes(inserts={
            "Sentence": [("s2", "wed alice bob")],
            "PersonCandidate": [("s2", "alice"), ("s2", "bob")],
        })
        assert delta.variables_added == 1
        assert delta.factors_added == 1

        fresh_program, fresh_db = new_app()
        for name, rows in base_rows().items():
            fresh_db.insert(name, rows)
        fresh_db.insert("Sentence", [("s2", "wed alice bob")])
        fresh_db.insert("PersonCandidate", [("s2", "alice"), ("s2", "bob")])
        fresh = Grounder(fresh_program, fresh_db)
        assert graph_signature(incremental) == graph_signature(fresh)

    def test_delete_document(self):
        program, db = new_app()
        for name, rows in base_rows().items():
            db.insert(name, rows)
        db.insert("Sentence", [("s2", "wed alice bob")])
        db.insert("PersonCandidate", [("s2", "alice"), ("s2", "bob")])
        incremental = Grounder(program, db)
        delta = incremental.apply_changes(deletes={
            "Sentence": [("s2", "wed alice bob")],
            "PersonCandidate": [("s2", "alice"), ("s2", "bob")],
        })
        assert delta.factors_removed == 1
        assert delta.variables_removed == 1

        fresh_program, fresh_db = new_app()
        for name, rows in base_rows().items():
            fresh_db.insert(name, rows)
        fresh = Grounder(fresh_program, fresh_db)
        assert graph_signature(incremental) == graph_signature(fresh)

    def test_evidence_retraction(self):
        program, db = new_app()
        for name, rows in base_rows().items():
            db.insert(name, rows)
        incremental = Grounder(program, db)
        delta = incremental.apply_changes(deletes={"Married": [("E_m", "E_o")]})
        assert delta.evidence_changed == 1
        key = ("MarriedMentions", ("michelle", "obama"))
        var = incremental.graph.variables[incremental.graph.variable_id(key)]
        assert var.evidence is None

    def test_candidate_relation_kept_in_sync(self):
        program, db = new_app()
        for name, rows in base_rows().items():
            db.insert(name, rows)
        grounder = Grounder(program, db)
        grounder.apply_changes(inserts={
            "PersonCandidate": [("s1", "aaron")]})
        assert ("aaron", "michelle") in db["MarriedCandidate"]
        assert ("aaron", "obama") in db["MarriedCandidate"]

    def test_multiple_batches_match_fresh(self):
        program, db = new_app()
        incremental = Grounder(program, db)
        batches = [
            ({"Sentence": [("s1", "and married obama michelle")],
              "PersonCandidate": [("s1", "obama"), ("s1", "michelle")]}, {}),
            ({"EL": [("obama", "E_o"), ("michelle", "E_m")]}, {}),
            ({"Married": [("E_m", "E_o")]}, {}),
            ({"Sentence": [("s2", "met carol dan")],
              "PersonCandidate": [("s2", "carol"), ("s2", "dan")]}, {}),
            ({}, {"PersonCandidate": [("s2", "carol")],
                  "Sentence": [("s2", "met carol dan")]}),
        ]
        for inserts, deletes in batches:
            incremental.apply_changes(inserts=inserts, deletes=deletes)

        fresh_program, fresh_db = new_app()
        for name, rows in base_rows().items():
            fresh_db.insert(name, rows)
        fresh_db.insert("PersonCandidate", [("s2", "dan")])
        fresh = Grounder(fresh_program, fresh_db)
        assert graph_signature(incremental) == graph_signature(fresh)

    def test_delta_counts_zero_for_irrelevant_change(self):
        program, db = new_app()
        for name, rows in base_rows().items():
            db.insert(name, rows)
        grounder = Grounder(program, db)
        delta = grounder.apply_changes(inserts={"EL": [("nobody", "E_x")]})
        assert delta.total_changes == 0
