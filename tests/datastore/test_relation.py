"""Unit tests for the bag-semantics tuple store."""

import pytest

from repro.datastore import Relation, Schema


@pytest.fixture
def people():
    relation = Relation("people", Schema.of(name="text", age="int"))
    relation.insert(("alice", 30))
    relation.insert(("bob", 25))
    relation.insert(("alice", 30))  # duplicate -> multiplicity 2
    return relation


class TestBasics:
    def test_len_counts_multiplicity(self, people):
        assert len(people) == 3

    def test_distinct_count(self, people):
        assert people.distinct_count == 2

    def test_iter_repeats_duplicates(self, people):
        rows = list(people)
        assert rows.count(("alice", 30)) == 2

    def test_contains(self, people):
        assert ("bob", 25) in people
        assert ("carol", 1) not in people

    def test_count(self, people):
        assert people.count(("alice", 30)) == 2
        assert people.count(("zed", 0)) == 0

    def test_insert_validates(self, people):
        from repro.datastore.schema import SchemaError
        with pytest.raises(SchemaError):
            people.insert(("too", "many", "cols"))

    def test_insert_count_must_be_positive(self, people):
        with pytest.raises(ValueError):
            people.insert(("x", 1), count=0)


class TestDelete:
    def test_delete_decrements(self, people):
        assert people.delete(("alice", 30)) == 1
        assert people.count(("alice", 30)) == 1

    def test_delete_removes_at_zero(self, people):
        people.delete(("alice", 30), count=2)
        assert ("alice", 30) not in people

    def test_delete_absent_returns_zero(self, people):
        assert people.delete(("nobody", 1)) == 0

    def test_delete_caps_at_present(self, people):
        assert people.delete(("bob", 25), count=10) == 1

    def test_clear(self, people):
        people.clear()
        assert len(people) == 0


class TestIndexes:
    def test_lookup_builds_index(self, people):
        rows = list(people.lookup(["name"], ["alice"]))
        assert rows == [("alice", 30), ("alice", 30)]

    def test_lookup_distinct(self, people):
        rows = list(people.lookup_distinct(["name"], ["alice"]))
        assert rows == [("alice", 30)]

    def test_lookup_miss(self, people):
        assert list(people.lookup(["name"], ["zed"])) == []

    def test_index_stays_consistent_after_insert(self, people):
        list(people.lookup(["age"], [25]))  # force index creation
        people.insert(("dan", 25))
        assert sorted(people.lookup(["age"], [25])) == [("bob", 25), ("dan", 25)]

    def test_index_stays_consistent_after_delete(self, people):
        list(people.lookup(["age"], [30]))
        people.delete(("alice", 30), count=2)
        assert list(people.lookup(["age"], [30])) == []

    def test_multicolumn_lookup(self, people):
        assert list(people.lookup_distinct(["name", "age"], ["bob", 25])) == [("bob", 25)]


class TestConveniences:
    def test_rows_where(self, people):
        rows = list(people.rows_where(lambda r: r["age"] > 26))
        assert rows == [("alice", 30), ("alice", 30)]

    def test_column(self, people):
        assert sorted(people.column("age")) == [25, 30, 30]

    def test_to_dicts(self, people):
        dicts = people.to_dicts()
        assert {"name": "bob", "age": 25} in dicts

    def test_copy_is_independent(self, people):
        clone = people.copy("clone")
        clone.insert(("erin", 1))
        assert ("erin", 1) not in people
        assert clone.count(("alice", 30)) == 2
