"""Unit tests for the extractor runner machinery."""

from repro.core.extractors import (CandidateExtractor, DocumentExtractor,
                                   run_document_extractors, run_extractors)
from repro.nlp.pipeline import Document, preprocess_document


def sentences(text):
    return preprocess_document(Document("d", text))


class TestCandidateExtractor:
    def test_rows_normalized_to_tuples(self):
        extractor = CandidateExtractor("R", lambda s: [[s.key, "x"]])
        rows = extractor.rows(sentences("hello there")[0])
        assert rows == [("d:0", "x")]

    def test_none_result_is_empty(self):
        extractor = CandidateExtractor("R", lambda s: None)
        assert extractor.rows(sentences("hello")[0]) == []

    def test_run_extractors_groups_by_relation(self):
        first = CandidateExtractor("A", lambda s: [(s.key,)])
        second = CandidateExtractor("B", lambda s: [(s.key, s.text)])
        grouped = run_extractors([first, second], sentences("One. Two."))
        assert len(grouped["A"]) == 2
        assert len(grouped["B"]) == 2

    def test_empty_relations_dropped(self):
        silent = CandidateExtractor("A", lambda s: [])
        assert run_extractors([silent], sentences("One.")) == {}


class TestDocumentExtractor:
    def test_rows_normalized(self):
        extractor = DocumentExtractor(lambda d: {"R": [[d.doc_id, 1]]})
        assert extractor.rows(Document("x", "")) == {"R": [("x", 1)]}

    def test_none_result_empty(self):
        extractor = DocumentExtractor(lambda d: None)
        assert extractor.rows(Document("x", "")) == {}

    def test_empty_relations_dropped(self):
        extractor = DocumentExtractor(lambda d: {"R": []})
        assert extractor.rows(Document("x", "")) == {}

    def test_run_document_extractors_merges(self):
        first = DocumentExtractor(lambda d: {"R": [(d.doc_id, 1)]})
        second = DocumentExtractor(lambda d: {"R": [(d.doc_id, 2)],
                                              "S": [(d.doc_id,)]})
        docs = [Document("a", ""), Document("b", "")]
        grouped = run_document_extractors([first, second], docs)
        assert len(grouped["R"]) == 4
        assert len(grouped["S"]) == 2
