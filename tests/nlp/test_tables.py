"""Tests for the table-extraction substrate."""

from repro.nlp.tables import cell_candidates, extract_tables, table_sentences

HTML = """
<p>Measured properties:</p>
<table>
  <tr><th>Material</th><th>Mobility</th><th>Band gap</th></tr>
  <tr><td>GaAs</td><td>8500</td><td>1.4</td></tr>
  <tr><td>InP</td><td>5400</td><td>1.3</td></tr>
</table>
<table>
  <tr><td>no</td><td>header</td></tr>
  <tr><td>plain</td><td>table</td></tr>
</table>
"""


class TestExtractTables:
    def test_finds_all_tables(self):
        tables = extract_tables("d", HTML)
        assert len(tables) == 2

    def test_dimensions(self):
        tables = extract_tables("d", HTML)
        assert len(tables[0]) == 3          # header + 2 data rows
        assert len(tables[0][0]) == 3       # 3 columns

    def test_header_flag(self):
        tables = extract_tables("d", HTML)
        assert all(cell.is_header for cell in tables[0][0])
        assert not any(cell.is_header for cell in tables[0][1])

    def test_cell_ids_unique(self):
        tables = extract_tables("d", HTML)
        ids = [cell.cell_id for table in tables for row in table for cell in row]
        assert len(set(ids)) == len(ids)

    def test_nested_markup_stripped(self):
        tables = extract_tables("d", "<table><tr><th>h</th></tr>"
                                     "<tr><td><b>bold</b> text</td></tr></table>")
        assert tables[0][1][0].text == "bold text"

    def test_no_tables(self):
        assert extract_tables("d", "<p>just text</p>") == []


class TestCellCandidates:
    def test_triples_extracted(self):
        triples = {(rh, ch, v) for _, rh, ch, v in cell_candidates("d", HTML)}
        assert ("GaAs", "Mobility", "8500") in triples
        assert ("InP", "Band gap", "1.3") in triples

    def test_headerless_table_skipped(self):
        triples = cell_candidates("d", HTML)
        assert all(value != "table" for _, _, _, value in triples)

    def test_count(self):
        # 2 data rows x 2 value columns from the headered table
        assert len(cell_candidates("d", HTML)) == 4

    def test_cell_id_resolvable(self):
        cell_id, _, _, _ = cell_candidates("d", HTML)[0]
        assert cell_id.startswith("d:t0:")


class TestTableSentences:
    def test_rows_linearized(self):
        sentences = table_sentences("d", HTML)
        assert "GaAs | 8500 | 1.4" in sentences

    def test_all_rows_present(self):
        assert len(table_sentences("d", HTML)) == 5
