"""Typed ingest operations: the serving layer's write vocabulary.

Everything that can change a live knowledge base travels as one of these
operations — through the bounded ingest queue, into the write-ahead log, and
finally through the DRed incremental grounding pipeline.  Each operation has
an exact JSON record form (`to_record`/`op_from_record`) so the WAL can
replay it bit-for-bit: rows reuse the nested-tuple key codec from
:mod:`repro.factorgraph.serialize`.

The vocabulary mirrors *Incremental Knowledge Base Construction Using
DeepDive*: document arrival/retraction, supervision (KB) updates as row
deltas on base relations, and rule deltas (new DDlog rules), which trigger
the full re-extraction regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.factorgraph.serialize import decode_key, encode_key


class OpError(ValueError):
    """Raised for malformed ingest operations or records."""


@dataclass(frozen=True)
class AddDocuments:
    """Ingest raw documents: NLP, extraction, then incremental grounding."""

    documents: tuple[tuple[str, str], ...]      # (doc_id, content) pairs

    KIND = "add_documents"

    def to_record(self) -> dict:
        return {"op": self.KIND,
                "documents": [[doc_id, content]
                              for doc_id, content in self.documents]}


@dataclass(frozen=True)
class RemoveDocuments:
    """Retract documents and everything ingestion derived from them."""

    doc_ids: tuple[str, ...]

    KIND = "remove_documents"

    def to_record(self) -> dict:
        return {"op": self.KIND, "doc_ids": list(self.doc_ids)}


@dataclass(frozen=True)
class AddRows:
    """Insert rows into a base relation (e.g. a distant-supervision KB)."""

    relation: str
    rows: tuple[tuple, ...]

    KIND = "add_rows"

    def to_record(self) -> dict:
        return {"op": self.KIND, "relation": self.relation,
                "rows": [encode_key(row) for row in self.rows]}


@dataclass(frozen=True)
class RemoveRows:
    """Delete rows from a base relation (supervision retraction)."""

    relation: str
    rows: tuple[tuple, ...]

    KIND = "remove_rows"

    def to_record(self) -> dict:
        return {"op": self.KIND, "relation": self.relation,
                "rows": [encode_key(row) for row in self.rows]}


@dataclass(frozen=True)
class AddRules:
    """Append DDlog rules to the program (triggers full re-extraction)."""

    source: str                                  # DDlog rule text

    KIND = "add_rules"

    def to_record(self) -> dict:
        return {"op": self.KIND, "source": self.source}


IngestOp = AddDocuments | RemoveDocuments | AddRows | RemoveRows | AddRules

_OP_KINDS = {cls.KIND: cls for cls in
             (AddDocuments, RemoveDocuments, AddRows, RemoveRows, AddRules)}


def add_documents(documents) -> AddDocuments:
    """Build an :class:`AddDocuments` from ``(doc_id, content)`` pairs or
    :class:`~repro.nlp.pipeline.Document` objects."""
    pairs = []
    for doc in documents:
        if hasattr(doc, "doc_id"):
            pairs.append((doc.doc_id, doc.content))
        else:
            doc_id, content = doc
            pairs.append((str(doc_id), str(content)))
    return AddDocuments(tuple(pairs))


def add_rows(relation: str, rows: Sequence[Sequence[Any]]) -> AddRows:
    return AddRows(relation, tuple(tuple(row) for row in rows))


def remove_rows(relation: str, rows: Sequence[Sequence[Any]]) -> RemoveRows:
    return RemoveRows(relation, tuple(tuple(row) for row in rows))


def op_from_record(record: dict) -> IngestOp:
    """Decode a WAL record back into its typed operation."""
    kind = record.get("op")
    cls = _OP_KINDS.get(kind)
    if cls is None:
        raise OpError(f"unknown ingest op kind {kind!r}; "
                      f"known kinds: {sorted(_OP_KINDS)}")
    if cls is AddDocuments:
        return AddDocuments(tuple((doc_id, content)
                                  for doc_id, content in record["documents"]))
    if cls is RemoveDocuments:
        return RemoveDocuments(tuple(record["doc_ids"]))
    if cls is AddRules:
        return AddRules(record["source"])
    rows = tuple(decode_key(row) for row in record["rows"])
    if cls is AddRows:
        return AddRows(record["relation"], rows)
    return RemoveRows(record["relation"], rows)
