"""Unit tests for the mutable factor graph."""

import pytest

from repro.factorgraph import FactorFunction, FactorGraph, GraphError


@pytest.fixture
def graph():
    return FactorGraph()


class TestVariables:
    def test_variable_created_once(self, graph):
        a = graph.variable("x")
        b = graph.variable("x")
        assert a == b
        assert graph.num_variables == 1

    def test_has_variable(self, graph):
        graph.variable("x")
        assert graph.has_variable("x")
        assert not graph.has_variable("y")

    def test_variable_id_missing_raises(self, graph):
        with pytest.raises(GraphError):
            graph.variable_id("nope")

    def test_set_evidence(self, graph):
        graph.variable("x")
        graph.set_evidence("x", True)
        assert graph.variables[graph.variable_id("x")].evidence is True
        graph.set_evidence("x", None)
        assert graph.variables[graph.variable_id("x")].evidence is None


class TestWeights:
    def test_weight_tying(self, graph):
        a = graph.weight(("phrase", "and his wife"))
        b = graph.weight(("phrase", "and his wife"))
        assert a == b
        assert graph.num_weights == 1

    def test_distinct_keys_distinct_weights(self, graph):
        assert graph.weight("a") != graph.weight("b")

    def test_fixed_weight(self, graph):
        wid = graph.weight("hard", initial_value=10.0, fixed=True)
        assert graph.weights[wid].fixed
        assert graph.weights[wid].value == 10.0

    def test_weight_by_key_missing(self, graph):
        with pytest.raises(GraphError):
            graph.weight_by_key("nope")


class TestFactors:
    def test_add_factor_links_variables(self, graph):
        v = graph.variable("x")
        w = graph.weight("w")
        fid = graph.add_factor(FactorFunction.IS_TRUE, [v], w)
        assert fid in graph.variables[v].factor_ids
        assert graph.weights[w].observations == 1

    def test_arity_enforced(self, graph):
        v = graph.variable("x")
        w = graph.weight("w")
        with pytest.raises(GraphError):
            graph.add_factor(FactorFunction.IS_TRUE, [v, v], w)
        with pytest.raises(GraphError):
            graph.add_factor(FactorFunction.EQUAL, [v], w)

    def test_unknown_variable_rejected(self, graph):
        w = graph.weight("w")
        with pytest.raises(GraphError):
            graph.add_factor(FactorFunction.IS_TRUE, [99], w)

    def test_unknown_weight_rejected(self, graph):
        v = graph.variable("x")
        with pytest.raises(GraphError):
            graph.add_factor(FactorFunction.IS_TRUE, [v], 99)

    def test_negated_mask_length_checked(self, graph):
        v = graph.variable("x")
        w = graph.weight("w")
        with pytest.raises(GraphError):
            graph.add_factor(FactorFunction.IS_TRUE, [v], w, negated=[True, False])

    def test_remove_factor(self, graph):
        v = graph.variable("x")
        w = graph.weight("w")
        fid = graph.add_factor(FactorFunction.IS_TRUE, [v], w)
        graph.remove_factor(fid)
        assert graph.num_factors == 0
        assert graph.weights[w].observations == 0
        assert fid not in graph.variables[v].factor_ids

    def test_remove_variable_removes_factors(self, graph):
        v1 = graph.variable("x")
        v2 = graph.variable("y")
        w = graph.weight("w")
        graph.add_factor(FactorFunction.EQUAL, [v1, v2], w)
        graph.remove_variable("x")
        assert graph.num_factors == 0
        assert graph.variables[v2].factor_ids == set()


class TestStats:
    def test_stats(self, graph):
        graph.variable("a")
        graph.variable("b")
        graph.set_evidence("a", True)
        stats = graph.stats()
        assert stats["variables"] == 2
        assert stats["evidence"] == 1
        assert stats["query"] == 1

    def test_iterators(self, graph):
        graph.variable("a")
        graph.variable("b")
        graph.set_evidence("a", False)
        assert [v.key for v in graph.evidence_variables()] == ["a"]
        assert [v.key for v in graph.query_variables()] == ["b"]
