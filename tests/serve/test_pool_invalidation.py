"""Segment-cache invalidation through the serving layer.

The warm pool caches each compiled graph's shared-memory packing.  A rule
delta (or any graph mutation) through ``repro.serve`` must therefore
*repack* -- sync the mutable arrays and bump the segment generation -- and
never serve marginals computed against stale weights.  These tests drive
rule and data deltas through a pooled :class:`KBService` and assert the
published marginals are bit-identical to a pool-free service applying the
same batches, plus unit-level coverage that an in-place graph mutation
repacks the segment rather than re-serving the old weights.
"""

import numpy as np
import pytest

from repro import DeepDive
from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.inference import NumaConfig, NumaGibbs
from repro.obs.config import EngineConfig
from repro.parallel import WorkerPool, shutdown_pools
from repro.serve import AddRules, KBService, add_rows
from tests.serve.conftest import (PROGRAM, RUN_KWARGS, bootstrap_ops,
                                  extractor, GOOD)

EXTRA_RULE = """
GoodName(m) :-
    NameMention(s, m, t, p), Content(s, content)
    weight = position_feature(p).
"""


def pooled_app_factory(seed=0, workers=2):
    """The conftest application, with a parallel EngineConfig."""
    config = EngineConfig(workers=workers, pool_min_work=0)

    def app_factory(extra_rules=""):
        source = PROGRAM + ("\n" + extra_rules if extra_rules else "")
        app = DeepDive(source, seed=seed, config=config)
        app.register_udf("name_features",
                         lambda t, content: [f"word:{t}",
                                             "fresh" if t in GOOD
                                             else "spoiled"])
        app.register_udf("position_feature", lambda p: [f"pos:{p}"])
        app.add_extractor("NameMention", extractor)
        app.add_extractor("Content", lambda s: [(s.key, s.text)])
        return app
    return app_factory


def sequential_app_factory(seed=0):
    return pooled_app_factory(seed=seed, workers=0)


class TestServeRepacksOnRuleDelta:
    def test_rule_delta_marginals_match_pool_free_service(self, tmp_path):
        """Satellite: a rule delta through a pooled service must publish
        exactly what a pool-free service publishes -- stale shared-memory
        weights would show up as diverging marginals here."""
        pooled = KBService.create(tmp_path / "pooled", pooled_app_factory(),
                                  bootstrap_ops(), run_kwargs=RUN_KWARGS)
        plain = KBService.create(tmp_path / "plain", sequential_app_factory(),
                                 bootstrap_ops(), run_kwargs=RUN_KWARGS)
        try:
            assert pooled._pool is not None      # config opted into pooling
            assert pooled.engine.pool is pooled._pool
            assert plain._pool is None
            batches = [
                [AddRules(EXTRA_RULE)],
                [add_rows("GoodList", [(GOOD[4],)])],
            ]
            for batch in batches:
                snap_pooled = pooled.ingest(batch, wait=True)
                snap_plain = plain.ingest(batch, wait=True)
                assert snap_pooled.version == snap_plain.version
                assert set(snap_pooled.marginals) == set(snap_plain.marginals)
                for key, value in snap_plain.marginals.items():
                    assert snap_pooled.marginals[key] == value, key
        finally:
            pooled.stop()
            plain.stop()
        assert pooled._pool is None              # stop released the pin

    def test_incremental_refresh_prestages_fresh_graphs(self, tmp_path):
        """Every incremental refresh compiles a fresh graph; prestaging it
        must land in the pool's segment cache (packs grow, never stale)."""
        service = KBService.create(tmp_path / "svc", pooled_app_factory(),
                                   bootstrap_ops(), run_kwargs=RUN_KWARGS)
        try:
            pool = service._pool
            assert pool is not None
            before = pool.stats["packs"] + pool.stats["repacks"]
            service.ingest([add_rows("GoodList", [(GOOD[5],)])], wait=True)
            after = pool.stats["packs"] + pool.stats["repacks"]
            assert after > before
        finally:
            service.stop()


class TestSegmentCacheInvalidation:
    """Unit-level: the invalidation machinery the serve guarantee rests on."""

    def chain(self, n=16):
        graph = FactorGraph()
        prev = graph.variable("v0")
        graph.add_factor(FactorFunction.IS_TRUE, [prev],
                         graph.weight("u", 0.5))
        for i in range(1, n):
            cur = graph.variable(f"v{i}")
            graph.add_factor(FactorFunction.EQUAL, [prev, cur],
                             graph.weight("c", 0.8))
            prev = cur
        return CompiledGraph(graph)

    def outcome(self, pool, compiled):
        return pool.run_replicas(compiled, sockets=3, seed=7,
                                 engine="chromatic", total_sweeps=15,
                                 burn_in=5, sync_every=5)

    def reference(self, compiled):
        sampler = NumaGibbs(compiled, NumaConfig(sockets=3, sync_every=5),
                            seed=7)
        return sampler._run_replicas_sequential(15, 5)

    def test_weight_mutation_repacks_and_changes_results(self):
        compiled = self.chain()
        with WorkerPool(2) as pool:
            first = self.outcome(pool, compiled)
            assert np.array_equal(first.totals,
                                  self.reference(compiled).totals)
            # learner-style in-place mutation
            compiled.weight_values[:] = compiled.weight_values * 3.0
            compiled.note_mutation()
            second = self.outcome(pool, compiled)
            assert pool.stats["repacks"] >= 1
            assert np.array_equal(second.totals,
                                  self.reference(compiled).totals)
            # serving the stale weights would have reproduced `first`
            assert not np.array_equal(second.totals, first.totals)

    def test_evidence_mutation_repacks(self):
        compiled = self.chain()
        with WorkerPool(2) as pool:
            self.outcome(pool, compiled)
            compiled.is_evidence[3] = True
            compiled.evidence_values[3] = True
            compiled.note_mutation()
            outcome = self.outcome(pool, compiled)
            assert pool.stats["repacks"] >= 1
            assert np.array_equal(outcome.totals,
                                  self.reference(compiled).totals)

    def test_unnoted_mutation_still_detected(self):
        """Belt and braces: even without note_mutation, the staging path
        compares mutable arrays against the segment and repacks."""
        compiled = self.chain()
        with WorkerPool(2) as pool:
            self.outcome(pool, compiled)
            compiled.weight_values[:] = compiled.weight_values * 2.0
            outcome = self.outcome(pool, compiled)   # no note_mutation()
            assert pool.stats["repacks"] >= 1
            assert np.array_equal(outcome.totals,
                                  self.reference(compiled).totals)

    def test_prestage_syncs_before_dispatch(self):
        compiled = self.chain()
        with WorkerPool(2) as pool:
            pool.prestage(compiled)
            assert pool.stats["packs"] == 1
            compiled.weight_values[:] = compiled.weight_values * 1.5
            compiled.note_mutation()
            pool.prestage(compiled)
            assert pool.stats["repacks"] == 1
            outcome = self.outcome(pool, compiled)
            assert np.array_equal(outcome.totals,
                                  self.reference(compiled).totals)


@pytest.fixture(autouse=True, scope="module")
def _shutdown_registry_pools():
    yield
    shutdown_pools()
