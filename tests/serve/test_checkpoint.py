"""Checkpoint manager: atomic saves, retention, and format validation."""

import json

import pytest

from repro.serve import (CHECKPOINT_FORMAT_VERSION, CheckpointError,
                         CheckpointManager)


def payload(tag):
    return {"engine_version": tag, "threshold": 0.9, "rule_deltas": [],
            "database": {}, "graph": {}, "grounder": {}, "state": {}}


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(payload(0), lsn=3)
        assert info.lsn == 3
        loaded = manager.load()
        assert loaded["engine_version"] == 0
        assert loaded["lsn"] == 3
        assert loaded["format"] == CHECKPOINT_FORMAT_VERSION

    def test_latest_picks_highest_lsn(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=10)
        for lsn in (1, 7, 4):
            manager.save(payload(lsn), lsn=lsn)
        assert manager.latest().lsn == 7
        assert [info.lsn for info in manager.list()] == [1, 4, 7]

    def test_no_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointManager(tmp_path).load()

    def test_no_temp_files_left_behind(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(payload(0), lsn=1)
        assert not list(tmp_path.glob("*.tmp"))


class TestRetention:
    def test_prunes_beyond_keep(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for lsn in range(1, 6):
            manager.save(payload(lsn), lsn=lsn)
        assert [info.lsn for info in manager.list()] == [4, 5]

    def test_prune_never_removes_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save(payload(0), lsn=9)
        assert manager.latest().lsn == 9


class TestValidation:
    def test_unknown_format_version_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(payload(0), lsn=1)
        document = json.loads(info.path.read_text())
        document["format"] = CHECKPOINT_FORMAT_VERSION + 1
        info.path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="unsupported checkpoint"):
            manager.load()

    def test_lsn_mismatch_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(payload(0), lsn=2)
        document = json.loads(info.path.read_text())
        document["lsn"] = 5
        info.path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="claims lsn 5"):
            manager.load()

    def test_unreadable_json_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(payload(0), lsn=1)
        info.path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            manager.load()
