"""Unit tests for HTML stripping, tokenization, and sentence splitting."""

from repro.nlp import split_sentences, strip_html, token_texts, tokenize


class TestStripHtml:
    def test_plain_text_passthrough(self):
        assert strip_html("hello world") == "hello world"

    def test_tags_removed(self):
        assert strip_html("<b>bold</b> text") == "bold text"

    def test_script_and_style_dropped(self):
        out = strip_html("<script>var x=1;</script>visible<style>p{}</style>")
        assert out == "visible"

    def test_block_tags_become_newlines(self):
        out = strip_html("<p>one</p><p>two</p>")
        assert out == "one\ntwo"

    def test_entities_decoded(self):
        assert strip_html("a &amp; b &lt;c&gt;") == "a & b <c>"

    def test_comments_dropped(self):
        assert strip_html("x<!-- hidden -->y") == "x y"

    def test_whitespace_normalized(self):
        assert strip_html("a    b\n\n\nc") == "a b\nc"


class TestTokenize:
    def test_simple_words(self):
        assert token_texts("the quick fox") == ["the", "quick", "fox"]

    def test_punctuation_split(self):
        assert token_texts("Hello, world!") == ["Hello", ",", "world", "!"]

    def test_prices_kept_whole(self):
        assert token_texts("$1,200.50 total") == ["$", "1,200.50", "total"]

    def test_currency_symbol_is_token(self):
        assert token_texts("€80") == ["€", "80"]

    def test_hyphenated_word(self):
        assert token_texts("state-of-the-art") == ["state-of-the-art"]

    def test_contraction_kept(self):
        assert token_texts("don't") == ["don't"]

    def test_decimal_number(self):
        assert token_texts("pi is 3.14") == ["pi", "is", "3.14"]

    def test_offsets(self):
        tokens = tokenize("ab cd")
        assert (tokens[0].start, tokens[0].end) == (0, 2)
        assert (tokens[1].start, tokens[1].end) == (3, 5)

    def test_ellipsis(self):
        assert token_texts("wait...") == ["wait", "..."]

    def test_empty_string(self):
        assert tokenize("") == []


class TestSentenceSplit:
    def test_basic_split(self):
        out = split_sentences("First sentence. Second sentence.")
        assert out == ["First sentence.", "Second sentence."]

    def test_abbreviation_not_boundary(self):
        out = split_sentences("Dr. Smith treated the claim. It closed.")
        assert out == ["Dr. Smith treated the claim.", "It closed."]

    def test_initial_not_boundary(self):
        out = split_sentences("B. Obama and Michelle were married Oct. 3, 1992.")
        assert len(out) == 1

    def test_decimal_not_boundary(self):
        out = split_sentences("Mobility was 3.5 units. Next.")
        assert out[0] == "Mobility was 3.5 units."

    def test_newline_is_boundary(self):
        out = split_sentences("no period here\nanother line")
        assert out == ["no period here", "another line"]

    def test_question_and_exclamation(self):
        out = split_sentences("Really? Yes! Fine.")
        assert out == ["Really?", "Yes!", "Fine."]

    def test_lowercase_continuation_not_split(self):
        out = split_sentences("the et al. result holds. Done.")
        assert len(out) == 2

    def test_empty(self):
        assert split_sentences("") == []
