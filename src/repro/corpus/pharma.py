"""The pharmacogenomics corpus: drug-gene interactions from the literature.

Models Section 6.2 (with Mallory & Altman): extract ``(drug, gene)``
interaction pairs, supervised by an incomplete PharmGKB-style database.
Interaction sentences use inhibit/activate/target verbs; distractors
co-mention a drug and a gene without asserting an interaction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.base import GeneratedCorpus, NoiseConfig, apply_typo
from repro.corpus.genetics import _gene_names
from repro.nlp.pipeline import Document

INTERACTION_TEMPLATES = [
    "{d} inhibits {g} activity in vitro .",
    "{d} is a potent activator of {g} .",
    "{d} directly targets {g} .",
    "Treatment with {d} downregulates {g} expression .",
    "{g} is the primary target of {d} .",
]

DISTRACTOR_TEMPLATES = [
    "{d} was administered before {g} expression was profiled .",
    "Patients on {d} were genotyped for {g} variants .",
    "The {d} trial collected {g} sequencing data .",
    "{g} status did not affect {d} dosing in this cohort .",
]

DRUG_SUFFIXES = ["mab", "nib", "pril", "statin", "olol", "azole", "cillin"]


@dataclass(frozen=True)
class PharmaConfig:
    """Size and noise parameters for the pharmacogenomics corpus."""

    num_interactions: int = 30
    num_distractors: int = 30
    sentences_per_pair: int = 2
    noise: NoiseConfig = NoiseConfig()


def _drug_names(count: int, rng: np.random.Generator) -> list[str]:
    from repro.corpus.base import synthetic_names
    stems = synthetic_names(count, rng, length=4)
    return [stem.lower() + DRUG_SUFFIXES[int(rng.integers(0, len(DRUG_SUFFIXES)))]
            for stem in stems]


def generate(config: PharmaConfig = PharmaConfig(), seed: int = 0) -> GeneratedCorpus:
    """Generate the pharma corpus, truth, and PharmGKB-style KB."""
    rng = np.random.default_rng(seed)
    total = config.num_interactions + config.num_distractors
    drugs = _drug_names(total, rng)
    genes = _gene_names(total, rng)

    interacting = list(zip(drugs[:config.num_interactions],
                           genes[:config.num_interactions]))
    distractors = list(zip(drugs[config.num_interactions:],
                           genes[config.num_interactions:]))

    documents: list[Document] = []

    def emit(templates, d, g, tag, index):
        for k in range(config.sentences_per_pair):
            template = templates[int(rng.integers(0, len(templates)))]
            text = template.format(d=d, g=g)
            if rng.random() < config.noise.typo_rate:
                text = apply_typo(text, rng)
            documents.append(Document(f"{tag}{index:04d}_{k}", text))

    for i, (d, g) in enumerate(interacting):
        emit(INTERACTION_TEMPLATES, d, g, "i", i)
    for i, (d, g) in enumerate(distractors):
        emit(DISTRACTOR_TEMPLATES, d, g, "n", i)

    pharmgkb = [(d, g) for d, g in interacting
                if rng.random() < config.noise.kb_coverage]
    for d, g in distractors:
        if rng.random() < config.noise.kb_error_rate:
            pharmgkb.append((d, g))

    return GeneratedCorpus(
        documents=documents,
        truth={"drug_gene": set(interacting)},
        kb={"PharmGkb": pharmgkb},
        metadata={"config": config, "interacting": interacting,
                  "distractors": distractors,
                  "drugs": set(drugs), "genes": set(genes)},
    )
