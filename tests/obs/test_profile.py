"""Profile and PhaseRecorder: the RunResult-facing side of observability."""

import json

import pytest

from repro import obs
from repro.obs import PhaseRecorder, Profile
from repro.obs.span import Span


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def make_span(name, duration, children=()):
    return Span(name, duration=duration, children=list(children))


class TestProfile:
    def test_phase_seconds_sums_by_name(self):
        profile = Profile(spans=[make_span("a", 1.0), make_span("b", 2.0),
                                 make_span("a", 0.5)])
        assert profile.phase_seconds() == {"a": 1.5, "b": 2.0}

    def test_top_spans_aggregates_forest(self):
        profile = Profile(spans=[
            make_span("phase", 3.0, [make_span("op", 1.0),
                                     make_span("op", 1.5)]),
        ])
        top = profile.top_spans(2)
        assert top[0] == ("phase", 3.0, 1)
        assert top[1] == ("op", 2.5, 2)

    def test_top_spans_respects_n(self):
        profile = Profile(spans=[make_span(f"s{i}", float(i))
                                 for i in range(5)])
        assert len(profile.top_spans(3)) == 3

    def test_find(self):
        profile = Profile(spans=[make_span("a", 1.0, [make_span("b", 0.5)])])
        assert profile.find("b").name == "b"
        assert profile.find("zzz") is None

    def test_render_includes_metrics(self):
        profile = Profile(
            spans=[make_span("a", 0.001)],
            metrics={"counters": {"ops": 3},
                     "histograms": {"lat": {"count": 2, "mean": 1.0,
                                            "max": 2.0}}})
        text = profile.render()
        assert "a" in text and "ops = 3" in text and "lat:" in text

    def test_write_jsonl(self, tmp_path):
        profile = Profile(spans=[make_span("a", 1.0), make_span("b", 2.0)],
                          metrics={"counters": {"n": 1}})
        path = tmp_path / "trace.jsonl"
        profile.write_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 3
        assert lines[0]["name"] == "a"
        assert lines[1]["name"] == "b"
        assert lines[2] == {"metrics": {"counters": {"n": 1}}}

    def test_to_dict(self):
        profile = Profile(spans=[make_span("a", 1.0)], metrics={})
        as_dict = profile.to_dict()
        assert as_dict["spans"][0]["name"] == "a"


class TestPhaseRecorderUntraced:
    def test_phases_become_top_level_spans(self):
        recorder = PhaseRecorder(trace=False)
        with recorder.phase("one"):
            pass
        with recorder.phase("two"):
            pass
        profile = recorder.profile()
        assert [s.name for s in profile.spans] == ["one", "two"]
        assert all(s.duration >= 0.0 for s in profile.spans)

    def test_no_collector_installed_untraced(self):
        recorder = PhaseRecorder(trace=False)
        with recorder.phase("one"):
            assert obs.active() is None

    def test_accumulating_phase_keeps_every_span(self):
        recorder = PhaseRecorder(trace=False)
        with recorder.phase("candidate_generation"):
            pass
        with recorder.phase("candidate_generation"):
            pass
        profile = recorder.profile()
        assert len(profile.spans) == 2
        assert set(profile.phase_seconds()) == {"candidate_generation"}

    def test_replace_phase_overwrites(self):
        recorder = PhaseRecorder(trace=False)
        with recorder.phase("inference", replace=True):
            pass
        with recorder.phase("inference", replace=True):
            pass
        assert len(recorder.profile().spans) == 1

    def test_phase_attributes(self):
        recorder = PhaseRecorder(trace=False)
        with recorder.phase("p", engine="chromatic") as phase:
            phase.set(rows=3)
        (span,) = recorder.profile().spans
        assert span.attributes == {"engine": "chromatic", "rows": 3}


class TestPhaseRecorderTraced:
    def test_inner_spans_nest_under_phase(self):
        recorder = PhaseRecorder(trace=True)
        with recorder.phase("grounding"):
            assert obs.enabled()
            with obs.span("dred.build"):
                pass
        (phase,) = recorder.profile().spans
        assert [c.name for c in phase.children] == ["dred.build"]

    def test_metrics_accumulate_across_phases(self):
        recorder = PhaseRecorder(trace=True)
        with recorder.phase("a"):
            obs.count("ops", 2)
        with recorder.phase("b"):
            obs.count("ops", 3)
        snapshot = recorder.profile().metrics
        assert snapshot["counters"]["ops"] == 5

    def test_collector_uninstalled_after_phase(self):
        recorder = PhaseRecorder(trace=True)
        with recorder.phase("a"):
            pass
        assert obs.active() is None

    def test_respects_existing_collector(self):
        """A recorder never stomps a collector someone else installed."""
        outer = obs.Collector()
        recorder = PhaseRecorder(trace=True)
        with obs.installed(outer):
            with recorder.phase("a"):
                assert obs.active() is outer

    def test_profile_snapshot_is_stable(self):
        recorder = PhaseRecorder(trace=True)
        with recorder.phase("a"):
            pass
        first = recorder.profile()
        with recorder.phase("b"):
            pass
        assert [s.name for s in first.spans] == ["a"]
