"""The crash-safe fan-out pool: ordering, failure modes, trace adoption."""

import time

import pytest

from repro import obs
from repro.parallel import chunk_slices, fanout_map, resolve_mode


def square(x):
    return x * x


def explode(x):
    raise ValueError(f"boom on {x}")


def snail(x):
    time.sleep(30.0)
    return x


def counted(x):
    if obs.enabled():
        obs.count("pool.items")
    return x + 1


class TestChunkSlices:
    def test_covers_input_in_order(self):
        slices = chunk_slices(23, workers=3)
        flat = [i for lo, hi in slices for i in range(lo, hi)]
        assert flat == list(range(23))

    def test_single_item(self):
        assert chunk_slices(1, workers=8) == [(0, 1)]

    def test_balanced(self):
        slices = chunk_slices(100, workers=4)
        sizes = [hi - lo for lo, hi in slices]
        assert max(sizes) - min(sizes) <= 1


class TestResolveMode:
    def test_auto_resolves(self):
        assert resolve_mode("auto") in ("fork", "spawn")

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="start method"):
            resolve_mode("threads")


class TestFanoutMap:
    def test_order_preserved(self):
        items = list(range(37))
        assert fanout_map(square, items, workers=3, mode="fork") \
            == [square(x) for x in items]

    def test_empty_items(self):
        assert fanout_map(square, [], workers=2) == []

    def test_workers_zero_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            fanout_map(square, [1], workers=0)

    def test_worker_exception_returns_none(self):
        with pytest.warns(RuntimeWarning, match="fan-out abandoned"):
            result = fanout_map(explode, [1, 2, 3], workers=2, mode="fork")
        assert result is None

    def test_timeout_returns_none(self):
        with pytest.warns(RuntimeWarning, match="deadline"):
            result = fanout_map(snail, [1, 2], workers=2, mode="fork",
                                timeout=0.5)
        assert result is None

    def test_worker_traces_adopted(self):
        collector = obs.Collector()
        with obs.installed(collector):
            with obs.span("parent"):
                result = fanout_map(counted, list(range(8)), workers=2,
                                    mode="fork")
        assert result == [x + 1 for x in range(8)]
        profile = obs.Profile(spans=collector.roots,
                              metrics=collector.metrics.snapshot())
        # worker chunk spans grafted under the parent's open span
        assert profile.span_total("parallel.chunk") > 0.0
        # worker-side counters merged into the parent registry
        assert collector.metrics.counter_total("pool.items") == 8
