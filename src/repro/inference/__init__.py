"""Statistical inference and learning: the DimmWitted-style engine.

Gibbs sampling over compiled factor graphs, weight learning from evidence
chains, and a simulated-NUMA execution layer reproducing the paper's
hardware/statistical efficiency study.
"""

from repro.inference.diagnostics import (ConvergenceReport, check_convergence,
                                          effective_samples, split_r_hat)
from repro.inference.exact import (ExactResult, enumerate_worlds,
                                   exact_marginals, world_log_weights)
from repro.inference.gibbs import (ENGINES, GibbsSampler, MarginalResult,
                                   sigmoid)
from repro.inference.learning import (LearningDiagnostics, LearningOptions,
                                      learn_weights)
from repro.inference.map_inference import (AnnealedGibbs, MapResult,
                                            map_inference, world_log_weight)
from repro.inference.numa import NumaConfig, NumaGibbs, NumaRunResult

__all__ = [
    "ConvergenceReport",
    "ENGINES",
    "ExactResult",
    "GibbsSampler",
    "LearningDiagnostics",
    "LearningOptions",
    "MapResult",
    "MarginalResult",
    "NumaConfig",
    "NumaGibbs",
    "NumaRunResult",
    "check_convergence",
    "effective_samples",
    "enumerate_worlds",
    "exact_marginals",
    "learn_weights",
    "world_log_weights",
    "map_inference",
    "split_r_hat",
    "sigmoid",
    "world_log_weight",
    "AnnealedGibbs",
]
