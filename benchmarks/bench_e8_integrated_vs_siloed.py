"""E8 -- Section 2.4: integrated processing vs the siloed pipeline.

Paper artifact (thought experiment made measurable): a siloed
extract-then-integrate pipeline with a high-precision extractor whose
residual errors are movies; the integration stage either drops novel books
(strict) or admits the movies (trusting).  The integrated system uses the
movie dictionary as one more source of evidence and repairs both failure
modes at once.

Shape checks: stage-1 extractor precision is high but imperfect; each siloed
policy sacrifices one of P/R; the integrated system's F1 beats both.
"""

from __future__ import annotations

from conftest import once

from repro.apps import books
from repro.baselines import SiloedPipeline, extraction_precision
from repro.corpus import books as books_corpus
from repro.inference import LearningOptions


def test_e8_integrated_vs_siloed(benchmark, reporter):
    corpus = books_corpus.generate(
        books_corpus.BooksConfig(num_books=50, num_movies=25), seed=21)
    outcome = {}

    def experiment():
        outcome["extractor_precision"] = extraction_precision(corpus)
        outcome["strict"] = SiloedPipeline("strict").run(corpus).quality
        outcome["trusting"] = SiloedPipeline("trusting").run(corpus).quality

        app = books.build(corpus, seed=0)
        result = app.run(threshold=0.8, holdout_fraction=0.1,
                         learning=LearningOptions(epochs=60, seed=0),
                         num_samples=250, burn_in=40,
                         compute_train_histogram=False)
        outcome["integrated"] = books.evaluate(app, result, corpus)

        ablated = books.build(corpus, seed=0, use_movie_dictionary=False)
        ablated_result = ablated.run(threshold=0.8, holdout_fraction=0.1,
                                     learning=LearningOptions(epochs=60, seed=0),
                                     num_samples=250, burn_in=40,
                                     compute_train_histogram=False)
        outcome["no_dictionary"] = books.evaluate(ablated, ablated_result, corpus)
        return outcome

    once(benchmark, experiment)

    rows = []
    for name in ("strict", "trusting", "no_dictionary", "integrated"):
        pr = outcome[name]
        rows.append([name, f"{pr.precision:.3f}", f"{pr.recall:.3f}",
                     f"{pr.f1:.3f}"])

    reporter.line("E8 / Sec 2.4 -- siloed vs integrated processing")
    reporter.line("paper: a 98%-precision extractor whose movie errors break")
    reporter.line("the siloed integrator; integrated processing fixes it with")
    reporter.line("the movie dictionary as one more feature")
    reporter.line()
    reporter.line(f"stage-1 extractor precision: "
                  f"{outcome['extractor_precision']:.3f} (paper: 0.98)")
    reporter.line()
    reporter.table(["system", "P", "R", "F1"], rows)

    assert 0.5 < outcome["extractor_precision"] < 1.0
    assert outcome["integrated"].f1 > outcome["strict"].f1
    assert outcome["integrated"].f1 > outcome["trusting"].f1
    # the dictionary is what buys the integrated win on precision
    assert outcome["integrated"].precision >= outcome["no_dictionary"].precision
