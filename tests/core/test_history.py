"""Tests for the execution-history log."""

from repro.core import RunHistory, RunResult
from repro.eval.error_analysis import FeatureStat


def make_result(marginals, weights):
    return RunResult(
        marginals=marginals,
        threshold=0.9,
        graph_stats={"variables": len(marginals)},
        feature_stats=[FeatureStat(key, weight, 10)
                       for key, weight in weights.items()],
    )


class TestRunHistory:
    def test_record_and_length(self):
        history = RunHistory()
        history.record(make_result({("R", ("a",)): 0.95}, {"f1": 1.0}), "first")
        assert len(history) == 1
        assert history[0].label == "first"
        assert history[0].accepted == 1
        assert history[0].candidates == 1

    def test_checksum_deterministic(self):
        history = RunHistory()
        result = make_result({("R", ("a",)): 0.95}, {"f1": 1.0})
        snap1 = history.record(result)
        snap2 = history.record(result)
        assert snap1.checksum == snap2.checksum

    def test_checksum_sensitive_to_marginals(self):
        history = RunHistory()
        a = history.record(make_result({("R", ("a",)): 0.95}, {"f1": 1.0}))
        b = history.record(make_result({("R", ("a",)): 0.15}, {"f1": 1.0}))
        assert a.checksum != b.checksum

    def test_diff_detects_new_features(self):
        history = RunHistory()
        history.record(make_result({}, {"f1": 1.0}))
        history.record(make_result({}, {"f1": 1.0, "f2": 0.5}))
        diff = history.diff()
        assert diff.added_features == ["f2"]
        assert diff.removed_features == []

    def test_diff_detects_weight_shifts(self):
        history = RunHistory()
        history.record(make_result({}, {"f1": 1.0}))
        history.record(make_result({}, {"f1": 2.5}))
        diff = history.diff()
        assert diff.weight_shifts == [("f1", 1.0, 2.5)]

    def test_diff_accepted_counts(self):
        history = RunHistory()
        history.record(make_result({("R", ("a",)): 0.95}, {}))
        history.record(make_result({("R", ("a",)): 0.95,
                                    ("R", ("b",)): 0.99}, {}))
        diff = history.diff()
        assert diff.accepted_before == 1
        assert diff.accepted_after == 2

    def test_diff_render(self):
        history = RunHistory()
        history.record(make_result({}, {"f1": 1.0}))
        history.record(make_result({}, {"f1": 2.0, "f2": 0.1}))
        text = history.diff().render()
        assert "f2" in text
        assert "f1" in text

    def test_render_history(self):
        history = RunHistory()
        history.record(make_result({}, {}), "baseline")
        history.record(make_result({}, {}), "with phrase features")
        text = history.render()
        assert "baseline" in text
        assert "with phrase features" in text

    def test_explicit_indices(self):
        history = RunHistory()
        history.record(make_result({}, {"a": 1.0}))
        history.record(make_result({}, {"b": 1.0}))
        history.record(make_result({}, {"c": 1.0}))
        diff = history.diff(0, 2)
        assert diff.added_features == ["c"]
        assert diff.removed_features == ["a"]
