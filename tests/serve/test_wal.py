"""Write-ahead log: append/replay round-trips and corruption handling."""

import json

import pytest

from repro.serve import (AddRules, WalError, WriteAheadLog, add_documents,
                         add_rows, remove_rows)
from repro.serve.ops import (OpError, RemoveDocuments, op_from_record)


def sample_batch():
    return (add_documents([("d1", "the apple sat there .")]),
            add_rows("GoodList", [("apple",)]))


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        with WriteAheadLog(tmp_path / "ingest.wal") as wal:
            assert wal.append(sample_batch()) == 1
            assert wal.append((remove_rows("GoodList", [("apple",)]),)) == 2
            records = wal.replay()
        assert [r.lsn for r in records] == [1, 2]
        assert records[0].batch == sample_batch()
        assert records[1].batch[0].rows == (("apple",),)

    def test_replay_after_lsn(self, tmp_path):
        with WriteAheadLog(tmp_path / "ingest.wal") as wal:
            for _ in range(4):
                wal.append(sample_batch())
            assert [r.lsn for r in wal.replay(after_lsn=2)] == [3, 4]

    def test_lsn_resumes_across_reopen(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(sample_batch())
            wal.append(sample_batch())
        with WriteAheadLog(path) as wal:
            assert wal.last_lsn == 2
            assert wal.append(sample_batch()) == 3
            assert len(wal.replay()) == 3

    def test_empty_log(self, tmp_path):
        with WriteAheadLog(tmp_path / "ingest.wal") as wal:
            assert wal.last_lsn == 0
            assert wal.replay() == []

    def test_all_op_kinds_round_trip(self, tmp_path):
        batch = (add_documents([("d1", "text .")]),
                 RemoveDocuments(("d0",)),
                 add_rows("GoodList", [("apple", 3), (None, True)]),
                 remove_rows("BadList", [("rust",)]),
                 AddRules("Extra(x text)."))
        with WriteAheadLog(tmp_path / "ingest.wal") as wal:
            wal.append(batch)
            assert wal.replay()[0].batch == batch

    def test_nested_tuple_rows_round_trip(self, tmp_path):
        batch = (add_rows("KB", [(("s1", ("a", "b")), 1)]),)
        with WriteAheadLog(tmp_path / "ingest.wal") as wal:
            wal.append(batch)
            restored = wal.replay()[0].batch[0]
        assert restored.rows == ((("s1", ("a", "b")), 1),)


class TestCorruption:
    def test_truncated_tail_discarded_with_warning(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(sample_batch())
            wal.append(sample_batch())
        # simulate a crash mid-append: chop the final record in half
        text = path.read_text()
        path.write_text(text[:len(text) - 20])
        with pytest.warns(UserWarning, match="truncated tail"):
            records = WriteAheadLog(path).replay()
        assert [r.lsn for r in records] == [1]

    def test_truncated_tail_reopen_resumes_before_it(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(sample_batch())
            wal.append(sample_batch())
        text = path.read_text()
        path.write_text(text[:len(text) - 20])
        with pytest.warns(UserWarning):
            wal = WriteAheadLog(path)
        # the torn lsn-2 append was never committed, so 2 is reused
        assert wal.append(sample_batch()) == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(sample_batch())
            wal.append(sample_batch())
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]                 # damage a non-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalError, match="corrupt WAL record"):
            WriteAheadLog(path)

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "ingest.wal"
        path.write_text('{"something_else": true}\n')
        with pytest.raises(WalError, match="unsupported WAL format"):
            WriteAheadLog(path)

    def test_non_contiguous_lsn_raises(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(sample_batch())
        with open(path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps({"lsn": 5, "batch": []}) + "\n")
        with pytest.raises(WalError, match="non-contiguous"):
            WriteAheadLog(path)

    def test_fsync_mode_appends(self, tmp_path):
        with WriteAheadLog(tmp_path / "ingest.wal", fsync=True) as wal:
            assert wal.append(sample_batch()) == 1


class TestOpRecords:
    def test_unknown_kind_rejected(self):
        with pytest.raises(OpError, match="unknown ingest op kind 'explode'"):
            op_from_record({"op": "explode"})

    def test_record_is_json_compatible(self):
        for op in sample_batch():
            assert json.loads(json.dumps(op.to_record())) == op.to_record()
