"""DimmWitted-style compiled factor graph.

DimmWitted "models Gibbs sampling as a column-to-row access operation: each
row corresponds to one factor, each column to one variable, and the non-zero
elements in the matrix correspond to edges in the factor graph.  To process
one variable, DimmWitted fetches one column of the matrix to get the set of
factors, and other columns to get the set of variables that connect to the
same factor" (Section 4.2).

:class:`CompiledGraph` is that matrix in CSR form, as flat numpy arrays:

* column access: ``vf_indptr`` / ``vf_factors`` -- the non-unary factors
  incident on each variable;
* row access: ``fv_indptr`` / ``fv_vars`` / ``fv_negated`` -- the variables
  (with literal polarity) of each non-unary factor.

Unary (``IS_TRUE``) factors -- the bulk of any KBC graph, one per feature
grounding -- are split out into dedicated parallel arrays so that their
contribution to every variable's conditional can be recomputed for the whole
graph with two vectorized operations per sweep.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.factorgraph.factor_functions import FactorFunction
from repro.factorgraph.graph import FactorGraph


class CompiledGraph:
    """Flat-array snapshot of a :class:`FactorGraph`, ready for sampling."""

    def __init__(self, graph: FactorGraph) -> None:
        self.num_variables = graph.num_variables
        var_ids = sorted(graph.variables)
        self._var_index = {var_id: i for i, var_id in enumerate(var_ids)}
        self.var_keys: list[Hashable] = [graph.variables[v].key for v in var_ids]

        self.is_evidence = np.zeros(self.num_variables, dtype=bool)
        self.evidence_values = np.zeros(self.num_variables, dtype=bool)
        self.initial_values = np.zeros(self.num_variables, dtype=bool)
        for var_id in var_ids:
            variable = graph.variables[var_id]
            i = self._var_index[var_id]
            self.initial_values[i] = variable.initial
            if variable.evidence is not None:
                self.is_evidence[i] = True
                self.evidence_values[i] = variable.evidence

        weight_ids = sorted(graph.weights)
        self._weight_index = {w: i for i, w in enumerate(weight_ids)}
        self.num_weights = len(weight_ids)
        self.weight_keys: list[Hashable] = [graph.weights[w].key for w in weight_ids]
        self.weight_values = np.array(
            [graph.weights[w].value for w in weight_ids], dtype=np.float64)
        self.weight_fixed = np.array(
            [graph.weights[w].fixed for w in weight_ids], dtype=bool)
        self.weight_observations = np.array(
            [graph.weights[w].observations for w in weight_ids], dtype=np.int64)

        # ---- split factors into unary IS_TRUE vs general --------------------
        unary_var, unary_weight, unary_sign = [], [], []
        general = []
        for factor in graph.factors.values():
            if factor.function == FactorFunction.IS_TRUE:
                unary_var.append(self._var_index[factor.var_ids[0]])
                unary_weight.append(self._weight_index[factor.weight_id])
                unary_sign.append(-1.0 if factor.negated[0] else 1.0)
            else:
                general.append(factor)
        self.unary_var = np.array(unary_var, dtype=np.int64)
        self.unary_weight = np.array(unary_weight, dtype=np.int64)
        self.unary_sign = np.array(unary_sign, dtype=np.float64)
        self.num_unary = len(unary_var)

        # ---- general factors in row-CSR form --------------------------------
        self.num_general = len(general)
        self.general_function = np.array([f.function for f in general], dtype=np.int8)
        self.general_weight = np.array(
            [self._weight_index[f.weight_id] for f in general], dtype=np.int64)
        fv_indptr = [0]
        fv_vars: list[int] = []
        fv_negated: list[bool] = []
        for factor in general:
            fv_vars.extend(self._var_index[v] for v in factor.var_ids)
            fv_negated.extend(factor.negated)
            fv_indptr.append(len(fv_vars))
        self.fv_indptr = np.array(fv_indptr, dtype=np.int64)
        self.fv_vars = np.array(fv_vars, dtype=np.int64)
        self.fv_negated = np.array(fv_negated, dtype=bool)

        # ---- column CSR: variable -> incident general factors ---------------
        counts = np.zeros(self.num_variables + 1, dtype=np.int64)
        for v in self.fv_vars:
            counts[v + 1] += 1
        self.vf_indptr = np.cumsum(counts)
        self.vf_factors = np.zeros(len(self.fv_vars), dtype=np.int64)
        cursor = self.vf_indptr[:-1].copy()
        for fi in range(self.num_general):
            for v in self.fv_vars[self.fv_indptr[fi]:self.fv_indptr[fi + 1]]:
                self.vf_factors[cursor[v]] = fi
                cursor[v] += 1

    # ------------------------------------------------------------------ sizes
    @property
    def num_factors(self) -> int:
        return self.num_unary + self.num_general

    def variable_index(self, key: Hashable) -> int:
        """Compiled index of the variable with ``key``."""
        return self.var_keys.index(key)  # only used in tests / small graphs

    # ------------------------------------------------------------- unary pass
    def unary_deltas(self) -> np.ndarray:
        """Per-variable sum of unary-factor log-weight deltas.

        For an ``IS_TRUE`` factor over a positive literal, flipping the
        variable 0 -> 1 changes the factor value by +1 (so contributes ``+w``);
        for a negated literal, by -1 (``-w``).  Independent of the current
        assignment, so it is recomputed only when weights change.
        """
        deltas = np.zeros(self.num_variables, dtype=np.float64)
        if self.num_unary:
            np.add.at(deltas, self.unary_var,
                      self.unary_sign * self.weight_values[self.unary_weight])
        return deltas

    def unary_value_sums(self, assignment: np.ndarray) -> np.ndarray:
        """Per-weight sum of unary factor values under ``assignment``.

        Used by the learner: the gradient of the log-likelihood w.r.t. a tied
        weight is the difference of this quantity between the evidence-clamped
        and free chains.
        """
        sums = np.zeros(self.num_weights, dtype=np.float64)
        if self.num_unary:
            literal = assignment[self.unary_var] ^ (self.unary_sign < 0)
            np.add.at(sums, self.unary_weight, literal.astype(np.float64))
        return sums

    # --------------------------------------------------------- general factors
    def general_factor_value(self, fi: int, assignment: np.ndarray) -> int:
        """Value of general factor ``fi`` under ``assignment``."""
        lo, hi = self.fv_indptr[fi], self.fv_indptr[fi + 1]
        literals = assignment[self.fv_vars[lo:hi]] ^ self.fv_negated[lo:hi]
        function = self.general_function[fi]
        if function == FactorFunction.IMPLY:
            return int((not bool(literals[:-1].all())) or bool(literals[-1]))
        if function == FactorFunction.AND:
            return int(bool(literals.all()))
        if function == FactorFunction.OR:
            return int(bool(literals.any()))
        if function == FactorFunction.EQUAL:
            return int(bool(literals[0]) == bool(literals[1]))
        raise ValueError(f"unexpected general factor function {function}")

    def general_value_sums(self, assignment: np.ndarray) -> np.ndarray:
        """Per-weight sum of general factor values under ``assignment``."""
        sums = np.zeros(self.num_weights, dtype=np.float64)
        for fi in range(self.num_general):
            sums[self.general_weight[fi]] += self.general_factor_value(fi, assignment)
        return sums

    def general_delta(self, var: int, assignment: np.ndarray) -> float:
        """Log-weight delta of flipping ``var`` 0 -> 1 over its general factors."""
        delta = 0.0
        for slot in range(self.vf_indptr[var], self.vf_indptr[var + 1]):
            fi = self.vf_factors[slot]
            lo, hi = self.fv_indptr[fi], self.fv_indptr[fi + 1]
            members = self.fv_vars[lo:hi]
            literals = assignment[members] ^ self.fv_negated[lo:hi]
            position = int(np.nonzero(members == var)[0][0])
            negated = self.fv_negated[lo + position]
            literals[position] = not negated      # var = 1
            value_true = _general_value(self.general_function[fi], literals)
            literals[position] = negated          # var = 0
            value_false = _general_value(self.general_function[fi], literals)
            delta += self.weight_values[self.general_weight[fi]] * (value_true - value_false)
        return delta

    # ---------------------------------------------------------------- weights
    def set_weights(self, values: np.ndarray) -> None:
        self.weight_values[:] = values

    def export_weights(self, graph: FactorGraph) -> None:
        """Write learned weight values back into the mutable graph."""
        for weight_id, index in self._weight_index.items():
            graph.weights[weight_id].value = float(self.weight_values[index])


def _general_value(function: int, literals: np.ndarray) -> int:
    if function == FactorFunction.IMPLY:
        return int((not bool(literals[:-1].all())) or bool(literals[-1]))
    if function == FactorFunction.AND:
        return int(bool(literals.all()))
    if function == FactorFunction.OR:
        return int(bool(literals.any()))
    if function == FactorFunction.EQUAL:
        return int(bool(literals[0]) == bool(literals[1]))
    raise ValueError(f"unexpected general factor function {function}")
