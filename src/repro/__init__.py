"""repro: a from-scratch reproduction of DeepDive (SIGMOD 2016).

"Extracting Databases from Dark Data with DeepDive" -- Zhang, Shin, Re,
Cafarella, Niu.  The package implements the full system: a relational
datastore with DRed incremental view maintenance, an NLP preprocessing
pipeline, the DDlog rule language, factor-graph grounding (incremental),
DimmWitted-style Gibbs sampling and weight learning, the developer loop
(calibration plots, error analysis), five example applications, and the
baselines the paper argues against.

Quickstart::

    from repro import DeepDive, Document

    app = DeepDive(DDLOG_PROGRAM_TEXT)
    app.register_udf("phrase", my_phrase_feature)
    app.add_extractor("PersonCandidate", extract_person_mentions)
    app.load_documents([Document("d1", "..."), ...])
    app.add_rows("Married", known_married_pairs)
    result = app.run(threshold=0.9)
    result.output_tuples("MarriedMentions")
"""

from repro.core import DeepDive, RunResult
from repro.ddlog import DDlogProgram
from repro.nlp import Document, Sentence, Span
from repro.obs import EngineConfig

__version__ = "1.0.0"

__all__ = [
    "DDlogProgram",
    "DeepDive",
    "Document",
    "EngineConfig",
    "RunResult",
    "Sentence",
    "Span",
    "__version__",
]
