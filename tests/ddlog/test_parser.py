"""Parser tests: the paper's example rules must parse into the right AST."""

import pytest

from repro.ddlog import (Comparison, Const, DDlogSyntaxError, FixedWeight,
                         HeadConnective, PerRuleWeight, RuleKind, UdfBinding,
                         UdfCondition, UdfWeight, Var, VarWeight,
                         parse_program)

PAPER_PROGRAM = """
# Relations from Figure 3 of the paper.
Sentence(sentence_key text, content text).
PersonCandidate(sentence_key text, mention_id text).
MarriedCandidate(m1 text, m2 text).
MarriedMentions?(m1 text, m2 text).
EL(mention_id text, entity_id text).
Married(e1 text, e2 text).

(R1) MarriedCandidate(m1, m2) :-
    PersonCandidate(s, m1), PersonCandidate(s, m2), [m1 < m2].

(FE1) MarriedMentions(m1, m2) :-
    MarriedCandidate(m1, m2), Sentence(s, sent)
    weight = phrase(m1, m2, sent).

(S1) MarriedMentions_Ev(m1, m2, true) :-
    MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
"""


# Rule labels like "(R1)" are not part of our grammar; strip them first.
def clean(source: str) -> str:
    import re
    return re.sub(r"\(([A-Z]+\d+)\)\s*", "", source)


class TestDeclarations:
    def test_plain_declaration(self):
        ast = parse_program("Person(name text, age int).")
        decl = ast.declarations[0]
        assert decl.name == "Person"
        assert decl.columns == (("name", "text"), ("age", "int"))
        assert not decl.is_variable

    def test_variable_declaration(self):
        ast = parse_program("Married?(m1 text, m2 text).")
        assert ast.declarations[0].is_variable

    def test_comments_ignored(self):
        ast = parse_program("# comment\n// another\nR(a int).")
        assert len(ast.declarations) == 1


class TestPaperProgram:
    def test_parses_fully(self):
        ast = parse_program(clean(PAPER_PROGRAM))
        assert len(ast.declarations) == 6
        assert len(ast.rules) == 3

    def test_rule_kinds(self):
        ast = parse_program(clean(PAPER_PROGRAM))
        kinds = [rule.kind for rule in ast.rules]
        assert kinds == [RuleKind.DERIVATION, RuleKind.FEATURE, RuleKind.SUPERVISION]

    def test_candidate_mapping_structure(self):
        rule = parse_program(clean(PAPER_PROGRAM)).rules[0]
        assert rule.head.relation == "MarriedCandidate"
        assert rule.head.terms == (Var("m1"), Var("m2"))
        atoms = [i for i in rule.body if hasattr(i, "relation")]
        assert [a.relation for a in atoms] == ["PersonCandidate", "PersonCandidate"]
        condition = rule.body[-1]
        assert isinstance(condition, Comparison)
        assert condition.op == "<"

    def test_feature_rule_weight(self):
        rule = parse_program(clean(PAPER_PROGRAM)).rules[1]
        assert isinstance(rule.weight, UdfWeight)
        assert rule.weight.udf == "phrase"
        assert rule.weight.args == (Var("m1"), Var("m2"), Var("sent"))

    def test_supervision_label_constant(self):
        rule = parse_program(clean(PAPER_PROGRAM)).rules[2]
        assert rule.head.terms[-1] == Const(True)

    def test_rule_text_captured(self):
        rule = parse_program(clean(PAPER_PROGRAM)).rules[0]
        assert rule.text.startswith("MarriedCandidate(m1, m2)")


class TestInferenceRules:
    SOURCE = """
    A?(x text).
    B?(x text).
    Link(x text, y text).
    A(x) => B(y) :- Link(x, y) weight = 2.5.
    A(x) = B(x) :- Link(x, x) weight = ?.
    !A(x) & B(y) :- Link(x, y) weight = 1.0.
    """

    def test_imply(self):
        rule = parse_program(self.SOURCE).rules[0]
        assert rule.kind == RuleKind.INFERENCE
        assert rule.connective == HeadConnective.IMPLY
        assert isinstance(rule.weight, FixedWeight)
        assert rule.weight.value == 2.5

    def test_equal_with_per_rule_weight(self):
        rule = parse_program(self.SOURCE).rules[1]
        assert rule.connective == HeadConnective.EQUAL
        assert isinstance(rule.weight, PerRuleWeight)

    def test_negated_head(self):
        rule = parse_program(self.SOURCE).rules[2]
        assert rule.heads[0].negated
        assert not rule.heads[1].negated
        assert rule.connective == HeadConnective.AND


class TestBodyItems:
    def test_udf_binding(self):
        ast = parse_program("""
        R(a text, b text).
        Q(a text, p text).
        Q(a, p) :- R(a, b), p = phrase(a, b).
        """)
        binding = ast.rules[0].body[1]
        assert isinstance(binding, UdfBinding)
        assert binding.target == "p"
        assert binding.udf == "phrase"

    def test_udf_condition(self):
        ast = parse_program("""
        R(a text).
        Q(a text).
        Q(a) :- R(a), [is_title(a)].
        """)
        condition = ast.rules[0].body[1]
        assert isinstance(condition, UdfCondition)
        assert not condition.negated

    def test_negated_udf_condition(self):
        ast = parse_program("""
        R(a text).
        Q(a text).
        Q(a) :- R(a), [!in_movie_dict(a)].
        """)
        assert ast.rules[0].body[1].negated

    def test_constant_terms(self):
        ast = parse_program("""
        R(a text, n int).
        Q(a text).
        Q(a) :- R(a, 5), [a != "none"].
        """)
        atom = ast.rules[0].body[0]
        assert atom.terms[1] == Const(5)
        condition = ast.rules[0].body[1]
        assert condition.right == Const("none")

    def test_var_weight(self):
        ast = parse_program("""
        R(a text, f text).
        Q?(a text).
        Q(a) :- R(a, f) weight = f.
        """)
        assert isinstance(ast.rules[0].weight, VarWeight)
        assert ast.rules[0].weight.var == "f"


class TestErrors:
    def test_missing_period(self):
        with pytest.raises(DDlogSyntaxError):
            parse_program("R(a text)")

    def test_bad_character(self):
        with pytest.raises(DDlogSyntaxError):
            parse_program("R(a text). ~")

    def test_mixed_connectives(self):
        with pytest.raises(DDlogSyntaxError):
            parse_program("""
            A?(x text).
            L(x text, y text).
            A(x) => A(y) & A(x) :- L(x, y) weight = 1.0.
            """)

    def test_bad_weight(self):
        with pytest.raises(DDlogSyntaxError):
            parse_program("""
            A?(x text).
            L(x text).
            A(x) :- L(x) weight = [.
            """)

    def test_error_has_position(self):
        with pytest.raises(DDlogSyntaxError) as excinfo:
            parse_program("R(a text). ~")
        assert "line 1" in str(excinfo.value)
