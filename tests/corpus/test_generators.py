"""Tests for the synthetic corpus generators: determinism, structure, and
the noise knobs they expose."""

import numpy as np
import pytest

from repro.corpus import ads, base, books, genetics, materials, pharma, spouse


class TestBase:
    def test_synthetic_names_distinct(self):
        rng = np.random.default_rng(0)
        names = base.synthetic_names(100, rng)
        assert len(set(names)) == 100

    def test_synthetic_names_deterministic(self):
        a = base.synthetic_names(10, np.random.default_rng(5))
        b = base.synthetic_names(10, np.random.default_rng(5))
        assert a == b

    def test_apply_typo_changes_one_word(self):
        rng = np.random.default_rng(0)
        out = base.apply_typo("alpha bravo charlie", rng)
        assert out != "alpha bravo charlie"
        assert len(out) == len("alpha bravo charlie") - 1

    def test_apply_typo_short_words_untouched(self):
        rng = np.random.default_rng(0)
        assert base.apply_typo("a bb cc", rng) == "a bb cc"


class TestSpouseCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return spouse.generate(spouse.SpouseConfig(num_couples=10,
                                                   num_distractor_pairs=10,
                                                   num_sibling_pairs=4), seed=7)

    def test_document_counts(self, corpus):
        config = corpus.metadata["config"]
        expected = (10 + 10 + 4) * config.sentences_per_pair
        assert corpus.num_documents == expected

    def test_truth_size(self, corpus):
        assert len(corpus.truth["married_entities"]) == 10

    def test_kb_incomplete(self, corpus):
        married_entities = {frozenset(pair) for pair in corpus.truth["married_entities"]}
        kb_pairs = {frozenset(pair) for pair in corpus.kb["Married"]}
        assert kb_pairs  # nonempty
        assert len(kb_pairs) < len(married_entities) + 3  # incomplete-ish

    def test_deterministic(self):
        a = spouse.generate(seed=3)
        b = spouse.generate(seed=3)
        assert [d.content for d in a.documents] == [d.content for d in b.documents]

    def test_seed_changes_output(self):
        a = spouse.generate(seed=3)
        b = spouse.generate(seed=4)
        assert [d.content for d in a.documents] != [d.content for d in b.documents]

    def test_gold_name_pairs(self, corpus):
        gold = spouse.gold_name_pairs(corpus)
        assert len(gold) <= 10
        for a, b in gold:
            assert a <= b


class TestGeneticsCorpus:
    def test_structure(self):
        corpus = genetics.generate(genetics.GeneticsConfig(num_causal_pairs=5,
                                                           num_comention_pairs=5),
                                   seed=1)
        assert len(corpus.truth["gene_phenotype"]) == 5
        assert corpus.num_documents == 20

    def test_gene_symbols_shape(self):
        import re
        corpus = genetics.generate(seed=0)
        for gene, _ in corpus.truth["gene_phenotype"]:
            assert re.match(r"^[A-Z]{3,4}\d$", gene)

    def test_omim_subset_of_truth_mostly(self):
        corpus = genetics.generate(seed=0)
        truth = corpus.truth["gene_phenotype"]
        errors = [pair for pair in corpus.kb["Omim"] if pair not in truth]
        assert len(errors) <= 3


class TestPharmaCorpus:
    def test_structure(self):
        corpus = pharma.generate(pharma.PharmaConfig(num_interactions=6,
                                                     num_distractors=6), seed=2)
        assert len(corpus.truth["drug_gene"]) == 6

    def test_drug_names_have_suffix(self):
        corpus = pharma.generate(seed=0)
        for drug, _ in corpus.truth["drug_gene"]:
            assert any(drug.endswith(s) for s in pharma.DRUG_SUFFIXES)


class TestMaterialsCorpus:
    def test_truth_has_both_properties(self):
        corpus = materials.generate(seed=0)
        props = {prop for _, prop, _ in corpus.truth["material_property"]}
        assert props == {"electron_mobility", "band_gap"}

    def test_values_in_range(self):
        corpus = materials.generate(seed=0)
        for _, prop, value in corpus.truth["material_property"]:
            lo, hi = materials.PROPERTY_RANGES[prop]
            assert lo <= float(value) <= hi

    def test_distractor_documents_present(self):
        corpus = materials.generate(seed=0)
        assert any(d.doc_id.startswith("x") for d in corpus.documents)


class TestAdsCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return ads.generate(ads.AdsConfig(num_ads=15), seed=4)

    def test_truth_per_ad(self, corpus):
        assert len(corpus.truth["ad_price"]) == 15
        assert len(corpus.truth["ad_location"]) == 15
        assert len(corpus.truth["ad_phone"]) == 15

    def test_phones_unique(self, corpus):
        phones = [p for _, p in corpus.truth["ad_phone"]]
        assert len(set(phones)) == len(phones)

    def test_forum_posts_reference_real_phones(self, corpus):
        phones = {p for _, p in corpus.truth["ad_phone"]}
        forum_docs = [d for d in corpus.documents if d.doc_id.startswith("forum")]
        assert forum_docs
        for doc in forum_docs:
            assert any(p in doc.content for p in phones)

    def test_known_kb_subset_of_truth(self, corpus):
        assert set(corpus.kb["KnownPrice"]) <= corpus.truth["ad_price"]
        assert set(corpus.kb["KnownLocation"]) <= corpus.truth["ad_location"]


class TestBooksCorpus:
    def test_catalog_covers_only_books(self):
        corpus = books.generate(seed=0)
        book_titles = set(corpus.metadata["book_titles"])
        for title, _ in corpus.kb["Catalog"]:
            assert title in book_titles

    def test_movie_dict_disjoint_from_books(self):
        corpus = books.generate(seed=0)
        book_titles = set(corpus.metadata["book_titles"])
        movie_titles = {t for (t,) in corpus.kb["MovieDict"]}
        assert not (book_titles & movie_titles)

    def test_truth_size(self):
        corpus = books.generate(books.BooksConfig(num_books=12, num_movies=6), seed=0)
        assert len(corpus.truth["book_price"]) == 12


class TestPaleoCorpus:
    def test_structure(self):
        from repro.corpus import paleo
        corpus = paleo.generate(paleo.PaleoConfig(num_occurrences=8,
                                                  num_distractors=8), seed=1)
        assert len(corpus.truth["occurrence"]) == 8
        assert corpus.num_documents == 32

    def test_taxa_have_suffixes(self):
        from repro.corpus import paleo
        corpus = paleo.generate(seed=0)
        for taxon, _ in corpus.truth["occurrence"]:
            assert any(taxon.lower().endswith(s) for s in paleo.GENUS_SUFFIXES)

    def test_pbdb_mostly_subset_of_truth(self):
        from repro.corpus import paleo
        corpus = paleo.generate(seed=0)
        errors = [p for p in corpus.kb["Pbdb"] if p not in corpus.truth["occurrence"]]
        assert len(errors) <= 3
