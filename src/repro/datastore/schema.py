"""Relation schemas: named, typed column lists.

A :class:`Schema` describes one relation.  Schemas are immutable value
objects; equality is structural, which lets DRed delta relations assert that
they mirror their base relation's schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.datastore.types import ColumnType, coerce


class SchemaError(ValueError):
    """Raised for malformed schemas or rows that do not fit a schema."""


@dataclass(frozen=True)
class Column:
    """One named, typed column of a relation."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        # dots are allowed for alias-qualified names ("e.salary"), which the
        # SQL layer creates when it joins relations
        if not self.name or not self.name.replace("_", "").replace(".", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class Schema:
    """An ordered list of :class:`Column` with unique names."""

    columns: tuple[Column, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        object.__setattr__(self, "_index", {n: i for i, n in enumerate(names)})

    @classmethod
    def of(cls, **column_types: ColumnType | str) -> "Schema":
        """Build a schema from keyword arguments, e.g. ``Schema.of(doc_id='text')``."""
        columns = []
        for name, ctype in column_types.items():
            if isinstance(ctype, str):
                ctype = ColumnType(ctype)
            columns.append(Column(name, ctype))
        return cls(tuple(columns))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def position(self, name: str) -> int:
        """Return the index of column ``name``; raise :class:`SchemaError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no column {name!r} in schema {self.names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def validate_row(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Coerce and validate one row against this schema; return the stored tuple."""
        if len(row) != self.arity:
            raise SchemaError(f"row arity {len(row)} != schema arity {self.arity} ({self.names})")
        return tuple(coerce(value, col.type) for value, col in zip(row, self.columns))

    def row_dict(self, row: Sequence[Any]) -> dict[str, Any]:
        """Return ``row`` as a column-name -> value mapping."""
        return dict(zip(self.names, row))

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a new schema containing only ``names``, in the given order."""
        return Schema(tuple(self.columns[self.position(n)] for n in names))

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with columns renamed per ``mapping`` (others kept)."""
        return Schema(tuple(Column(mapping.get(c.name, c.name), c.type) for c in self.columns))

    def concat(self, other: "Schema", prefix_conflicts: str = "r_") -> "Schema":
        """Concatenate two schemas, prefixing right-side name conflicts."""
        taken = set(self.names)
        right = []
        for column in other.columns:
            name = column.name
            while name in taken:
                name = prefix_conflicts + name
            taken.add(name)
            right.append(Column(name, column.type))
        return Schema(self.columns + tuple(right))
