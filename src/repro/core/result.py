"""Run results: marginals, the thresholded output database, calibration data,
and phase timings (paper Figure 2's per-phase runtimes)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.calibration import (CalibrationPlot, ProbabilityHistogram,
                                    calibration_plot, probability_histogram)
from repro.eval.error_analysis import FeatureStat
from repro.inference.learning import LearningDiagnostics

VariableKey = tuple[str, tuple]


@dataclass
class RunResult:
    """Everything one DeepDive execution produced.

    ``marginals`` maps ``(relation, tuple)`` to the inferred probability;
    ``output`` is the thresholded output database ("DeepDive applies a
    user-chosen threshold, e.g. p > 0.95").
    """

    marginals: dict[VariableKey, float]
    threshold: float
    phase_timings: dict[str, float] = field(default_factory=dict)
    holdout_pairs: list[tuple[float, bool]] = field(default_factory=list)
    train_pairs: list[tuple[float, bool]] = field(default_factory=list)
    graph_stats: dict[str, int] = field(default_factory=dict)
    feature_stats: list[FeatureStat] = field(default_factory=list)
    learning: LearningDiagnostics | None = None

    # ------------------------------------------------------------- the output
    @property
    def output(self) -> dict[str, dict[tuple, float]]:
        """Accepted tuples per relation: probability >= threshold."""
        accepted: dict[str, dict[tuple, float]] = {}
        for (relation, values), probability in self.marginals.items():
            if probability >= self.threshold:
                accepted.setdefault(relation, {})[values] = probability
        return accepted

    def output_tuples(self, relation: str) -> set[tuple]:
        """Accepted tuples of one relation (the set benchmarks score)."""
        return set(self.output.get(relation, {}))

    def relation_marginals(self, relation: str) -> dict[tuple, float]:
        """All marginals of one relation, thresholded or not."""
        return {values: p for (name, values), p in self.marginals.items()
                if name == relation}

    # ------------------------------------------------------------ calibration
    def calibration(self) -> CalibrationPlot:
        """Figure 5 (left): calibration over the held-out evidence."""
        probabilities = [p for p, _ in self.holdout_pairs]
        labels = [label for _, label in self.holdout_pairs]
        return calibration_plot(probabilities, labels)

    def test_histogram(self) -> ProbabilityHistogram:
        """Figure 5 (center): prediction histogram on the held-out set."""
        return probability_histogram(p for p, _ in self.holdout_pairs)

    def train_histogram(self) -> ProbabilityHistogram:
        """Figure 5 (right): prediction histogram on the training set."""
        return probability_histogram(p for p, _ in self.train_pairs)

    def summary(self) -> str:
        """One-paragraph run summary for logs."""
        total = sum(self.phase_timings.values())
        phases = ", ".join(f"{name}={seconds:.2f}s"
                           for name, seconds in self.phase_timings.items())
        accepted = sum(len(v) for v in self.output.values())
        return (f"{len(self.marginals)} candidates, {accepted} accepted at "
                f"p>={self.threshold}; phases: {phases} (total {total:.2f}s)")
