"""Brute-force exact marginal inference: the sampler's correctness oracle.

The factor graph of Section 3.3 defines an unnormalized log-weight for every
possible world; on toy graphs (<= 20 free variables) we can enumerate all
worlds, normalize explicitly, and read off exact marginals.  That turns
"does the chromatic engine sample the right distribution" into a testable
statement: Gibbs marginal estimates must converge to these numbers, for any
combination of factor functions, negated literals, and evidence clamping.

Enumeration is vectorized across worlds: the world matrix is ``(2^k, n)``
and each factor contributes one column operation, so even the 20-variable
ceiling (about a million worlds) stays tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.factorgraph.compiled import CompiledGraph
from repro.factorgraph.factor_functions import FactorFunction

MAX_FREE_VARIABLES = 20


@dataclass
class ExactResult:
    """Exact marginals plus the normalization constant."""

    marginals: np.ndarray        # exact P(v = 1) per compiled variable index
    log_partition: float         # log Z over the enumerated worlds
    num_worlds: int

    def by_key(self, compiled: CompiledGraph) -> dict[Hashable, float]:
        return {key: float(p) for key, p in zip(compiled.var_keys, self.marginals)}


def enumerate_worlds(compiled: CompiledGraph,
                     clamp_evidence: bool = True,
                     max_free_variables: int = MAX_FREE_VARIABLES) -> np.ndarray:
    """All possible worlds as a ``(num_worlds, num_variables)`` bool matrix.

    With ``clamp_evidence`` the evidence variables stay at their labels and
    only the free variables are enumerated.
    """
    n = compiled.num_variables
    if clamp_evidence:
        free = np.nonzero(~compiled.is_evidence)[0]
    else:
        free = np.arange(n)
    if len(free) > max_free_variables:
        raise ValueError(
            f"exact inference enumerates 2^k worlds; {len(free)} free "
            f"variables exceeds the {max_free_variables}-variable ceiling")
    num_worlds = 1 << len(free)
    worlds = np.zeros((num_worlds, n), dtype=bool)
    if clamp_evidence:
        worlds[:, compiled.is_evidence] = compiled.evidence_values[
            compiled.is_evidence]
    if len(free):
        bits = (np.arange(num_worlds)[:, None] >> np.arange(len(free))) & 1
        worlds[:, free] = bits.astype(bool)
    return worlds


def world_log_weights(compiled: CompiledGraph, worlds: np.ndarray) -> np.ndarray:
    """Unnormalized log-weight of every row of ``worlds``, vectorized."""
    log_w = np.zeros(len(worlds), dtype=np.float64)
    if compiled.num_unary:
        literals = worlds[:, compiled.unary_var] ^ (compiled.unary_sign < 0)
        log_w += literals.astype(np.float64) @ compiled.weight_values[
            compiled.unary_weight]
    for fi in range(compiled.num_general):
        lo, hi = compiled.fv_indptr[fi], compiled.fv_indptr[fi + 1]
        literals = worlds[:, compiled.fv_vars[lo:hi]] ^ compiled.fv_negated[lo:hi]
        function = compiled.general_function[fi]
        if function == FactorFunction.IMPLY:
            values = ~literals[:, :-1].all(axis=1) | literals[:, -1]
        elif function == FactorFunction.AND:
            values = literals.all(axis=1)
        elif function == FactorFunction.OR:
            values = literals.any(axis=1)
        elif function == FactorFunction.EQUAL:
            values = literals[:, 0] == literals[:, 1]
        else:
            raise ValueError(f"unexpected general factor function {function}")
        log_w += compiled.weight_values[compiled.general_weight[fi]] * values
    return log_w


def exact_marginals(compiled: CompiledGraph,
                    clamp_evidence: bool = True,
                    max_free_variables: int = MAX_FREE_VARIABLES) -> ExactResult:
    """Exact marginals by full enumeration (the Gibbs correctness oracle).

    ``clamp_evidence`` mirrors the sampler's flag: clamped evidence
    variables report their label as probability 0/1 and restrict the world
    sum; unclamped enumeration covers the free chain's distribution.
    """
    worlds = enumerate_worlds(compiled, clamp_evidence=clamp_evidence,
                              max_free_variables=max_free_variables)
    log_w = world_log_weights(compiled, worlds)
    peak = log_w.max()
    unnormalized = np.exp(log_w - peak)
    total = unnormalized.sum()
    log_partition = float(peak + np.log(total))
    probabilities = unnormalized / total
    marginals = probabilities @ worlds.astype(np.float64)
    if clamp_evidence:
        # exact 0/1 for clamped evidence (avoids float rounding in the sum),
        # matching the sampler's output convention
        marginals[compiled.is_evidence] = compiled.evidence_values[
            compiled.is_evidence]
    return ExactResult(marginals=marginals, log_partition=log_partition,
                       num_worlds=len(worlds))
