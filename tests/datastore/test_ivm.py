"""Tests for DRed incremental view maintenance: the invariant throughout is
that incrementally-maintained views always equal full recomputation."""

import pytest

from repro.datastore import (Database, Join, Project, Scan, Select, SignedDelta,
                             Union)


def make_db():
    db = Database()
    db.create("R", x="int", y="int")
    db.create("S", y="int", z="int")
    db.insert("R", [(1, 10), (2, 20), (3, 30)])
    db.insert("S", [(10, 100), (20, 200)])
    return db


JOIN_PLAN = Project(Join(Scan("R"), Scan("S"), (("y", "y"),)), ("x", "z"))


class TestSignedDelta:
    def test_add_and_cancel(self):
        from repro.datastore import Schema
        delta = SignedDelta(Schema.of(a="int"))
        delta.add((1,), 1)
        delta.add((1,), -1)
        assert not delta

    def test_insertions_and_deletions_split(self):
        from repro.datastore import Schema
        delta = SignedDelta(Schema.of(a="int"))
        delta.add((1,), 2)
        delta.add((2,), -1)
        assert dict(delta.insertions()) == {(1,): 2}
        assert dict(delta.deletions()) == {(2,): -1}


class TestMaterializedView:
    def test_initial_load_matches_full_eval(self):
        db = make_db()
        view = db.views.define("V", JOIN_PLAN)
        assert sorted(view.visible()) == [(1, 100), (2, 200)]

    def test_insert_propagates(self):
        db = make_db()
        db.views.define("V", JOIN_PLAN)
        events = db.views.apply_changes(inserts={"S": [(30, 300)]})
        appeared, disappeared = events["V"]
        assert appeared == [(3, 300)]
        assert disappeared == []

    def test_delete_propagates(self):
        db = make_db()
        db.views.define("V", JOIN_PLAN)
        events = db.views.apply_changes(deletes={"R": [(1, 10)]})
        appeared, disappeared = events["V"]
        assert appeared == []
        assert disappeared == [(1, 100)]

    def test_simultaneous_insert_and_delete(self):
        db = make_db()
        db.views.define("V", JOIN_PLAN)
        events = db.views.apply_changes(
            inserts={"R": [(4, 20)]}, deletes={"S": [(10, 100)]})
        appeared, disappeared = events["V"]
        assert appeared == [(4, 200)]
        assert disappeared == [(1, 100)]

    def test_cross_delta_counted_once(self):
        # Insert matching rows on both sides in one batch: the joined row
        # must appear exactly once, not twice.
        db = make_db()
        view = db.views.define("V", JOIN_PLAN)
        db.views.apply_changes(inserts={"R": [(9, 90)], "S": [(90, 900)]})
        assert view.derivation_count((9, 900)) == 1

    def test_duplicate_derivations_keep_row_visible(self):
        # Two R rows deriving the same projected output: deleting one
        # derivation must not hide the row.
        db = make_db()
        view = db.views.define("V", JOIN_PLAN)
        db.views.apply_changes(inserts={"R": [(1, 10)]})  # second derivation of (1,100)
        events = db.views.apply_changes(deletes={"R": [(1, 10)]})
        appeared, disappeared = events.get("V", ([], []))
        assert disappeared == []
        assert (1, 100) in view.visible()

    def test_matches_recomputation_after_batches(self):
        db = make_db()
        view = db.views.define("V", JOIN_PLAN)
        batches = [
            ({"R": [(5, 10)]}, {}),
            ({}, {"S": [(20, 200)]}),
            ({"S": [(10, 111)], "R": [(6, 10)]}, {"R": [(2, 20)]}),
        ]
        for inserts, deletes in batches:
            db.views.apply_changes(inserts=inserts, deletes=deletes)
            recomputed = sorted(set(JOIN_PLAN.evaluate(db)))
            assert sorted(view.visible()) == recomputed

    def test_delete_absent_row_raises(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.views.apply_changes(deletes={"R": [(99, 99)]})

    def test_untouched_views_not_reported(self):
        db = make_db()
        db.create("T", a="int")
        db.views.define("V", JOIN_PLAN)
        events = db.views.apply_changes(inserts={"T": [(1,)]})
        assert "V" not in events


class TestPlanDeltas:
    def test_select_delta_filters(self):
        db = make_db()
        plan = Select(Scan("R"), lambda r: r["x"] > 1)
        view = db.views.define("big_x", plan)
        db.views.apply_changes(inserts={"R": [(0, 5), (7, 70)]})
        assert (7, 70) in view.visible()
        assert (0, 5) not in view.visible()

    def test_union_delta(self):
        db = make_db()
        db.create("R2", x="int", y="int")
        db.insert("R2", [(8, 80)])
        plan = Union((Scan("R"), Scan("R2")))
        view = db.views.define("u", plan)
        db.views.apply_changes(inserts={"R2": [(9, 90)]})
        assert (9, 90) in view.visible()
        assert len(view) == 5

    def test_view_redefinition_rejected(self):
        db = make_db()
        db.views.define("V", JOIN_PLAN)
        with pytest.raises(ValueError):
            db.views.define("V", JOIN_PLAN)


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create("T", a="int")
        assert "T" in db
        assert db.names() == ["T"]

    def test_duplicate_create_rejected(self):
        db = Database()
        db.create("T", a="int")
        with pytest.raises(KeyError):
            db.create("T", a="int")

    def test_missing_relation_raises(self):
        from repro.datastore import DatabaseError
        with pytest.raises(DatabaseError):
            Database()["nope"]

    def test_drop(self):
        db = Database()
        db.create("T", a="int")
        db.drop("T")
        assert "T" not in db

    def test_snapshot_isolates_named_relations(self):
        db = make_db()
        snap = db.snapshot({"R"})
        db["R"].insert((99, 99))
        assert (99, 99) not in snap["R"]

    def test_snapshot_shares_unnamed_relations(self):
        db = make_db()
        snap = db.snapshot({"R"})
        assert snap["S"] is db["S"]

    def test_stats(self):
        db = make_db()
        assert db.stats() == {"R": 3, "S": 2}
