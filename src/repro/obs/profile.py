"""Run profiles: a span forest plus a metrics snapshot, as data.

:class:`Profile` is what :class:`~repro.core.result.RunResult` carries in
place of the old ad-hoc timing dict: the top-level spans are the pipeline
phases, their subtrees (when tracing is enabled) attribute the time below
them, and the metrics snapshot holds the per-operator counters the engines
recorded.  :class:`PhaseRecorder` is the producer side used by
:class:`~repro.core.app.DeepDive`: cheap two-clock phase spans by default,
full subtree capture when the :class:`~repro.obs.config.EngineConfig`
``trace`` flag is set.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Collector, Span, active, installed


@dataclass
class Profile:
    """Everything observability captured for one run."""

    spans: list[Span] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def walk(self) -> Iterator[Span]:
        for root in self.spans:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def span_total(self, name: str) -> float:
        """Total inclusive seconds of every span named ``name`` in the
        forest -- e.g. ``span_total("parallel.chunk")`` sums the time the
        worker processes spent inside their adopted chunk spans."""
        return sum(span.duration for span in self.walk() if span.name == name)

    def phase_seconds(self) -> dict[str, float]:
        """Top-level span durations summed by name, in first-seen order.

        This is the compatibility face: :attr:`RunResult.phase_timings` is
        derived from it, so run history snapshots and existing examples
        keep working.
        """
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def top_spans(self, n: int = 10) -> list[tuple[str, float, int]]:
        """``(name, inclusive_seconds, calls)`` aggregated over the forest,
        largest inclusive time first -- the per-operator breakdown the
        benchmark reports print."""
        seconds: dict[str, float] = {}
        calls: dict[str, int] = {}
        for span in self.walk():
            seconds[span.name] = seconds.get(span.name, 0.0) + span.duration
            calls[span.name] = calls.get(span.name, 0) + 1
        ranked = sorted(seconds.items(), key=lambda kv: -kv[1])[:n]
        return [(name, secs, calls[name]) for name, secs in ranked]

    def render(self, max_depth: int | None = None,
               metrics_top: int = 12) -> str:
        """Human-readable span tree plus the busiest metric series."""
        lines = [span.render(max_depth=max_depth) for span in self.spans]
        counters = self.metrics.get("counters", {})
        histograms = self.metrics.get("histograms", {})
        if counters or histograms:
            lines.append("metrics:")
            ranked = sorted(counters.items(), key=lambda kv: -kv[1])
            for key, value in ranked[:metrics_top]:
                lines.append(f"  {key} = {value:g}")
            ranked_h = sorted(histograms.items(),
                              key=lambda kv: -kv[1]["count"])
            for key, h in ranked_h[:metrics_top]:
                lines.append(f"  {key}: n={h['count']} mean={h['mean']:.4g} "
                             f"max={h['max']:.4g}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"spans": [span.to_dict() for span in self.spans],
                "metrics": self.metrics}

    def write_jsonl(self, path) -> None:
        """Archive the profile: one JSON line per top-level span, then one
        ``{"metrics": ...}`` line -- the CI trace-artifact format."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                json.dump(span.to_dict(), handle, default=str)
                handle.write("\n")
            json.dump({"metrics": self.metrics}, handle, default=str)
            handle.write("\n")


class PhaseRecorder:
    """Accumulates one application's top-level phase spans.

    Untraced (``trace=False``), a phase costs two clock reads -- the same
    price the old ``DeepDive._timings`` dict paid.  Traced, each phase
    installs a :class:`Collector` for its duration so every ``obs.span``
    and metric recorded by the layers below lands under the phase span.

    ``replace=True`` phases (learning, inference) drop prior spans of the
    same name before appending, mirroring the old dict's overwrite
    semantics; accumulating phases (candidate generation) keep every span
    and sum in :meth:`Profile.phase_seconds`.
    """

    def __init__(self, trace: bool = False) -> None:
        self.trace = trace
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()

    @contextmanager
    def phase(self, name: str, replace: bool = False, **attributes):
        if self.trace and active() is None:
            collector = Collector(metrics=self.metrics)
            phase_span = Span(name, dict(attributes), start=perf_counter())
            with installed(collector):
                try:
                    yield phase_span
                finally:
                    phase_span.duration = perf_counter() - phase_span.start
                    phase_span.children = collector.roots
                    self._append(phase_span, replace)
        else:
            phase_span = Span(name, dict(attributes), start=perf_counter())
            try:
                yield phase_span
            finally:
                phase_span.duration = perf_counter() - phase_span.start
                self._append(phase_span, replace)

    def _append(self, span: Span, replace: bool) -> None:
        if replace:
            self.spans = [s for s in self.spans if s.name != span.name]
        self.spans.append(span)

    def profile(self) -> Profile:
        """Snapshot the recorded spans and metrics as a :class:`Profile`."""
        return Profile(spans=list(self.spans), metrics=self.metrics.snapshot())
