"""Observability invariants: span trees always nest correctly for any
interleaving of operations, and metrics merged from per-replica registries
equal the metrics of a single shared registry — the property the NUMA
engine's per-socket collection relies on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import Collector, MetricsRegistry

names = st.sampled_from(["a", "b", "c", "d"])


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


# ---------------------------------------------------------------------------
# span nesting
# ---------------------------------------------------------------------------

@st.composite
def span_trees(draw, depth=0):
    """A random forest shape: each node is (name, [children])."""
    max_children = 3 if depth < 3 else 0
    children = draw(st.lists(span_trees(depth=depth + 1),
                             max_size=max_children))
    return draw(names), children


def open_tree(shape):
    name, children = shape
    with obs.span(name) as sp:
        sp.set(shape_children=len(children))
        for child in children:
            open_tree(child)


def tree_names(shape):
    name, children = shape
    return (name, [tree_names(c) for c in children])


def span_names(span):
    return (span.name, [span_names(c) for c in span.children])


@settings(max_examples=60, deadline=None)
@given(forest=st.lists(span_trees(), min_size=1, max_size=4))
def test_span_forest_mirrors_execution_shape(forest):
    """For ANY nesting pattern, collected roots mirror the call structure."""
    obs.uninstall()
    collector = Collector()
    with obs.installed(collector):
        for shape in forest:
            open_tree(shape)
    assert [span_names(root) for root in collector.roots] == \
        [tree_names(shape) for shape in forest]
    # the stack fully unwound: nothing left open
    assert collector._stack == []


@settings(max_examples=60, deadline=None)
@given(forest=st.lists(span_trees(), min_size=1, max_size=4))
def test_span_durations_contain_children(forest):
    """A parent's inclusive time always covers its children; exclusive time
    is never negative."""
    obs.uninstall()
    collector = Collector()
    with obs.installed(collector):
        for shape in forest:
            open_tree(shape)
    for root in collector.roots:
        for span in root.walk():
            child_total = sum(c.duration for c in span.children)
            assert span.duration >= child_total - 1e-9
            assert span.exclusive >= -1e-9


@settings(max_examples=40, deadline=None)
@given(forest=st.lists(span_trees(), min_size=1, max_size=3),
       fail_at=st.integers(min_value=0, max_value=20))
def test_spans_close_even_when_work_raises(forest, fail_at):
    """An exception anywhere in the tree still closes every opened span."""
    obs.uninstall()
    counter = {"n": 0}

    class Boom(Exception):
        pass

    def open_tree_failing(shape):
        name, children = shape
        with obs.span(name):
            if counter["n"] == fail_at:
                counter["n"] += 1
                raise Boom()
            counter["n"] += 1
            for child in children:
                open_tree_failing(child)

    collector = Collector()
    with obs.installed(collector):
        for shape in forest:
            try:
                open_tree_failing(shape)
            except Boom:
                pass
    assert collector._stack == []
    for root in collector.roots:
        for span in root.walk():
            assert span.duration >= 0.0


# ---------------------------------------------------------------------------
# metrics merging across replicas
# ---------------------------------------------------------------------------

events = st.lists(
    st.one_of(
        st.tuples(st.just("count"), names,
                  st.integers(min_value=0, max_value=10)),
        st.tuples(st.just("observe"), names,
                  st.floats(min_value=-100, max_value=100,
                            allow_nan=False, allow_infinity=False)),
    ),
    max_size=30)


def replay(registry, stream, label=None):
    for kind, name, value in stream:
        labels = {} if label is None else {"socket": label}
        if kind == "count":
            registry.count(name, value, **labels)
        else:
            registry.observe(name, value, **labels)


@settings(max_examples=80, deadline=None)
@given(streams=st.lists(events, min_size=1, max_size=5))
def test_merged_replicas_equal_single_registry(streams):
    """Recording N per-replica streams then merging gives exactly the same
    counters and histograms as recording everything into one registry,
    regardless of how events are split across replicas."""
    replicas = []
    for stream in streams:
        registry = MetricsRegistry()
        replay(registry, stream)
        replicas.append(registry)
    merged = MetricsRegistry()
    for registry in replicas:
        merged.merge(registry)

    single = MetricsRegistry()
    for stream in streams:
        replay(single, stream)

    assert merged.counters == single.counters
    assert set(merged.histograms) == set(single.histograms)
    for key, hist in merged.histograms.items():
        other = single.histograms[key]
        assert hist.count == other.count
        assert hist.total == pytest.approx(other.total)
        assert hist.min == other.min
        assert hist.max == other.max


@settings(max_examples=40, deadline=None)
@given(streams=st.lists(events, min_size=2, max_size=4),
       seed=st.integers(min_value=0, max_value=1000))
def test_merge_is_order_independent(streams, seed):
    """Merging replica registries in any order yields identical snapshots."""
    import random

    replicas = []
    for stream in streams:
        registry = MetricsRegistry()
        replay(registry, stream)
        replicas.append(registry)

    forward = MetricsRegistry()
    for registry in replicas:
        forward.merge(registry)

    shuffled_order = list(replicas)
    random.Random(seed).shuffle(shuffled_order)
    shuffled = MetricsRegistry()
    for registry in shuffled_order:
        shuffled.merge(registry)

    fwd, shf = forward.snapshot(), shuffled.snapshot()
    assert fwd["counters"] == shf["counters"]
    assert set(fwd["histograms"]) == set(shf["histograms"])
    for key in fwd["histograms"]:
        a, b = fwd["histograms"][key], shf["histograms"][key]
        assert a["count"] == b["count"]
        assert a["total"] == pytest.approx(b["total"])
        assert a["min"] == b["min"] and a["max"] == b["max"]


@settings(max_examples=40, deadline=None)
@given(streams=st.lists(events, min_size=1, max_size=4))
def test_labelled_replica_series_stay_distinct(streams):
    """Per-socket labels keep replica series separate while the unlabelled
    total still sums across them — the NUMA reporting contract."""
    merged = MetricsRegistry()
    expected_totals = {}
    for socket, stream in enumerate(streams):
        registry = MetricsRegistry()
        replay(registry, stream, label=socket)
        merged.merge(registry)
        for kind, name, value in stream:
            if kind == "count":
                expected_totals[name] = expected_totals.get(name, 0) + value
    for name, total in expected_totals.items():
        assert merged.counter_total(name) == total
