"""The error-analysis document (paper Section 5.2).

"The first step in this process is when an engineer produces an error
analysis.  This is a strongly stylized document" containing the measured
precision and recall, an enumeration of failure-mode buckets with counts,
and for the top buckets the underlying reason DeepDive made a mistake --
plus commodity statistics, checksums, and per-feature weight/observation
summaries that do not require manual work.

The manual steps (marking ~100 extractions, tagging failure modes) are
modelled as callables so tests and benchmarks can plug in oracles while real
users plug in Mindtagger-style annotation sessions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.eval.metrics import PrecisionRecall


@dataclass
class FailureBucket:
    """One failure mode: a free-form tag, its count, and sample cases."""

    tag: str
    count: int
    examples: list[Hashable] = field(default_factory=list)


@dataclass
class FeatureStat:
    """Per-feature debugging row: learned weight and observation count.

    "Our debugging tool always presents, for each feature, the number of
    times the feature was observed in the training data.  This allows
    engineers to detect whether the feature has an incorrect weight due to
    insufficient training data" (Section 2.5).
    """

    key: str
    weight: float
    observations: int
    description: str = ""

    @property
    def undertrained(self) -> bool:
        """Heuristic flag: a large weight learned from very few observations."""
        return self.observations < 5 and abs(self.weight) > 1.0


# Section 5.2's three root-cause categories for a missed/incorrect extraction.
CAUSE_MISSING_CANDIDATE = "candidate-generation-failure"
CAUSE_INSUFFICIENT_FEATURES = "insufficient-features"
CAUSE_BAD_WEIGHTS = "incorrect-weights"


@dataclass
class ErrorAnalysisReport:
    """The stylized document, as structured data plus a text rendering."""

    precision: PrecisionRecall
    precision_sample: list[tuple[Hashable, bool]]
    recall_sample: list[tuple[Hashable, bool]]
    failure_buckets: list[FailureBucket]
    feature_stats: list[FeatureStat]
    db_stats: dict[str, int]
    graph_stats: dict[str, int]
    checksum: str

    def top_bucket(self) -> FailureBucket | None:
        """The bucket the engineer should address first (largest count)."""
        return self.failure_buckets[0] if self.failure_buckets else None

    def undertrained_features(self) -> list[FeatureStat]:
        return [s for s in self.feature_stats if s.undertrained]

    def render(self) -> str:
        """Plain-text rendering of the document."""
        lines = ["ERROR ANALYSIS", "=" * 60]
        lines.append(f"checksum: {self.checksum}")
        lines.append(str(self.precision))
        lines.append("")
        lines.append("failure buckets (descending):")
        for bucket in self.failure_buckets:
            lines.append(f"  {bucket.count:5d}  {bucket.tag}")
            for example in bucket.examples[:3]:
                lines.append(f"         e.g. {example}")
        lines.append("")
        lines.append("features by |weight| (top 20):")
        for stat in sorted(self.feature_stats, key=lambda s: -abs(s.weight))[:20]:
            flag = "  ** undertrained" if stat.undertrained else ""
            lines.append(f"  {stat.weight:+7.3f}  n={stat.observations:<6d} "
                         f"{stat.key}{flag}")
        lines.append("")
        lines.append(f"database: {self.db_stats}")
        lines.append(f"factor graph: {self.graph_stats}")
        return "\n".join(lines)


def build_report(
    extractions: Iterable[Hashable],
    truth: Iterable[Hashable],
    mark_extraction: Callable[[Hashable], bool],
    bucket_failure: Callable[[Hashable], str],
    feature_stats: Sequence[FeatureStat] = (),
    db_stats: Mapping[str, int] | None = None,
    graph_stats: Mapping[str, int] | None = None,
    sample_size: int = 100,
    seed: int = 0,
) -> ErrorAnalysisReport:
    """Assemble an error-analysis document.

    ``mark_extraction`` answers "is this emitted tuple actually correct?"
    (the manual precision pass); ``bucket_failure`` tags an incorrect or
    missed extraction with a failure mode.  ``truth`` drives the recall pass.
    """
    rng = np.random.default_rng(seed)
    extraction_list = sorted(set(extractions), key=repr)
    truth_set = set(truth)

    precision_sample = _sample(extraction_list, sample_size, rng)
    precision_marks = [(item, bool(mark_extraction(item))) for item in precision_sample]

    recall_pool = sorted(truth_set, key=repr)
    recall_sample_items = _sample(recall_pool, sample_size, rng)
    extraction_set = set(extraction_list)
    recall_marks = [(item, item in extraction_set) for item in recall_sample_items]

    buckets: dict[str, FailureBucket] = {}
    failures = [item for item, correct in precision_marks if not correct]
    failures += [item for item, found in recall_marks if not found]
    for item in failures:
        tag = bucket_failure(item)
        bucket = buckets.setdefault(tag, FailureBucket(tag, 0))
        bucket.count += 1
        if len(bucket.examples) < 5:
            bucket.examples.append(item)

    # Measured precision/recall from the two samples, as an engineer would
    # compute them by hand:
    marked_correct = sum(1 for _, correct in precision_marks if correct)
    found = sum(1 for _, present in recall_marks if present)
    quality = PrecisionRecall(
        true_positives=marked_correct,
        false_positives=len(precision_marks) - marked_correct,
        false_negatives=len(recall_marks) - found,
    )

    return ErrorAnalysisReport(
        precision=quality,
        precision_sample=precision_marks,
        recall_sample=recall_marks,
        failure_buckets=sorted(buckets.values(), key=lambda b: -b.count),
        feature_stats=list(feature_stats),
        db_stats=dict(db_stats or {}),
        graph_stats=dict(graph_stats or {}),
        checksum=_checksum(extraction_list, feature_stats, db_stats or {}),
    )


def diagnose_miss(item: Hashable, candidate_keys: set[Hashable],
                  feature_count: Callable[[Hashable], int],
                  min_features: int = 2) -> str:
    """Root-cause a missed extraction per the Section 5.2 decision procedure.

    1. Not among the candidates evaluated probabilistically -> the candidate
       generator failed.
    2. A candidate, but with too few features to discriminate -> the feature
       library is insufficient.
    3. Featured but still wrong -> the learned weights are off, usually from
       distant-supervision gaps.
    """
    if item not in candidate_keys:
        return CAUSE_MISSING_CANDIDATE
    if feature_count(item) < min_features:
        return CAUSE_INSUFFICIENT_FEATURES
    return CAUSE_BAD_WEIGHTS


def _sample(items: Sequence[Hashable], size: int, rng: np.random.Generator) -> list:
    if len(items) <= size:
        return list(items)
    indices = rng.choice(len(items), size=size, replace=False)
    return [items[i] for i in sorted(indices)]


def _checksum(extractions: Sequence, feature_stats: Sequence, db_stats: Mapping) -> str:
    digest = hashlib.sha256()
    digest.update(repr(sorted(map(repr, extractions))).encode())
    digest.update(repr([(s.key, round(s.weight, 6)) for s in feature_stats]).encode())
    digest.update(repr(sorted(db_stats.items())).encode())
    return digest.hexdigest()[:16]
