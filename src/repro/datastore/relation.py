"""Relations: bag-semantics tuple stores with hash indexes.

DeepDive's datastore holds every intermediate product of the pipeline in
relations.  A :class:`Relation` stores rows with *bag semantics* (each row has
a multiplicity count), which is exactly what the DRed incremental view
maintenance algorithm of Gupta, Mumick & Subrahmanian needs: a delta relation
is "the same schema plus a count", and here every relation carries counts.

Hash indexes are created lazily per column set and kept consistent by the
insert/delete paths.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.datastore.schema import Schema, SchemaError

Row = tuple[Any, ...]


class Relation:
    """A named, schema'd multiset of rows with lazy hash indexes."""

    def __init__(self, name: str, schema: Schema, rows: Iterable[Sequence[Any]] = ()) -> None:
        self.name = name
        self.schema = schema
        self._counts: Counter[Row] = Counter()
        self._indexes: dict[tuple[int, ...], dict[tuple[Any, ...], Counter[Row]]] = {}
        self._total = 0            # cached sum of multiplicities
        self._version = 0          # bumped on every mutation (cache keys)
        self._columnar: tuple[int, Any] | None = None   # (version, ColumnStore)
        for row in rows:
            self.insert(row)

    @classmethod
    def from_counts(cls, name: str, schema: Schema,
                    counts: Mapping[Row, int] | Iterable[tuple[Row, int]],
                    validate: bool = True) -> "Relation":
        """Bulk-construct a relation from ``row -> count`` data.

        The public constructor path for query backends: results computed as
        count bags (row or columnar) become relations without per-row insert
        and index bookkeeping.  ``validate=False`` skips schema coercion for
        rows that already passed through it (e.g. decoded columnar output).
        """
        items = counts.items() if isinstance(counts, Mapping) else counts
        relation = cls(name, schema)
        bag = relation._counts
        if validate:
            validate_row = schema.validate_row
            for row, count in items:
                if count <= 0:
                    raise ValueError(
                        f"from_counts needs positive counts, got {count} for {row!r}")
                bag[validate_row(row)] += count
        else:
            for row, count in items:
                bag[row] += count
        relation._total = sum(bag.values())
        return relation

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        """Number of rows, counting multiplicity (cached, O(1))."""
        return self._total

    def __iter__(self) -> Iterator[Row]:
        """Iterate rows with multiplicity (a row with count 3 appears 3 times)."""
        for row, count in self._counts.items():
            for _ in range(count):
                yield row

    def __contains__(self, row: Sequence[Any]) -> bool:
        return self.schema.validate_row(row) in self._counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, arity={self.schema.arity}, rows={len(self)})"

    @property
    def distinct_count(self) -> int:
        return len(self._counts)

    @property
    def mutation_version(self) -> int:
        """Monotonic counter bumped on every mutation.

        Caches across the engine (columnar encodings, DRed view inputs) key
        on it, so a database restored from a dump must resume from the
        persisted counter — restarting at zero could alias a stale cache
        entry for an object at the same address.  Persistence round-trips it
        via :meth:`restore_mutation_version`.
        """
        return self._version

    def restore_mutation_version(self, version: int) -> None:
        """Fast-forward the mutation counter (dump/load restore path only)."""
        if version < self._version:
            raise ValueError(
                f"cannot rewind mutation version of {self.name!r} from "
                f"{self._version} to {version}")
        self._version = version

    def count(self, row: Sequence[Any]) -> int:
        """Multiplicity of ``row`` (0 if absent)."""
        return self._counts.get(self.schema.validate_row(row), 0)

    def distinct_rows(self) -> Iterator[Row]:
        """Iterate each distinct row once, ignoring multiplicity."""
        return iter(self._counts)

    def counted_rows(self) -> Iterator[tuple[Row, int]]:
        """Iterate ``(row, count)`` pairs."""
        return iter(self._counts.items())

    def iter_rows(self) -> Iterator[Row]:
        """Stream rows with multiplicity — the row-iterator protocol.

        Equivalent to ``iter(self)``, but spelled as a method so bulk
        consumers can accept "anything with ``iter_rows``": a
        :class:`~repro.datastore.ivm.MaterializedView` answers it with its
        visible rows, and a ``SegmentedRelation`` streams segment by
        segment, so piping ``iter_rows()`` into ``insert_many`` never
        materializes the source relation as a list.
        """
        return iter(self)

    def counts_copy(self) -> Counter[Row]:
        """An independent ``row -> count`` Counter snapshot (one C-level copy)."""
        return Counter(self._counts)

    # ---------------------------------------------------------------- updates
    def insert(self, row: Sequence[Any], count: int = 1) -> Row:
        """Insert ``row`` with multiplicity ``count``; return the stored tuple."""
        if count <= 0:
            raise ValueError(f"insert count must be positive, got {count}")
        stored = self.schema.validate_row(row)
        self._counts[stored] += count
        self._total += count
        self._version += 1
        for key_positions, index in self._indexes.items():
            key = tuple(stored[i] for i in key_positions)
            index.setdefault(key, Counter())[stored] += count
        return stored

    def insert_many(self, rows: Iterable[Sequence[Any]],
                    validate: bool = True) -> int:
        """Insert every row in ``rows`` (multiplicity 1 each); return the
        number inserted.

        ``validate=False`` skips schema coercion for rows that already passed
        through it (e.g. materialized-view output consumed by the grounder);
        counts, version and any live hash indexes are maintained in one pass.
        """
        if validate:
            rows = [self.schema.validate_row(row) for row in rows]
        elif not isinstance(rows, list):
            rows = list(rows)
        if not rows:
            return 0
        self._counts.update(rows)
        self._total += len(rows)
        self._version += 1
        for key_positions, index in self._indexes.items():
            for stored in rows:
                key = tuple(stored[i] for i in key_positions)
                index.setdefault(key, Counter())[stored] += 1
        return len(rows)

    def insert_counted(self, counted: Iterable[tuple[Sequence[Any], int]],
                       validate: bool = True) -> int:
        """Insert ``(row, count)`` pairs in one pass (a single version bump).

        The bulk path for restoring persisted bags: multiplicities land
        directly in the Counter instead of being expanded row-by-row.
        Returns the total multiplicity inserted.
        """
        added = 0
        for row, count in counted:
            if count <= 0:
                raise ValueError(
                    f"insert count must be positive, got {count}")
            stored = self.schema.validate_row(row) if validate else row
            self._counts[stored] += count
            added += count
            for key_positions, index in self._indexes.items():
                key = tuple(stored[i] for i in key_positions)
                index.setdefault(key, Counter())[stored] += count
        if added:
            self._total += added
            self._version += 1
        return added

    def delete(self, row: Sequence[Any], count: int = 1) -> int:
        """Remove up to ``count`` copies of ``row``; return how many were removed."""
        if count <= 0:
            raise ValueError(f"delete count must be positive, got {count}")
        stored = self.schema.validate_row(row)
        present = self._counts.get(stored, 0)
        removed = min(count, present)
        if removed == 0:
            return 0
        if removed == present:
            del self._counts[stored]
        else:
            self._counts[stored] = present - removed
        self._total -= removed
        self._version += 1
        for key_positions, index in self._indexes.items():
            key = tuple(stored[i] for i in key_positions)
            bucket = index.get(key)
            if bucket is not None:
                if bucket[stored] <= removed:
                    del bucket[stored]
                else:
                    bucket[stored] -= removed
                if not bucket:
                    del index[key]
        return removed

    def clear(self) -> None:
        """Remove all rows (indexes are kept but emptied)."""
        self._counts.clear()
        self._total = 0
        self._version += 1
        for index in self._indexes.values():
            index.clear()

    # ---------------------------------------------------------------- lookups
    def _index_for(self, columns: Sequence[str]) -> dict[tuple[Any, ...], Counter[Row]]:
        positions = tuple(self.schema.position(c) for c in columns)
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row, count in self._counts.items():
                key = tuple(row[i] for i in positions)
                index.setdefault(key, Counter())[row] += count
            self._indexes[positions] = index
        return index

    def lookup(self, columns: Sequence[str], values: Sequence[Any]) -> Iterator[Row]:
        """Yield rows (with multiplicity) where ``columns`` equal ``values``.

        Builds (and caches) a hash index on ``columns`` the first time.
        """
        if len(columns) != len(values):
            raise SchemaError("lookup columns and values must have equal length")
        bucket = self._index_for(columns).get(tuple(values))
        if bucket is None:
            return
        for row, count in bucket.items():
            for _ in range(count):
                yield row

    def lookup_distinct(self, columns: Sequence[str], values: Sequence[Any]) -> Iterator[Row]:
        """Like :meth:`lookup` but yields each distinct row once."""
        bucket = self._index_for(columns).get(tuple(values))
        if bucket is not None:
            yield from bucket

    # ------------------------------------------------------------ conveniences
    def rows_where(self, predicate: Callable[[dict[str, Any]], bool]) -> Iterator[Row]:
        """Yield rows (with multiplicity) whose dict form satisfies ``predicate``."""
        for row in self:
            if predicate(self.schema.row_dict(row)):
                yield row

    def column(self, name: str) -> Iterator[Any]:
        """Yield the value of column ``name`` for every row (with multiplicity)."""
        position = self.schema.position(name)
        for row in self:
            yield row[position]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize all rows as dicts (multiplicity preserved)."""
        return [self.schema.row_dict(row) for row in self]

    def copy(self, name: str | None = None) -> "Relation":
        """Deep-enough copy: shares row tuples (immutable) but not counts/indexes."""
        clone = Relation(name or self.name, self.schema)
        clone._counts = Counter(self._counts)
        clone._total = self._total
        return clone

    # ---------------------------------------------------------- columnar view
    def columnar(self, pool=None):
        """This relation dictionary-encoded as a :class:`ColumnStore`.

        The encoding is cached against the relation's mutation version, so
        repeated plan evaluations over unchanged base data encode once.  Only
        encodings against the default pool are cached.
        """
        from repro.datastore import columnar as C

        if pool is None or pool is C.DEFAULT_POOL:
            cached = self._columnar
            if cached is not None and cached[0] == self._version:
                return cached[1]
            store = C.ColumnStore.from_relation(self, C.DEFAULT_POOL)
            self._columnar = (self._version, store)
            return store
        return C.ColumnStore.from_relation(self, pool)
