"""In-memory relational datastore with DRed incremental view maintenance.

This package is the substrate the paper assumes from PostgreSQL: typed
relations, relational-algebra queries, and counting-based incremental view
maintenance used by incremental grounding (paper Section 4.1).
"""

from repro.datastore.database import Database, DatabaseError
from repro.datastore.ivm import MaterializedView, SignedDelta, ViewSet
from repro.datastore.plan import (Extend, Join, Plan, Project, Rename, Scan,
                                  Select, Union, chain_joins)
from repro.datastore.relation import Relation
from repro.datastore.schema import Column, Schema, SchemaError
from repro.datastore.segments import (SegmentCache, SegmentedRelation,
                                      SegmentError, segment_cache)
from repro.datastore.types import ColumnType

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "DatabaseError",
    "Extend",
    "Join",
    "MaterializedView",
    "Plan",
    "Project",
    "Relation",
    "Rename",
    "Scan",
    "Schema",
    "SchemaError",
    "SegmentCache",
    "SegmentError",
    "SegmentedRelation",
    "Select",
    "SignedDelta",
    "Union",
    "ViewSet",
    "chain_joins",
    "segment_cache",
]
