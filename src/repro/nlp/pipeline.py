"""The document-loading pipeline: raw documents -> sentence rows with markup.

Mirrors DeepDive's default loading step: each input document is HTML-stripped,
split into sentences, tokenized, and POS-tagged; the result is stored *one
sentence per row* in the ``sentences`` relation of the datastore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro import obs
from repro.datastore import Database, Schema
from repro.nlp.chunker import Chunk, noun_phrases
from repro.nlp.htmlstrip import strip_html
from repro.nlp.pos import tag
from repro.nlp.sentences import split_sentences
from repro.nlp.tokenize import Token, tokenize


@dataclass(frozen=True)
class Document:
    """A raw input document (possibly HTML)."""

    doc_id: str
    content: str


@dataclass(frozen=True)
class Sentence:
    """One preprocessed sentence: the unit DeepDive candidates live in."""

    doc_id: str
    sentence_id: int      # position of the sentence within its document
    text: str
    tokens: tuple[str, ...]
    pos_tags: tuple[str, ...]
    offsets: tuple[tuple[int, int], ...] = field(default=())

    @property
    def key(self) -> str:
        """Globally unique sentence identifier."""
        return f"{self.doc_id}:{self.sentence_id}"

    def noun_phrase_chunks(self) -> list[Chunk]:
        return noun_phrases(list(self.pos_tags))


SENTENCE_SCHEMA = Schema.of(
    sentence_key="text", doc_id="text", sentence_id="int", text="text",
    tokens="array", pos_tags="array")

DOCUMENT_SCHEMA = Schema.of(doc_id="text", content="text")


def preprocess_document(doc: Document) -> list[Sentence]:
    """Run the full NLP chain on one document."""
    text = strip_html(doc.content)
    sentences = []
    for index, sentence_text in enumerate(split_sentences(text)):
        tokens: list[Token] = tokenize(sentence_text)
        texts = [t.text for t in tokens]
        sentences.append(Sentence(
            doc_id=doc.doc_id,
            sentence_id=index,
            text=sentence_text,
            tokens=tuple(texts),
            pos_tags=tuple(tag(texts)),
            offsets=tuple((t.start, t.end) for t in tokens),
        ))
    if obs.enabled():
        obs.count("nlp.documents")
        obs.observe("nlp.sentences_per_doc", len(sentences))
        obs.observe("nlp.tokens_per_doc",
                    sum(len(s.tokens) for s in sentences))
    return sentences


def preprocess_document_rows(doc: Document) -> list[tuple]:
    """The ``sentences`` relation rows for one document.

    The row-returning face of :func:`preprocess_document`: pool workers
    ship plain row tuples back to the parent instead of :class:`Sentence`
    objects (smaller pickles, no ``offsets``), and the parent-side merge
    can stream them straight into ``insert_many`` — see
    :func:`iter_corpus_rows`.
    """
    return [sentence_row(sentence) for sentence in preprocess_document(doc)]


def preprocess_corpus(documents: Sequence[Document], workers: int = 0,
                      parallel_mode: str = "auto", pool_warm: bool = True,
                      pool_min_work: int | None = None,
                      pool_owner: str | None = None
                      ) -> list[list[Sentence]]:
    """Per-document sentence lists, fanned out when ``workers > 0``.

    The parallel layer's chunked order-preserving merge returns exactly
    what the sequential loop would; a pool failure silently falls back to
    that loop, so callers always get ``[preprocess_document(d) for d in
    docs]``.  The adaptive dispatcher keeps corpora whose total character
    count estimates below ``pool_min_work`` on the sequential path,
    ``pool_warm`` picks the persistent pool (default) over the historical
    per-call one, and ``pool_owner`` selects a private registry partition
    (a sharded service's per-shard pool) instead of the shared pool.
    """
    per_doc = None
    if workers > 0 and len(documents) > 1:
        from repro.obs.config import DEFAULT_POOL_MIN_WORK
        from repro.parallel import (decide_map, get_pool,
                                    parallel_preprocess)
        if pool_min_work is None:
            pool_min_work = DEFAULT_POOL_MIN_WORK
        decision = decide_map(sum(len(doc.content) for doc in documents),
                              workers=workers, min_work=pool_min_work)
        decision.record()
        if decision.use_pool:
            if pool_warm:
                pool = get_pool(workers, mode=parallel_mode,
                                owner=pool_owner)
                if pool is not None:
                    per_doc = pool.map(preprocess_document, documents)
            else:
                per_doc = parallel_preprocess(documents, workers=workers,
                                              mode=parallel_mode)
    if per_doc is None:
        per_doc = [preprocess_document(doc) for doc in documents]
    return per_doc


def iter_corpus_rows(documents: Sequence[Document], workers: int = 0,
                     parallel_mode: str = "auto", pool_warm: bool = True,
                     pool_min_work: int | None = None,
                     pool_owner: str | None = None):
    """Lazily yield per-document ``sentences`` row lists (the row-iterator
    protocol's NLP face).

    Bit-identical to ``[preprocess_document_rows(d) for d in documents]``
    but never materializes :class:`Sentence` objects on the parent side:
    the sequential path is a generator (one document's rows resident at a
    time), and the pooled path maps :func:`preprocess_document_rows` so
    workers return row tuples directly — the per-shard NLP merge of a
    sharded service consumes these without holding a chunk of sentence
    objects per worker.
    """
    if workers > 0 and len(documents) > 1:
        from repro.obs.config import DEFAULT_POOL_MIN_WORK
        from repro.parallel import decide_map, get_pool
        if pool_min_work is None:
            pool_min_work = DEFAULT_POOL_MIN_WORK
        decision = decide_map(sum(len(doc.content) for doc in documents),
                              workers=workers, min_work=pool_min_work)
        decision.record()
        if decision.use_pool:
            if pool_warm:
                pool = get_pool(workers, mode=parallel_mode, owner=pool_owner)
                if pool is not None:
                    per_doc = pool.map(preprocess_document_rows, documents)
                    if per_doc is not None:
                        return per_doc
            else:
                from repro.parallel import parallel_preprocess
                per_doc = parallel_preprocess(documents, workers=workers,
                                              mode=parallel_mode)
                return ([sentence_row(s) for s in group] for group in per_doc)
    return (preprocess_document_rows(doc) for doc in documents)


def iter_document_chunks(documents: Iterable[Document],
                         chunk_docs: int) -> Iterable[list[Document]]:
    """Batch a document iterable into lists of at most ``chunk_docs``.

    Never materializes the whole iterable: at most one chunk is resident,
    which is what makes :func:`load_corpus`'s streaming path bounded-memory.
    """
    if chunk_docs < 1:
        raise ValueError(f"chunk_docs must be positive, got {chunk_docs}")
    chunk: list[Document] = []
    for doc in documents:
        chunk.append(doc)
        if len(chunk) >= chunk_docs:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def load_corpus(db: Database, documents: Iterable[Document],
                workers: int | None = None,
                parallel_mode: str | None = None,
                pool_warm: bool | None = None,
                pool_min_work: int | None = None,
                chunk_docs: int | None = None) -> int:
    """Preprocess ``documents`` into the ``documents``/``sentences`` relations.

    Creates the relations if absent.  Returns the number of sentences loaded.
    Rows are built per document and bulk-loaded with ``insert_many`` (one
    relation version bump instead of one per row); ``workers`` (defaulting
    to the database's :class:`~repro.obs.config.EngineConfig`) fans the NLP
    chain across worker processes with byte-identical relation contents and
    row order.

    ``chunk_docs`` selects the streaming path: documents are pulled from the
    iterable ``chunk_docs`` at a time, preprocessed (still through the
    worker pool when enabled), and inserted chunk-by-chunk — peak memory is
    bounded by one chunk regardless of corpus size, and the final relation
    contents are identical to a one-shot load (the relations just see one
    version bump per chunk instead of one in total).

    The merge consumes :func:`iter_corpus_rows`: sentence rows stream into
    ``insert_many`` directly, so no :class:`Sentence` objects are ever
    materialized here — on the sequential path at most one document's rows
    are resident beyond the validated insert batch.
    """
    if "documents" not in db:
        db.create("documents", DOCUMENT_SCHEMA)
    if "sentences" not in db:
        db.create("sentences", SENTENCE_SCHEMA)
    config = getattr(db, "config", None)
    if workers is None:
        workers = config.workers if config is not None else 0
    if parallel_mode is None:
        parallel_mode = config.parallel_mode if config is not None else "auto"
    if pool_warm is None:
        pool_warm = config.pool_warm if config is not None else True
    if pool_min_work is None:
        pool_min_work = config.pool_min_work if config is not None else None
    pool_owner = config.pool_owner if config is not None else None
    if chunk_docs is None:
        chunks: Iterable[list[Document]] = [list(documents)]
    else:
        chunks = iter_document_chunks(documents, chunk_docs)
    loaded = 0
    for docs in chunks:
        per_doc_rows = iter_corpus_rows(docs, workers=workers,
                                        parallel_mode=parallel_mode,
                                        pool_warm=pool_warm,
                                        pool_min_work=pool_min_work,
                                        pool_owner=pool_owner)
        db["documents"].insert_many((doc.doc_id, doc.content) for doc in docs)
        loaded += db["sentences"].insert_many(
            row for rows in per_doc_rows for row in rows)
    return loaded


def sentence_row(sentence: Sentence) -> tuple:
    """The ``sentences`` relation row for a :class:`Sentence`."""
    return (sentence.key, sentence.doc_id, sentence.sentence_id, sentence.text,
            sentence.tokens, sentence.pos_tags)


def sentence_from_row(row: Sequence) -> Sentence:
    """Reconstruct a :class:`Sentence` from its ``sentences`` relation row."""
    _, doc_id, sentence_id, text, tokens, pos_tags = row
    return Sentence(doc_id=doc_id, sentence_id=sentence_id, text=text,
                    tokens=tuple(tokens), pos_tags=tuple(pos_tags))
