"""Append-only write-ahead log of committed ingest batches.

Durability contract: a batch is *committed* the moment its record is fully
appended (and optionally fsynced) — the apply loop writes the WAL record
**before** touching any in-memory state, so a crash at any later point
replays the batch on recovery and lands on the same state.  A crash *during*
the append leaves a torn final line, which opening the log recognises,
discards with a warning, and **physically truncates back to the last fully
committed record** — the next append must start on a clean line boundary,
never concatenate onto the torn bytes.  The torn batch was never
acknowledged, so dropping it is correct.

Format: JSON lines.  Line 1 is a header ``{"repro_wal": 1}``; after a
:meth:`WriteAheadLog.compact` it also carries ``"base_lsn": n``, meaning
records ``1..n`` are covered by a checkpoint and were removed from this
file.  Every other line is ``{"lsn": n, "batch": [op records...]}`` with
strictly increasing log sequence numbers starting at ``base_lsn + 1``.  Op
records are the exact codec of :mod:`repro.serve.ops`.
"""

from __future__ import annotations

import json
import os
import pathlib
import warnings
from dataclasses import dataclass
from typing import Iterable

from repro.serve.ops import IngestOp, op_from_record

WAL_FORMAT_VERSION = 1


class WalError(ValueError):
    """Raised when the log is structurally corrupt (not merely truncated)."""


@dataclass(frozen=True)
class WalRecord:
    """One committed batch: its sequence number and decoded operations."""

    lsn: int
    batch: tuple[IngestOp, ...]


@dataclass(frozen=True)
class _Scan:
    """One full parse of the log file.

    ``good_end`` is the byte offset just past the last fully committed
    line; anything beyond it (a torn append) is safe to truncate away.
    """

    base_lsn: int
    records: tuple[WalRecord, ...]
    good_end: int
    size: int


class WriteAheadLog:
    """Appender/reader for one service directory's ``ingest.wal``.

    A single writer (the apply loop) appends; any number of recovery-time
    readers replay.  The file handle is kept open in append mode so each
    commit is one write + flush (+ fsync when configured).  Opening an
    existing log repairs a torn tail in place (see the module docstring),
    and :meth:`compact` keeps the file bounded to the records a checkpoint
    does not already cover.
    """

    def __init__(self, path: str | os.PathLike, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._base_lsn = 0
        self._next_lsn = 1
        if self.path.exists():
            scan = self._scan()
            self._base_lsn = scan.base_lsn
            last = scan.records[-1].lsn if scan.records else scan.base_lsn
            self._next_lsn = last + 1
            if scan.good_end < scan.size:
                # torn tail: cut the file back to the last committed line
                # so the next append cannot merge with the torn bytes
                with open(self.path, "rb+") as stream:
                    stream.truncate(scan.good_end)
                    if self.fsync:
                        os.fsync(stream.fileno())
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as stream:
                stream.write(_header_line(0))
        self._stream = open(self.path, "a", encoding="utf-8")

    # --------------------------------------------------------------- parsing
    def _scan(self) -> _Scan:
        """Parse the whole file, tracking byte offsets of intact lines.

        A torn (crash-interrupted) final record — undecodable, or missing
        its newline — is excluded from ``good_end`` and warned about;
        corruption anywhere *before* the final record raises
        :class:`WalError`, since that indicates real damage, not a torn
        append.
        """
        with open(self.path, "rb") as stream:
            data = stream.read()
        segments = data.split(b"\n")
        torn = segments.pop()               # non-empty iff no final newline
        if not segments:
            raise WalError(f"{self.path} has no complete header line")
        try:
            header = json.loads(segments[0].decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise WalError(f"{self.path} header is not JSON: {error}") \
                from None
        if not isinstance(header, dict) \
                or header.get("repro_wal") != WAL_FORMAT_VERSION:
            version = header.get("repro_wal") if isinstance(header, dict) \
                else header
            raise WalError(
                f"unsupported WAL format {version!r} in {self.path}; "
                f"this build reads version {WAL_FORMAT_VERSION}")
        base_lsn = int(header.get("base_lsn", 0))
        records: list[WalRecord] = []
        previous_lsn = base_lsn
        good_end = len(segments[0]) + 1
        for index, segment in enumerate(segments[1:]):
            line_number = index + 2
            end = good_end + len(segment) + 1
            if not segment.strip():
                good_end = end
                continue
            try:
                raw = json.loads(segment.decode("utf-8"))
                record = WalRecord(
                    lsn=int(raw["lsn"]),
                    batch=tuple(op_from_record(op) for op in raw["batch"]))
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                    TypeError, ValueError):
                if index == len(segments) - 2 and not torn.strip():
                    warnings.warn(
                        f"discarding truncated tail record at "
                        f"{self.path}:{line_number} (crash during append; "
                        f"the batch was never committed)")
                    return _Scan(base_lsn, tuple(records), good_end,
                                 len(data))
                raise WalError(f"corrupt WAL record at "
                               f"{self.path}:{line_number}") from None
            if record.lsn != previous_lsn + 1:
                raise WalError(
                    f"non-contiguous LSN {record.lsn} after {previous_lsn} "
                    f"at {self.path}:{line_number}")
            previous_lsn = record.lsn
            records.append(record)
            good_end = end
        if torn.strip():
            warnings.warn(
                f"discarding truncated tail record at "
                f"{self.path}:{len(segments) + 1} (crash during append; "
                f"the batch was never committed)")
        return _Scan(base_lsn, tuple(records), good_end, len(data))

    # --------------------------------------------------------------- writing
    def append(self, batch: Iterable[IngestOp]) -> int:
        """Durably append one batch; returns its LSN.

        The record only counts as committed once fully on disk — callers
        must append before mutating any state the batch affects.
        """
        lsn = self._next_lsn
        record = {"lsn": lsn, "batch": [op.to_record() for op in batch]}
        self._stream.write(json.dumps(record) + "\n")
        self._stream.flush()
        if self.fsync:
            os.fsync(self._stream.fileno())
        self._next_lsn = lsn + 1
        return lsn

    def compact(self, upto_lsn: int | None = None) -> int:
        """Drop records with ``lsn <= upto_lsn`` (default: all of them).

        Called after a successful checkpoint covering ``upto_lsn``: those
        records will never be replayed again, so the log is atomically
        rewritten to hold only the tail beyond them, with ``base_lsn``
        stamped in the header to keep LSN continuity.  This bounds open
        and recovery cost by the WAL *tail*, not total ingest history.
        Returns the number of records dropped.

        Note: replaying an *older* retained checkpoint forward is no
        longer possible once the records it is missing are compacted away;
        recovery always uses the newest checkpoint.
        """
        if upto_lsn is None:
            upto_lsn = self.last_lsn
        upto_lsn = min(upto_lsn, self.last_lsn)
        if upto_lsn <= self._base_lsn:
            return 0
        scan = self._scan()
        keep = [r for r in scan.records if r.lsn > upto_lsn]
        temp = self.path.with_name(self.path.name + ".tmp")
        with open(temp, "w", encoding="utf-8") as stream:
            stream.write(_header_line(upto_lsn))
            for record in keep:
                stream.write(json.dumps(
                    {"lsn": record.lsn,
                     "batch": [op.to_record() for op in record.batch]})
                    + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        if not self._stream.closed:
            self._stream.close()
        os.replace(temp, self.path)
        self._base_lsn = upto_lsn
        self._stream = open(self.path, "a", encoding="utf-8")
        return len(scan.records) - len(keep)

    @property
    def base_lsn(self) -> int:
        """Records at or below this LSN were compacted into a checkpoint."""
        return self._base_lsn

    @property
    def last_lsn(self) -> int:
        """The most recently committed LSN (0 if the log is empty)."""
        return self._next_lsn - 1

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()

    # --------------------------------------------------------------- reading
    def replay(self, after_lsn: int = 0) -> list[WalRecord]:
        """Decode every committed record with ``lsn > after_lsn``, in order.

        A truncated (crash-interrupted) final line is discarded with a
        warning; corruption anywhere *before* the final line raises
        :class:`WalError` — that indicates real damage, not a torn append.
        """
        scan = self._scan()
        return [record for record in scan.records if record.lsn > after_lsn]

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _header_line(base_lsn: int) -> str:
    header: dict = {"repro_wal": WAL_FORMAT_VERSION}
    if base_lsn:
        header["base_lsn"] = base_lsn
    return json.dumps(header) + "\n"
