"""E14 -- Section 3.2: robustness of distant supervision to noise.

Paper claims made measurable:

* "it generates noisy, imperfect examples ... Machine learning techniques
  are able to exploit redundancy to cope with the noise" -- quality should
  degrade gracefully as KB *error rate* rises, not fall off a cliff;
* incompleteness is expected ("Married is an (incomplete) list") -- quality
  should hold as KB *coverage* drops, because learned features generalize
  from the covered fraction to the rest.

We sweep both knobs on the spouse application and report the F1 curves.
"""

from __future__ import annotations

from conftest import once

from repro.apps import spouse
from repro.corpus import spouse as spouse_corpus
from repro.corpus.base import NoiseConfig
from repro.inference import LearningOptions

RUN_KWARGS = dict(threshold=0.8, holdout_fraction=0.1,
                  learning=LearningOptions(epochs=60, seed=0),
                  num_samples=250, burn_in=40, compute_train_histogram=False)


def run_with_noise(kb_coverage: float, kb_error_rate: float, seed: int = 81):
    corpus = spouse_corpus.generate(
        spouse_corpus.SpouseConfig(
            num_couples=40, num_distractor_pairs=40, num_sibling_pairs=12,
            sentences_per_pair=3,
            noise=NoiseConfig(kb_coverage=kb_coverage,
                              kb_error_rate=kb_error_rate)), seed=seed)
    app = spouse.build(corpus, seed=0)
    result = app.run(**RUN_KWARGS)
    return spouse.evaluate(app, result, corpus)


def test_e14_kb_error_rate_sweep(benchmark, reporter):
    error_rates = [0.0, 0.05, 0.1, 0.2]
    outcome = {}

    def experiment():
        for rate in error_rates:
            outcome[rate] = run_with_noise(kb_coverage=0.5, kb_error_rate=rate)
        return outcome

    once(benchmark, experiment)

    rows = [[f"{rate:.0%}", f"{pr.precision:.3f}", f"{pr.recall:.3f}",
             f"{pr.f1:.3f}"] for rate, pr in outcome.items()]
    reporter.line("E14a / Sec 3.2 -- quality vs distant-supervision error rate")
    reporter.line("paper: learning exploits redundancy to cope with noisy,")
    reporter.line("imperfect examples")
    reporter.line()
    reporter.table(["KB error rate", "P", "R", "F1"], rows)

    clean = outcome[0.0].f1
    # graceful degradation: noticeable noise costs little quality
    assert outcome[0.05].f1 > clean - 0.15
    assert outcome[0.1].f1 > clean - 0.2
    assert outcome[0.2].f1 > 0.5


def test_e14_kb_coverage_sweep(benchmark, reporter):
    coverages = [0.8, 0.5, 0.3, 0.15]
    outcome = {}

    def experiment():
        for coverage in coverages:
            outcome[coverage] = run_with_noise(kb_coverage=coverage,
                                               kb_error_rate=0.02)
        return outcome

    once(benchmark, experiment)

    rows = [[f"{coverage:.0%}", f"{pr.precision:.3f}", f"{pr.recall:.3f}",
             f"{pr.f1:.3f}"] for coverage, pr in outcome.items()]
    reporter.line("E14b / Sec 3.2 -- quality vs KB coverage (incompleteness)")
    reporter.line("paper: the KB is an incomplete list we wish to extend;")
    reporter.line("features learned on the covered slice generalize")
    reporter.line()
    reporter.table(["KB coverage", "P", "R", "F1"], rows)

    # even at low coverage the learned phrases generalize well past the KB
    assert outcome[0.3].f1 > 0.7
    # and extra coverage helps monotonically-ish
    assert outcome[0.8].f1 >= outcome[0.15].f1 - 0.05
