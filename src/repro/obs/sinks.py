"""Pluggable span sinks: where completed traces go.

A sink is anything with ``on_span(span)``; collectors call it once per
completed *root* span, so sinks always receive whole trees.  Three
implementations cover the common cases:

* :class:`InMemorySink` -- keep spans on a list (tests, ad-hoc inspection);
* :class:`JsonlSink` -- one JSON object per root span, append-only, the
  archival format CI uploads as a benchmark artifact;
* :class:`TreePrinterSink` -- human-readable span tree to a stream.
"""

from __future__ import annotations

import json
import sys
from typing import IO

from repro.obs.span import Span


class InMemorySink:
    """Collect root spans on a list."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def on_span(self, span: Span) -> None:
        self.spans.append(span)


class JsonlSink:
    """Append every root span as one JSON line to ``path``.

    Attribute values that are not JSON-serializable are stringified rather
    than dropped, so traces survive arbitrary span attributes.
    """

    def __init__(self, path) -> None:
        self.path = path

    def on_span(self, span: Span) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            json.dump(span.to_dict(), handle, default=str)
            handle.write("\n")


class TreePrinterSink:
    """Print completed span trees to a stream (default stderr)."""

    def __init__(self, stream: IO[str] | None = None,
                 max_depth: int | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.max_depth = max_depth

    def on_span(self, span: Span) -> None:
        print(span.render(max_depth=self.max_depth), file=self.stream)
