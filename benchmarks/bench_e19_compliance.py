"""E19 -- compliance: scan throughput, publish overhead, marginal identity.

The compliance layer's bargain is governance for (almost) free: scanning is
a streaming regex sweep, and publish-time scrubbing is a pure key-relabeling
that must neither slow the serving loop nor perturb inference.  Three
measurements pin that down:

* **scan throughput**: rows/sec of the full detector battery over a
  PII-laden ads store (the ``KBClient.scan()`` audit path);
* **publish overhead**: the same delta stream through a compliance-off and
  a compliance-on ads service.  The asserted <10% overhead ceiling is
  computed from the scrub transform timed in isolation against the
  compliance-off commit stream (the transform is pure, so its isolated
  cost IS its publish cost); the raw on/off wall ratio is also reported,
  but at benchmark scale (~80 ms commits) it carries scheduler noise and
  only a loose sanity ceiling is enforced on it;
* **marginal identity**: the served scrubbed marginals equal the pure
  transform of the served raw marginals — probabilities bit-identical,
  acceptance decisions preserved.

Machine-readable results land in ``results/BENCH_e19_compliance.json`` for
CI to validate.
"""

from __future__ import annotations

from time import perf_counter

from conftest import once, write_json

from repro.apps import ads
from repro.compliance import CompliancePolicy, Scanner, scrub_marginals
from repro.corpus.ads import AdsConfig, generate
from repro.inference import LearningOptions
from repro.serve import KBClient, ServeConfig, add_documents

SCHEMAS = {"AdPhone": ("ad", "phone"), "AdEmail": ("ad", "email")}
SCAN_ADS = 400
SERVE_ADS = 30
NUM_INGEST_BATCHES = 5
DOCS_PER_BATCH = 6
#: sampling-refresh chain length: enough real inference work per commit
#: that the measurement reflects a production publish, where scrubbing
#: (~1 ms of regex + HMAC) rides on tens of ms of refresh
REFRESH_SAMPLES = 800
REFRESH_BURN_IN = 120
OVERHEAD_CEILING = 1.10
WALL_RATIO_CEILING = 1.5                 # loose: guards gross regressions

RUN_KWARGS = dict(threshold=0.7, learning=LearningOptions(epochs=40, seed=0),
                  num_samples=120, burn_in=20)

ANON = CompliancePolicy(enabled=True, default_action="anonymize",
                        min_confidence=0.5)


def measure_scan_throughput():
    """Full-battery scan rate over a PII-laden document store."""
    from repro.datastore import Database

    corpus = generate(AdsConfig(num_ads=SCAN_ADS, forum_posts_per_ad=0.5,
                                pii=True), seed=7)
    db = Database()
    db.create("documents", doc_id="text", content="text")
    db.insert("documents", [(doc.doc_id, doc.content)
                            for doc in corpus.documents])
    scanner = Scanner(ANON)
    started = perf_counter()
    manifest = scanner.scan_database(db)
    seconds = perf_counter() - started
    return {
        "scan_rows": manifest.rows_scanned,
        "scan_seconds": seconds,
        "scan_rows_per_sec": manifest.rows_scanned / seconds,
        "scan_findings": len(manifest),
    }


def delta_batch(index):
    base = (index + 1) * 100
    docs = [(f"ad{base + slot:04d}",
             f"unit {base + slot} open now , $750 . call "
             f"{200 + index}-555-{base + slot:04d} or mail "
             f"host{base + slot}@late.example.net .")
            for slot in range(DOCS_PER_BATCH)]
    return [add_documents(docs)]


def run_serving_arm(tmp_path, tag, policy):
    """Bootstrap an ads service under ``policy``, stream the delta batches,
    and return (commit_seconds, final_marginals, manifest)."""
    corpus = generate(AdsConfig(num_ads=SERVE_ADS, forum_posts_per_ad=0.5,
                                pii=True), seed=7)
    config = ServeConfig(checkpoint_every=0,
                         refresh_samples=REFRESH_SAMPLES,
                         refresh_burn_in=REFRESH_BURN_IN, compliance=policy)
    client = KBClient.create(tmp_path / tag, ads.make_serve_factory(),
                             ads.serve_bootstrap_ops(corpus), config=config,
                             run_kwargs=RUN_KWARGS)
    with client:
        started = perf_counter()
        for index in range(NUM_INGEST_BATCHES):
            client.ingest(delta_batch(index))
        commit_seconds = perf_counter() - started
        snapshot = client.snapshot()
        return (commit_seconds, dict(snapshot.marginals), snapshot.manifest)


def test_e19_compliance(benchmark, reporter, tmp_path):
    results = {}

    def experiment():
        results.update(measure_scan_throughput())

        # interleave the arms and keep each one's best of two, so one-time
        # warm-up (imports, allocator growth) doesn't land on either side
        off_seconds, raw, no_manifest = run_serving_arm(
            tmp_path, "off", CompliancePolicy())
        on_seconds, scrubbed, manifest = run_serving_arm(
            tmp_path, "on", ANON)
        off_seconds = min(off_seconds, run_serving_arm(
            tmp_path, "off2", CompliancePolicy())[0])
        on_seconds = min(on_seconds, run_serving_arm(
            tmp_path, "on2", ANON)[0])
        results["publish_off_seconds"] = off_seconds
        results["publish_on_seconds"] = on_seconds
        results["publish_wall_ratio"] = on_seconds / off_seconds
        results["manifest_reports"] = len(manifest)
        results["manifest_off_absent"] = no_manifest is None

        # the pure transform in isolation: per-publish scrub cost.  The
        # final marginal set is the largest one any publish in the stream
        # scrubbed, so this bounds the per-publish cost from above.
        started = perf_counter()
        expected, _ = scrub_marginals(raw, SCHEMAS, ANON)
        results["scrub_ms_per_publish"] = (perf_counter() - started) * 1000
        publishes = NUM_INGEST_BATCHES + 1       # deltas + bootstrap
        results["publish_overhead_ratio"] = 1 + (
            results["scrub_ms_per_publish"] / 1000 * publishes
            / off_seconds)

        # identity: served scrubbed view == pure transform of raw view
        results["marginal_identity"] = (scrubbed == expected)
        results["probabilities_bit_identical"] = (
            sorted(map(repr, scrubbed.values()))
            == sorted(map(repr, raw.values())))
        threshold = RUN_KWARGS["threshold"]
        raw_accepted = sum(1 for (rel, _v), p in raw.items()
                           if rel == "AdPhone" and p >= threshold)
        scrub_accepted = sum(1 for (rel, _v), p in scrubbed.items()
                             if rel == "AdPhone" and p >= threshold)
        results["acceptance_preserved"] = (raw_accepted == scrub_accepted)
        results["accepted_phones"] = scrub_accepted
        return results

    once(benchmark, experiment)

    reporter.line("E19 -- compliance: scan rate, publish overhead, identity")
    reporter.line()
    reporter.table(
        ["measurement", "value"],
        [["scan throughput",
          f"{results['scan_rows_per_sec']:.0f} rows/s "
          f"({results['scan_rows']} rows, "
          f"{results['scan_findings']} findings)"],
         ["publish stream (compliance off)",
          f"{results['publish_off_seconds']:.2f} s"],
         ["publish stream (compliance on)",
          f"{results['publish_on_seconds']:.2f} s"],
         ["publish wall ratio (noisy)",
          f"{results['publish_wall_ratio']:.3f}x "
          f"(sanity ceiling {WALL_RATIO_CEILING}x)"],
         ["publish overhead (isolated scrub)",
          f"{results['publish_overhead_ratio']:.3f}x "
          f"(ceiling {OVERHEAD_CEILING}x)"],
         ["pure scrub per publish",
          f"{results['scrub_ms_per_publish']:.2f} ms"],
         ["marginals bit-identical", str(results["marginal_identity"])],
         ["acceptance preserved",
          f"{results['acceptance_preserved']} "
          f"({results['accepted_phones']} accepted phones)"]])
    write_json("BENCH_e19_compliance", results)

    assert results["scan_rows_per_sec"] > 0
    assert results["marginal_identity"]
    assert results["probabilities_bit_identical"]
    assert results["acceptance_preserved"]
    assert results["manifest_off_absent"]
    assert results["manifest_reports"] > 0
    assert results["publish_overhead_ratio"] < OVERHEAD_CEILING
    assert results["publish_wall_ratio"] < WALL_RATIO_CEILING
