"""repro.parallel: the shared-memory multiprocess execution layer.

Zero-dependency (stdlib ``multiprocessing`` + numpy) parallelism for the
two hot paths the paper attributes DeepDive's runtimes to:

* **NUMA replica sampling** -- each socket's Gibbs replica chain runs in a
  worker process against a shared-memory mapping of the compiled factor
  graph, with model-averaging rendezvous and a shared marginal accumulator;
* **corpus loading** -- the per-document NLP chain fans out over worker
  processes with an order-preserving merge.

Two execution backends share those contracts:

* the **warm pool** (:class:`WorkerPool`, the default) keeps worker
  processes and shared-memory graph segments alive across calls, so
  repeat dispatches skip process spawn and graph packing; pools are
  shared process-wide through :func:`get_pool` / :func:`acquire_pool`;
* the **cold path** (:func:`run_replicas_parallel`,
  :func:`parallel_preprocess`) spawns per call -- retained as the
  ``pool_warm=False`` escape hatch and as the warm pool's semantics
  reference.

The **adaptive dispatcher** (:func:`decide_replicas`, :func:`decide_map`)
routes calls whose estimated work sits below
``EngineConfig.pool_min_work`` to the sequential path, where per-call
dispatch overhead would otherwise dominate.

All of it is driven by the ``workers`` knob on
:class:`~repro.obs.config.EngineConfig`; ``workers=0`` keeps the
sequential reference paths, which every parallel result is bit-identical
to.  Any worker crash or timeout falls back to those paths with a
warning -- never a hang.
"""

from repro.parallel.corpus import parallel_preprocess
from repro.parallel.dispatch import (DispatchDecision, decide_map,
                                     decide_replicas, estimate_map_work,
                                     estimate_replica_work)
from repro.parallel.pool import (DEFAULT_TIMEOUT, chunk_slices, fanout_map,
                                 resolve_mode)
from repro.parallel.registry import (acquire_pool, effective_cpus, get_pool,
                                     pool_pins, release_pool, shutdown_pools)
from repro.parallel.replicas import ReplicaOutcome, run_replicas_parallel
from repro.parallel.shm import (AttachedPack, PackHandle, SharedArrayPack,
                                attach_compiled, share_compiled)
from repro.parallel.warm import WorkerPool

__all__ = [
    "AttachedPack",
    "DEFAULT_TIMEOUT",
    "DispatchDecision",
    "PackHandle",
    "ReplicaOutcome",
    "SharedArrayPack",
    "WorkerPool",
    "acquire_pool",
    "attach_compiled",
    "chunk_slices",
    "decide_map",
    "decide_replicas",
    "effective_cpus",
    "estimate_map_work",
    "estimate_replica_work",
    "fanout_map",
    "get_pool",
    "parallel_preprocess",
    "pool_pins",
    "release_pool",
    "resolve_mode",
    "run_replicas_parallel",
    "share_compiled",
    "shutdown_pools",
]
