"""Failure injection: UDFs that raise must surface debuggable errors."""

import pytest

from repro.datastore import Database
from repro.ddlog import DDlogProgram, compile_body
from repro.ddlog.compiler import UdfError
from repro.grounding import Grounder


def broken_program(kind: str):
    program = DDlogProgram.parse("""
    R(a text).
    Q?(a text).
    Q(a) :- R(a), [check(a)] weight = feats(a).
    """)
    if kind == "condition":
        program.register_udf("check",
                             lambda a: (_ for _ in ()).throw(ValueError("boom")),
                             returns="bool")
        program.register_udf("feats", lambda a: a)
    else:
        program.register_udf("check", lambda a: True, returns="bool")
        program.register_udf("feats",
                             lambda a: (_ for _ in ()).throw(KeyError("boom")))
    db = Database()
    program.create_relations(db)
    db.insert("R", [("payload_row",)])
    return program, db


class TestUdfErrors:
    def test_condition_udf_error_names_the_udf(self):
        program, db = broken_program("condition")
        with pytest.raises(UdfError, match="check"):
            Grounder(program, db)

    def test_condition_udf_error_shows_arguments(self):
        program, db = broken_program("condition")
        with pytest.raises(UdfError, match="payload_row"):
            Grounder(program, db)

    def test_weight_udf_error_names_the_udf(self):
        program, db = broken_program("weight")
        with pytest.raises(UdfError, match="feats"):
            Grounder(program, db)

    def test_original_exception_chained(self):
        program, db = broken_program("weight")
        with pytest.raises(UdfError) as excinfo:
            Grounder(program, db)
        assert isinstance(excinfo.value.original, KeyError)

    def test_binding_udf_error(self):
        program = DDlogProgram.parse("""
        R(a text).
        Q(a text, b text).
        Q(a, b) :- R(a), b = mangle(a).
        """)
        program.register_udf("mangle",
                             lambda a: (_ for _ in ()).throw(TypeError("nope")))
        db = Database()
        program.create_relations(db)
        db.insert("R", [("x",)])
        rule = program.derivation_rules[0]
        plan = compile_body(rule, program.declarations, program.udfs)
        with pytest.raises(UdfError, match="mangle"):
            plan.evaluate(db)

    def test_healthy_udfs_unaffected(self):
        program = DDlogProgram.parse("""
        R(a text).
        Q?(a text).
        Q(a) :- R(a) weight = feats(a).
        """)
        program.register_udf("feats", lambda a: f"f:{a}")
        db = Database()
        program.create_relations(db)
        db.insert("R", [("x",)])
        grounder = Grounder(program, db)
        assert grounder.graph.num_factors == 1
