"""Gibbs sampling over compiled factor graphs.

"Like many other systems, DeepDive uses Gibbs sampling to estimate the
marginal probability of every tuple in the database" (Section 4.2).  The
sampler exploits the compiled layout's split between unary and general
factors:

* variables touched *only* by unary factors have conditionals independent of
  the rest of the world, so an entire sweep over them is two vectorized numpy
  operations;
* variables with general factors are scheduled by the compiled graph's
  **chromatic coloring** (two variables share a color only if they share no
  general factor), so each color block is sampled simultaneously with a
  handful of vectorized gathers -- the DimmWitted column-to-row access
  pattern, executed one conflict-free block at a time.

Blocked sampling preserves the Gibbs stationary distribution because the
conditional of a variable never depends on same-color variables (they share
no factor).  For the same reason, sampling a color block simultaneously is
*bit-identical* to sampling its variables sequentially with the same uniform
draws -- which is what :meth:`GibbsSampler.sweep_reference` (the retained
scalar engine) does, and what the equivalence tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro import obs
from repro.factorgraph.compiled import ColorBlock, CompiledGraph
from repro.factorgraph.factor_functions import FactorFunction
from repro.obs.config import VALID_ENGINES as ENGINES
from repro.obs.config import EngineConfig


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic function.

    Evaluated with masked branches (never ``np.where`` over both branches,
    which would compute ``exp`` of out-of-range arguments and raise spurious
    overflow warnings); clipping at +/-500 keeps even the taken branch away
    from overflow and underflow, so the function is silent under
    ``np.errstate(all="raise")``.
    """
    scalar = np.isscalar(x) or np.ndim(x) == 0
    arr = np.atleast_1d(np.asarray(x, dtype=np.float64))
    out = np.empty_like(arr)
    positive = arr >= 0
    negative = ~positive
    out[positive] = 1.0 / (1.0 + np.exp(-np.minimum(arr[positive], 500.0)))
    exp_x = np.exp(np.maximum(arr[negative], -500.0))
    out[negative] = exp_x / (1.0 + exp_x)
    return float(out[0]) if scalar else out


def _sigmoid_scalar(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-min(x, 500.0)))
    e = math.exp(max(x, -500.0))
    return e / (1.0 + e)


@dataclass
class MarginalResult:
    """Marginal estimates plus the bookkeeping error analysis wants."""

    marginals: np.ndarray          # P(v = 1) per compiled variable index
    num_samples: int
    burn_in: int

    def by_key(self, compiled: CompiledGraph) -> dict:
        """Map variable key -> marginal probability."""
        return {key: float(p) for key, p in zip(compiled.var_keys, self.marginals)}


class GibbsSampler:
    """Chromatic blocked Gibbs sampler with evidence clamping.

    ``clamp_evidence=True`` (the learner's clamped chain and the usual
    inference configuration when evidence should be respected) pins evidence
    variables to their labels; ``False`` resamples everything (the learner's
    free chain).

    ``engine`` selects the sweep implementation: ``"chromatic"`` (vectorized
    color blocks, the default) or ``"reference"`` (the scalar per-variable
    loop, kept for equivalence testing).  Both visit dependent variables in
    the same chromatic order and consume the RNG identically, so with equal
    seeds they produce bit-identical chains.  When ``engine`` is ``None``
    the sampler takes it from ``config`` (an :class:`EngineConfig`), and
    failing that uses ``"chromatic"``.
    """

    def __init__(self, compiled: CompiledGraph, seed: int = 0,
                 clamp_evidence: bool = True, engine: str | None = None,
                 config: EngineConfig | None = None) -> None:
        if engine is None:
            engine = config.gibbs_engine if config is not None else "chromatic"
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.compiled = compiled
        self.engine = engine
        self.rng = np.random.default_rng(seed)
        self.clamped = compiled.is_evidence if clamp_evidence else np.zeros(
            compiled.num_variables, dtype=bool)
        has_general = compiled.vf_indptr[1:] > compiled.vf_indptr[:-1]
        self._independent = ~has_general & ~self.clamped
        self._blocks = compiled.color_blocks(has_general & ~self.clamped)
        self._dependent = (np.concatenate([b.variables for b in self._blocks])
                           if self._blocks else np.zeros(0, dtype=np.int64))
        self._reference_adjacency: list[list[tuple]] | None = None
        self._unary_deltas = compiled.unary_deltas()
        self._block_weights = self._compute_block_weights()
        self._independent_probs = self._compute_independent_probs()

    def _compute_block_weights(self) -> list[np.ndarray]:
        """Signed per-slot weights, cached until :meth:`refresh_weights`."""
        weights = self.compiled.weight_values
        return [block.slot_sign * weights[block.slot_weight]
                for block in self._blocks]

    def _prepare_reference_adjacency(self) -> list[list[tuple]]:
        """Python-native per-variable factor lists for the scalar engine.

        Built lazily (only ``sweep_reference`` needs it) and in the same
        chromatic variable order the vectorized engine uses, so the two
        engines stay step-for-step comparable.
        """
        compiled = self.compiled
        adjacency: list[list[tuple]] = []
        for var in self._dependent:
            factors = []
            for slot in range(compiled.vf_indptr[var], compiled.vf_indptr[var + 1]):
                fi = int(compiled.vf_factors[slot])
                lo, hi = int(compiled.fv_indptr[fi]), int(compiled.fv_indptr[fi + 1])
                members = tuple(int(v) for v in compiled.fv_vars[lo:hi])
                negated = tuple(bool(n) for n in compiled.fv_negated[lo:hi])
                position = members.index(int(var))
                factors.append((int(compiled.general_function[fi]),
                                int(compiled.general_weight[fi]),
                                members, negated, position))
            adjacency.append(factors)
        return adjacency

    def _compute_independent_probs(self) -> np.ndarray:
        return np.atleast_1d(sigmoid(self._unary_deltas[self._independent]))

    # ----------------------------------------------------------------- state
    def initial_assignment(self) -> np.ndarray:
        """Random initial world with evidence variables at their labels."""
        assignment = self.rng.random(self.compiled.num_variables) < 0.5
        assignment[self.compiled.is_evidence] = self.compiled.evidence_values[
            self.compiled.is_evidence]
        return assignment

    def refresh_weights(self) -> None:
        """Recompute cached weight gathers after the learner updates weights."""
        self._unary_deltas = self.compiled.unary_deltas()
        self._block_weights = self._compute_block_weights()
        self._independent_probs = self._compute_independent_probs()

    # ----------------------------------------------------------------- sweeps
    def sweep(self, assignment: np.ndarray) -> int:
        """One full Gibbs sweep in place; returns variables sampled."""
        if self.engine == "reference":
            return self.sweep_reference(assignment)
        return self.sweep_chromatic(assignment)

    def _sweep_independent(self, assignment: np.ndarray) -> int:
        independent = self._independent
        n_independent = len(self._independent_probs)
        if n_independent:
            assignment[independent] = (
                self.rng.random(n_independent) < self._independent_probs)
        return n_independent

    def sweep_chromatic(self, assignment: np.ndarray) -> int:
        """Vectorized sweep: the unary-only pass plus one pass per color."""
        if obs.enabled():
            return self._sweep_chromatic_traced(assignment)
        sampled = self._sweep_independent(assignment)
        if len(self._dependent):
            uniforms = self.rng.random(len(self._dependent))
            offset = 0
            for block, signed_weights in zip(self._blocks, self._block_weights):
                n = len(block.variables)
                deltas = self._block_deltas(block, signed_weights, assignment)
                assignment[block.variables] = (
                    uniforms[offset:offset + n] < sigmoid(deltas))
                offset += n
            sampled += len(self._dependent)
        return sampled

    def _sweep_chromatic_traced(self, assignment: np.ndarray) -> int:
        """The chromatic sweep with per-color timing and flip statistics.

        Identical arithmetic and RNG consumption to the fast path; only
        entered when a collector is installed, so the probe cost never taxes
        untraced runs.  Records one timing and one flip-fraction observation
        per color per sweep -- histograms, not spans, because a run makes
        thousands of color passes.
        """
        sampled = self._sweep_independent(assignment)
        if len(self._dependent):
            uniforms = self.rng.random(len(self._dependent))
            offset = 0
            for color, (block, signed_weights) in enumerate(
                    zip(self._blocks, self._block_weights)):
                started = perf_counter()
                n = len(block.variables)
                deltas = self._block_deltas(block, signed_weights, assignment)
                before = assignment[block.variables]
                sampled_values = uniforms[offset:offset + n] < sigmoid(deltas)
                flips = int(np.count_nonzero(before != sampled_values))
                assignment[block.variables] = sampled_values
                offset += n
                obs.observe("gibbs.color_sweep_seconds",
                            perf_counter() - started, color=color)
                obs.observe("gibbs.flip_fraction", flips / max(n, 1),
                            color=color)
            sampled += len(self._dependent)
        obs.count("gibbs.sweeps")
        obs.count("gibbs.samples", sampled)
        return sampled

    def _block_deltas(self, block: ColorBlock, signed_weights: np.ndarray,
                      assignment: np.ndarray) -> np.ndarray:
        """Flip deltas (log-odds) for every variable of one color block.

        For each slot the factor's contribution to flipping the variable's
        *literal* 0 -> 1 depends only on the other members' literals:

        * AND, and IMPLY when the variable is the head: +1 iff all others
          are true;
        * OR: +1 iff no other is true;
        * EQUAL: +1 if the other literal is true else -1;
        * IMPLY body literal: raising it can only violate the implication,
          so -1 iff the remaining body literals hold and the head is false.

        A negated self-literal mirrors the contribution (``slot_sign``,
        folded into ``signed_weights``).
        """
        literals = assignment[block.edge_vars] ^ block.edge_negated
        true_counts = np.add.reduceat(
            literals.astype(np.int64), block.edge_indptr[:-1])
        others_true = (true_counts[block.slot_factor]
                       - literals[block.slot_edge])
        contribution = np.zeros(block.num_slots, dtype=np.float64)

        sel = block.slots_all_others
        if len(sel):
            contribution[sel] = (others_true[sel] == block.slot_arity[sel] - 1)
        sel = block.slots_none_others
        if len(sel):
            contribution[sel] = (others_true[sel] == 0)
        sel = block.slots_equal
        if len(sel):
            contribution[sel] = 2.0 * others_true[sel] - 1.0
        sel = block.slots_imply_body
        if len(sel):
            head = literals[block.imply_head_edge]
            body_others = others_true[sel] - head
            contribution[sel] = np.where(
                (body_others == block.slot_arity[sel] - 2) & ~head, -1.0, 0.0)

        deltas = np.bincount(block.slot_var,
                             weights=contribution * signed_weights,
                             minlength=len(block.variables))
        return self._unary_deltas[block.variables] + deltas

    def sweep_reference(self, assignment: np.ndarray) -> int:
        """Scalar per-variable sweep (the pre-chromatic engine), retained as
        the correctness reference: identical RNG stream, identical chromatic
        visit order, sequential conditionals."""
        sampled = self._sweep_independent(assignment)
        if len(self._dependent):
            if self._reference_adjacency is None:
                self._reference_adjacency = self._prepare_reference_adjacency()
            uniforms = self.rng.random(len(self._dependent))
            unary = self._unary_deltas
            weights = self.compiled.weight_values
            imply = int(FactorFunction.IMPLY)
            conj = int(FactorFunction.AND)
            disj = int(FactorFunction.OR)
            for i, var in enumerate(self._dependent):
                var = int(var)
                delta = float(unary[var])
                for function, weight_index, members, negated, position \
                        in self._reference_adjacency[i]:
                    self_negated = negated[position]
                    others = [bool(assignment[m]) != negated[j]
                              for j, m in enumerate(members) if j != position]
                    if function == imply:
                        if position == len(members) - 1:     # self is the head
                            contribution = 1.0 if all(others) else 0.0
                        else:
                            head = others[-1]
                            # raising a body literal can only violate
                            contribution = -1.0 if (all(others[:-1])
                                                    and not head) else 0.0
                    elif function == conj:
                        contribution = 1.0 if all(others) else 0.0
                    elif function == disj:
                        contribution = 1.0 if not any(others) else 0.0
                    else:                                     # EQUAL
                        contribution = 1.0 if others[0] else -1.0
                    if self_negated:
                        contribution = -contribution
                    delta += weights[weight_index] * contribution
                assignment[var] = uniforms[i] < _sigmoid_scalar(delta)
            sampled += len(self._dependent)
        return sampled

    # -------------------------------------------------------------- inference
    def marginals(self, num_samples: int = 100, burn_in: int = 20,
                  assignment: np.ndarray | None = None) -> MarginalResult:
        """Estimate marginals from ``num_samples`` post-burn-in sweeps.

        Evidence variables (when clamped) report their label as probability
        0/1, matching DeepDive's output convention.
        """
        with obs.span("inference.marginals", engine=self.engine,
                      colors=len(self._blocks),
                      variables=self.compiled.num_variables,
                      num_samples=num_samples, burn_in=burn_in):
            if assignment is None:
                assignment = self.initial_assignment()
            for _ in range(burn_in):
                self.sweep(assignment)
            totals = np.zeros(self.compiled.num_variables, dtype=np.float64)
            for _ in range(num_samples):
                self.sweep(assignment)
                totals += assignment
            marginals = totals / max(num_samples, 1)
            marginals[self.clamped] = self.compiled.evidence_values[self.clamped]
        return MarginalResult(marginals=marginals, num_samples=num_samples, burn_in=burn_in)
