"""Candidate-generation extractors: Python UDFs over preprocessed sentences.

"In candidate generation, DeepDive applies a user-defined function (UDF) to
each document in the input corpus to yield candidate extractions...  The
candidate generation step is thus intended to be high-recall, low-precision"
(Section 3).  An extractor maps one :class:`~repro.nlp.pipeline.Sentence` to
rows of a declared base relation; the application object runs every
registered extractor over every new sentence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.nlp.pipeline import Sentence

from repro.nlp.pipeline import Document

ExtractorFn = Callable[[Sentence], Iterable[tuple]]
DocumentExtractorFn = Callable[[Document], dict[str, list[tuple]]]


@dataclass(frozen=True)
class CandidateExtractor:
    """One registered extractor: target relation + the sentence UDF."""

    relation: str
    fn: ExtractorFn
    name: str = ""

    def rows(self, sentence: Sentence) -> list[tuple]:
        """Run the UDF, normalizing its output to a list of tuples."""
        produced = self.fn(sentence)
        return [tuple(row) for row in produced] if produced else []


@dataclass(frozen=True)
class DocumentExtractor:
    """A whole-document extractor emitting rows for several relations.

    Used for non-sentence modalities -- HTML tables, document metadata --
    where the unit of extraction is not a sentence.  The UDF returns
    ``{relation: [rows...]}``.
    """

    fn: DocumentExtractorFn
    name: str = ""

    def rows(self, doc: Document) -> dict[str, list[tuple]]:
        produced = self.fn(doc) or {}
        return {relation: [tuple(r) for r in rows]
                for relation, rows in produced.items() if rows}


def run_extractors(extractors: Iterable[CandidateExtractor],
                   sentences: Iterable[Sentence]) -> dict[str, list[tuple]]:
    """Apply every extractor to every sentence; rows grouped by relation."""
    rows: dict[str, list[tuple]] = {}
    sentence_list = list(sentences)
    for extractor in extractors:
        bucket = rows.setdefault(extractor.relation, [])
        for sentence in sentence_list:
            bucket.extend(extractor.rows(sentence))
    return {relation: rows_ for relation, rows_ in rows.items() if rows_}


def run_document_extractors(extractors: Iterable[DocumentExtractor],
                            documents: Iterable[Document],
                            ) -> dict[str, list[tuple]]:
    """Apply every document extractor to every document."""
    rows: dict[str, list[tuple]] = {}
    document_list = list(documents)
    for extractor in extractors:
        for doc in document_list:
            for relation, produced in extractor.rows(doc).items():
                rows.setdefault(relation, []).extend(produced)
    return rows
