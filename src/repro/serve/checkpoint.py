"""Checkpoints: periodic durable images of the whole serving state.

A checkpoint bounds recovery time (replay = WAL tail only, not the full
history) and is the only way learned weights survive a restart — the
factor-graph payload embeds them, while re-grounding alone would reset every
weight to its initial value.

One checkpoint file carries, as a single JSON document:

* the datastore — either inline (``datastore.io`` dump, mutation counters
  included) or, the v2 default, a *segment manifest* referencing
  content-addressed segment files in the manager's ``segments/`` directory;
* the factor graph (``factorgraph.serialize`` v2, id-exact);
* the grounder's bookkeeping (:meth:`Grounder.state_dict`);
* the inference state (chain world + marginals, mean-field parameters);
* the publish cursor (``lsn``, snapshot version, threshold).

The segment manifest is what makes checkpoints O(delta): relation data is
sealed once into immutable segment files (hard-linked straight from a
:class:`~repro.datastore.segments.SegmentedRelation`'s own directory when
the filesystem allows), and a relation whose mutation version hasn't moved
since the last save is re-referenced without re-encoding a single row.
Retention prunes segment files by *refcount*: a segment is deleted only
when no retained checkpoint's manifest references its content hash.

Writes are atomic (temp file + ``os.replace``) so a crash mid-checkpoint
leaves the previous checkpoint intact; loads verify a format version and
refuse anything unknown rather than guessing.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import shutil
from dataclasses import dataclass

from repro import obs

#: v2 adds the segment-manifest database layout (v1 inline databases load
#: unchanged).
CHECKPOINT_FORMAT_VERSION = 2
SUPPORTED_CHECKPOINT_VERSIONS = (1, 2)

SEGMENTS_DIRNAME = "segments"

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})\.json$")
_SEGMENT_RE = re.compile(r"^seg-([0-9a-f]{40})\.seg$")


class CheckpointError(ValueError):
    """Raised for unreadable or unsupported checkpoint payloads."""


@dataclass(frozen=True)
class CheckpointInfo:
    """A checkpoint on disk: its path and the LSN it covers."""

    path: pathlib.Path
    lsn: int


class CheckpointManager:
    """Save/load/prune checkpoints in one service directory."""

    def __init__(self, directory: str | os.PathLike,
                 keep: int = 2) -> None:
        self.directory = pathlib.Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)
        #: relation name -> (mutation_version, manifest entries) from the
        #: last save: an unchanged relation is re-referenced, not re-encoded.
        self._seal_cache: dict[str, tuple[int, dict]] = {}
        #: bytes physically written by the most recent :meth:`save` (segment
        #: files actually created + the checkpoint JSON; hard-linked or
        #: cache-hit segments contribute nothing).
        self.last_save_bytes = 0

    @property
    def segments_dir(self) -> pathlib.Path:
        return self.directory / SEGMENTS_DIRNAME

    # ---------------------------------------------------------------- saving
    def save(self, payload: dict, lsn: int, database=None) -> CheckpointInfo:
        """Atomically persist ``payload`` as the checkpoint covering ``lsn``.

        With ``database`` (a :class:`~repro.datastore.database.Database`),
        relation data is sealed into content-addressed segment files and the
        checkpoint stores only a manifest of references — the payload must
        then omit its inline ``"database"`` entry (see
        ``ServeEngine.checkpoint_payload(inline_database=False)``).

        The payload is stamped with the format version; older checkpoints
        beyond the retention count are pruned afterwards (never before — a
        failed save must not eat the previous checkpoint).
        """
        document = dict(payload)
        document["format"] = CHECKPOINT_FORMAT_VERSION
        document["lsn"] = lsn
        written = 0
        if database is not None:
            if "database" in document:
                raise ValueError(
                    "payload already carries an inline database; build it "
                    "with inline_database=False when sealing segments")
            manifest, written = self._seal_database(database)
            document["database"] = {"segment_manifest": manifest}
        elif "database" not in document:
            raise ValueError("checkpoint payload has no database: pass "
                             "database= or include an inline dump")
        path = self.directory / f"checkpoint-{lsn:012d}.json"
        temp = path.with_suffix(".json.tmp")
        if database is not None:
            self._write_refs_sidecar(lsn, document["database"]
                                     ["segment_manifest"])
        with open(temp, "w", encoding="utf-8") as stream:
            json.dump(document, stream)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp, path)
        written += path.stat().st_size
        self.last_save_bytes = written
        if obs.enabled():
            obs.observe("serve.checkpoint.bytes_written", written)
        self.prune()
        return CheckpointInfo(path, lsn)

    def _seal_database(self, database) -> tuple[dict, int]:
        """Seal every relation to segment files; return (manifest, bytes).

        Segments already on disk — whether from a previous checkpoint
        (content-address collision), the seal cache, or a hard-linkable
        :class:`SegmentedRelation` directory — cost nothing to reference.
        """
        from repro.datastore import io as dio
        from repro.datastore.segments import (SegmentedRelation, segment_path,
                                              write_segment)

        self.segments_dir.mkdir(parents=True, exist_ok=True)
        manifest: dict[str, dict] = {}
        written = 0
        for name in database.names():
            relation = database[name]
            cached = self._seal_cache.get(name)
            if (cached is not None
                    and cached[0] == relation.mutation_version
                    and all(segment_path(self.segments_dir,
                                         ref["digest"]).exists()
                            for ref in cached[1]["segments"])):
                manifest[name] = cached[1]
                continue
            refs = []
            if isinstance(relation, SegmentedRelation):
                relation.flush()
                for ref in relation.segment_refs:
                    target = segment_path(self.segments_dir, ref.digest)
                    if not target.exists():
                        written += self._adopt_segment(
                            segment_path(relation.directory, ref.digest),
                            target)
                    refs.append(ref.to_dict())
            else:
                existing = {path.name for path in self.segments_dir.iterdir()}
                for store in dio._relation_stores(relation):
                    ref = write_segment(self.segments_dir,
                                        store.codes, store.counts,
                                        store.pool.values)
                    refs.append(ref.to_dict())
                    if ref.filename not in existing:
                        written += ref.nbytes
            entry = {
                "schema": [[c.name, c.type.value]
                           for c in relation.schema.columns],
                "mutation_version": relation.mutation_version,
                "segments": refs,
            }
            manifest[name] = entry
            self._seal_cache[name] = (relation.mutation_version, entry)
        return manifest, written

    @staticmethod
    def _adopt_segment(source: pathlib.Path, target: pathlib.Path) -> int:
        """Hard-link ``source`` into the segments dir (copy across devices).

        Returns bytes physically written (0 for a link: the data already
        exists; the link shares it).
        """
        try:
            os.link(source, target)
            return 0
        except FileExistsError:
            return 0
        except OSError:
            temp = target.with_name(target.name + f".tmp-{os.getpid()}")
            shutil.copyfile(source, temp)
            os.replace(temp, target)
            return target.stat().st_size

    def _write_refs_sidecar(self, lsn: int, manifest: dict) -> None:
        """Record the segment digests this checkpoint references.

        The sidecar lets :meth:`prune` refcount segments without parsing
        whole checkpoint documents.  Its name doesn't match the checkpoint
        pattern, so it never shows up as a checkpoint itself.
        """
        digests = sorted({ref["digest"] for entry in manifest.values()
                          for ref in entry["segments"]})
        path = self._refs_path(lsn)
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "w", encoding="utf-8") as stream:
            json.dump({"lsn": lsn, "digests": digests}, stream)
        os.replace(temp, path)

    def _refs_path(self, lsn: int) -> pathlib.Path:
        return self.directory / f"checkpoint-{lsn:012d}.refs.json"

    def prune(self) -> list[pathlib.Path]:
        """Delete all but the newest ``keep`` checkpoints; returns removals.

        Segment files are garbage-collected by refcount: one survives as
        long as *any* retained checkpoint's manifest references its digest,
        so every retained checkpoint stays fully restorable.
        """
        removed = []
        retained = self.list()
        if self.keep:
            for info in retained[:-self.keep]:
                info.path.unlink(missing_ok=True)
                self._refs_path(info.lsn).unlink(missing_ok=True)
                removed.append(info.path)
            retained = retained[-self.keep:]
        removed.extend(self._collect_segments(retained))
        return removed

    def _collect_segments(self, retained: list[CheckpointInfo],
                          ) -> list[pathlib.Path]:
        """Delete segment files no retained checkpoint references."""
        if not self.segments_dir.is_dir():
            return []
        referenced: set[str] = set()
        for info in retained:
            refs_path = self._refs_path(info.lsn)
            try:
                refs = json.loads(refs_path.read_text(encoding="utf-8"))
                referenced.update(refs["digests"])
                continue
            except (OSError, json.JSONDecodeError, KeyError):
                pass
            # no sidecar (or unreadable): fall back to the document itself;
            # an inline-database checkpoint references no segments
            try:
                payload = json.loads(info.path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                # unreadable checkpoint: be conservative, GC nothing
                return []
            manifest = (payload.get("database") or {}).get("segment_manifest")
            for entry in (manifest or {}).values():
                referenced.update(ref["digest"] for ref in entry["segments"])
        removed = []
        for path in self.segments_dir.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match and match.group(1) not in referenced:
                path.unlink(missing_ok=True)
                removed.append(path)
        return removed

    # --------------------------------------------------------------- loading
    def list(self) -> list[CheckpointInfo]:
        """Checkpoints on disk, oldest first."""
        found = []
        for path in self.directory.iterdir():
            match = _CHECKPOINT_RE.match(path.name)
            if match:
                found.append(CheckpointInfo(path, int(match.group(1))))
        return sorted(found, key=lambda info: info.lsn)

    def latest(self) -> CheckpointInfo | None:
        """The newest checkpoint, or ``None`` for a fresh directory."""
        checkpoints = self.list()
        return checkpoints[-1] if checkpoints else None

    def load(self, info: CheckpointInfo | None = None) -> dict:
        """Read and validate a checkpoint payload (default: the latest).

        Manifest-style databases are rehydrated here into an inline
        ``datastore.io`` v3 dict (codes loaded in bulk from the referenced
        segment files), so consumers see one payload shape either way.
        """
        if info is None:
            info = self.latest()
            if info is None:
                raise CheckpointError(f"no checkpoint in {self.directory}")
        try:
            with open(info.path, encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"unreadable checkpoint {info.path}: {error}") from None
        version = payload.get("format")
        if version not in SUPPORTED_CHECKPOINT_VERSIONS:
            raise CheckpointError(
                f"unsupported checkpoint format {version!r} in {info.path}; "
                f"this build reads versions {SUPPORTED_CHECKPOINT_VERSIONS}")
        if payload.get("lsn") != info.lsn:
            raise CheckpointError(
                f"checkpoint {info.path} claims lsn {payload.get('lsn')!r} "
                f"but its filename says {info.lsn}")
        manifest = (payload.get("database") or {}).get("segment_manifest")
        if manifest is not None:
            payload["database"] = self._rehydrate(manifest, info)
        return payload

    def load_database(self, info: CheckpointInfo | None = None):
        """The datastore of a checkpoint as a live ``Database``.

        A read-only convenience for tools that want the relations without
        replaying the engine (shard rebalance reads each shard's ingested
        rows this way); defaults to the latest checkpoint.
        """
        from repro.datastore.io import database_from_dict

        payload = self.load(info)
        return database_from_dict(payload["database"])

    def _rehydrate(self, manifest: dict, info: CheckpointInfo) -> dict:
        """A segment manifest as a ``datastore.io`` v3 database dict."""
        from repro.datastore.segments import (SegmentError, segment_path,
                                              open_segment)

        relations: dict[str, dict] = {}
        for name, entry in manifest.items():
            parts = []
            for ref in entry["segments"]:
                path = segment_path(self.segments_dir, ref["digest"])
                try:
                    data = open_segment(path)
                except SegmentError as error:
                    raise CheckpointError(
                        f"checkpoint {info.path} references segment "
                        f"{ref['digest']} but it cannot be read: {error}"
                    ) from None
                parts.append({"pool": data.pool_values,
                              "codes": data.codes,
                              "counts": data.counts})
            relations[name] = {
                "schema": entry["schema"],
                "mutation_version": entry["mutation_version"],
                "parts": parts,
            }
        return {"version": 3, "relations": relations}
