"""NLP preprocessing substrate: HTML stripping, sentence splitting,
tokenization, POS tagging, chunking, and mention-span utilities.

This stands in for the Stanford CoreNLP pipeline DeepDive runs at load time;
the output contract is identical: one sentence per datastore row, carrying
token and POS markup.
"""

from repro.nlp.chunker import Chunk, chunk, noun_phrases
from repro.nlp.htmlstrip import strip_html
from repro.nlp.mentions import (Span, parse_mention_id, phrase_between,
                                pos_window, token_distance, window_after,
                                window_before)
from repro.nlp.pipeline import (DOCUMENT_SCHEMA, SENTENCE_SCHEMA, Document,
                                Sentence, load_corpus, preprocess_corpus,
                                preprocess_document, sentence_from_row,
                                sentence_row)
from repro.nlp.pos import tag, tag_token
from repro.nlp.sentences import split_sentences
from repro.nlp.tokenize import Token, token_texts, tokenize

__all__ = [
    "Chunk",
    "DOCUMENT_SCHEMA",
    "Document",
    "SENTENCE_SCHEMA",
    "Sentence",
    "Span",
    "Token",
    "chunk",
    "load_corpus",
    "noun_phrases",
    "parse_mention_id",
    "phrase_between",
    "pos_window",
    "preprocess_corpus",
    "preprocess_document",
    "sentence_from_row",
    "sentence_row",
    "split_sentences",
    "strip_html",
    "tag",
    "tag_token",
    "token_distance",
    "token_texts",
    "tokenize",
    "window_after",
    "window_before",
]
