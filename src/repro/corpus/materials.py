"""The materials-science corpus: semiconductor formula-property extraction.

Models Section 6.3 (with Toshiba): build the missing "handbook of
semiconductor materials" -- ``(formula, property, value)`` triples like
electron mobility and band gap -- from research prose.  Distractor numbers
(temperatures, years, sample counts) appear in the same sentences, which is
what makes naive numeric extraction fail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.base import GeneratedCorpus, NoiseConfig, apply_typo
from repro.nlp.pipeline import Document

PROPERTY_TEMPLATES = {
    "electron_mobility": [
        "The electron mobility of {f} reached {v} cm2/Vs at room temperature .",
        "{f} exhibits an electron mobility of {v} cm2/Vs .",
        "We measured a field-effect mobility of {v} cm2/Vs for {f} films .",
    ],
    "band_gap": [
        "The band gap of {f} is {v} eV .",
        "{f} has a direct band gap of {v} eV .",
        "Optical absorption yields a {v} eV gap for {f} .",
    ],
}

DISTRACTOR_TEMPLATES = [
    "The {f} samples were annealed at {v} degrees for two hours .",
    "A total of {v} {f} devices were fabricated in 2014 .",
    "The {f} wafer measured {v} mm across .",
]

PROPERTY_RANGES = {
    "electron_mobility": (100, 10000),
    "band_gap": (0.5, 6.0),
}

ELEMENTS = ["Ga", "As", "In", "P", "Al", "N", "Zn", "O", "Cd", "Te", "Si",
            "Ge", "Sn", "S", "Se", "Sb", "Mg", "C", "B", "Hg"]


PROPERTY_LABELS = {
    "electron_mobility": ("electron mobility", "cm2/Vs"),
    "band_gap": ("band gap", "eV"),
}

# Measurement tables: the paper's second dark-data modality.  A fraction of
# materials report their numbers in an HTML table instead of prose.
TABLE_TEMPLATE = """
<p>Summary of measured transport properties.</p>
<table>
  <tr><th>Material</th><th>{label} ( {unit} )</th><th>anneal temperature ( C )</th></tr>
  <tr><td>{f}</td><td>{v}</td><td>{anneal}</td></tr>
</table>
"""


@dataclass(frozen=True)
class MaterialsConfig:
    """Size and noise parameters for the materials corpus.

    ``table_fraction`` of the materials report their measurement in an HTML
    table (with a distractor row) rather than prose.
    """

    num_materials: int = 30
    distractors_per_material: int = 1
    table_fraction: float = 0.0
    noise: NoiseConfig = NoiseConfig()


def _formulas(count: int, rng: np.random.Generator) -> list[str]:
    formulas: list[str] = []
    seen: set[str] = set()
    while len(formulas) < count:
        a, b = rng.choice(len(ELEMENTS), size=2, replace=False)
        formula = ELEMENTS[int(a)] + ELEMENTS[int(b)]
        if formula not in seen:
            seen.add(formula)
            formulas.append(formula)
    return formulas


def generate(config: MaterialsConfig = MaterialsConfig(), seed: int = 0,
             ) -> GeneratedCorpus:
    """Generate the materials corpus with numeric ground truth."""
    rng = np.random.default_rng(seed)
    formulas = _formulas(config.num_materials, rng)
    documents: list[Document] = []
    truth: set[tuple] = set()
    handbook_kb: list[tuple] = []

    for i, formula in enumerate(formulas):
        prop = "electron_mobility" if i % 2 == 0 else "band_gap"
        lo, hi = PROPERTY_RANGES[prop]
        if prop == "electron_mobility":
            value = float(int(rng.uniform(lo, hi)))
        else:
            value = round(float(rng.uniform(lo, hi)), 1)
        value_text = f"{value:g}"
        if rng.random() < config.table_fraction:
            label, unit = PROPERTY_LABELS[prop]
            text = TABLE_TEMPLATE.format(
                f=formula, label=label, unit=unit, v=value_text,
                anneal=int(rng.uniform(100, 900)))
            documents.append(Document(f"tbl{i:04d}", text))
        else:
            templates = PROPERTY_TEMPLATES[prop]
            template = templates[int(rng.integers(0, len(templates)))]
            text = template.format(f=formula, v=value_text)
            if rng.random() < config.noise.typo_rate:
                text = apply_typo(text, rng)
            documents.append(Document(f"p{i:04d}", text))
        truth.add((formula, prop, value_text))
        if rng.random() < config.noise.kb_coverage:
            handbook_kb.append((formula, prop, value_text))

        for k in range(config.distractors_per_material):
            template = DISTRACTOR_TEMPLATES[int(rng.integers(0, len(DISTRACTOR_TEMPLATES)))]
            distractor_value = f"{int(rng.uniform(100, 900))}"
            documents.append(Document(
                f"x{i:04d}_{k}", template.format(f=formula, v=distractor_value)))

    return GeneratedCorpus(
        documents=documents,
        truth={"material_property": truth},
        kb={"Handbook": handbook_kb},
        metadata={"config": config, "formulas": formulas},
    )
