"""Segmented relations: sealing, content addressing, reopen, crash safety."""

import json

import numpy as np
import pytest

from repro.datastore import Database, Relation, Schema
from repro.datastore.segments import (SegmentCache, SegmentedRelation,
                                      SegmentError, open_segment,
                                      segment_path, write_segment)


def make(tmp_path, segment_rows=4, name="t"):
    return SegmentedRelation(name, Schema.of(k="int", v="text"),
                             tmp_path / name, segment_rows=segment_rows)


class TestSegmentFiles:
    def test_round_trip(self, tmp_path):
        codes = np.array([[0, 1, 2], [2, 1, 0]], dtype=np.int64)
        counts = np.array([1, 2, 3], dtype=np.int64)
        pool = [10, "x", ("a", "b")]
        ref = write_segment(tmp_path, codes, counts, pool)
        data = open_segment(segment_path(tmp_path, ref.digest))
        assert data.pool_values == pool           # tuples survive JSON
        assert np.array_equal(np.asarray(data.codes), codes)
        assert np.array_equal(np.asarray(data.counts), counts)
        assert data.total == 6 and ref.total == 6

    def test_content_addressing_dedupes(self, tmp_path):
        codes = np.array([[0, 1]], dtype=np.int64)
        counts = np.array([1, 1], dtype=np.int64)
        ref1 = write_segment(tmp_path, codes, counts, ["a", "b"])
        ref2 = write_segment(tmp_path, codes, counts, ["a", "b"])
        assert ref1.digest == ref2.digest
        assert len(list(tmp_path.glob("seg-*.seg"))) == 1
        ref3 = write_segment(tmp_path, codes, counts, ["a", "c"])
        assert ref3.digest != ref1.digest

    def test_truncated_segment_rejected(self, tmp_path):
        ref = write_segment(tmp_path, np.array([[0]], dtype=np.int64),
                            np.array([5], dtype=np.int64), ["only"])
        path = segment_path(tmp_path, ref.digest)
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(SegmentError, match="truncated"):
            open_segment(path)

    def test_non_segment_file_rejected(self, tmp_path):
        bogus = tmp_path / ("seg-" + "0" * 40 + ".seg")
        bogus.write_bytes(b"not a segment at all")
        with pytest.raises(SegmentError, match="magic"):
            open_segment(bogus)


class TestSegmentedRelation:
    def test_seal_threshold_and_contents(self, tmp_path):
        relation = make(tmp_path, segment_rows=4)
        rows = [(i, f"r{i}") for i in range(10)]
        for row in rows:
            relation.insert(row)
        relation.insert((0, "r0"), count=2)
        assert len(relation.segment_refs) == 2    # 8 rows sealed, 2+dup tail
        assert len(relation) == 12
        assert sorted(relation) == sorted(rows + [(0, "r0")] * 2)
        assert relation.count((0, "r0")) == 3

    def test_flush_then_reopen_identical(self, tmp_path):
        relation = make(tmp_path, segment_rows=4)
        for i in range(11):
            relation.insert((i, str(i)))
        relation.flush()
        reopened = SegmentedRelation.open(relation.directory)
        assert reopened.counts_copy() == relation.counts_copy()
        assert reopened.mutation_version == relation.mutation_version
        assert reopened.schema == relation.schema

    def test_crash_during_seal_partial_ignored(self, tmp_path):
        relation = make(tmp_path, segment_rows=4)
        for i in range(9):
            relation.insert((i, str(i)))
        relation.flush()
        before = relation.counts_copy()
        # a crashed process sealed a segment but never committed meta.json:
        # the file exists, unreferenced
        write_segment(relation.directory,
                      np.array([[0], [1]], dtype=np.int64),
                      np.array([7], dtype=np.int64), [999, "ghost"])
        # ... and another crash left a torn temp file
        (relation.directory / "seg-deadbeef.seg.tmp-123").write_bytes(b"torn")
        reopened = SegmentedRelation.open(relation.directory)
        assert reopened.counts_copy() == before
        assert (999, "ghost") not in reopened

    def test_missing_referenced_segment_refused(self, tmp_path):
        relation = make(tmp_path, segment_rows=2)
        for i in range(4):
            relation.insert((i, str(i)))
        victim = relation.segment_paths()[0]
        victim.unlink()
        with pytest.raises(SegmentError, match="missing"):
            SegmentedRelation.open(relation.directory)

    def test_meta_version_gate(self, tmp_path):
        relation = make(tmp_path)
        relation.flush()
        meta_path = relation.directory / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(SegmentError, match="version"):
            SegmentedRelation.open(relation.directory)

    def test_sealed_rows_immutable(self, tmp_path):
        relation = make(tmp_path, segment_rows=2)
        for i in range(4):
            relation.insert((i, str(i)))
        relation.insert((100, "tail"))
        assert relation.delete((100, "tail")) == 1     # tail rows deletable
        assert relation.delete((555, "absent")) == 0   # absent rows: no-op
        with pytest.raises(SegmentError, match="sealed"):
            relation.delete((0, "0"))
        with pytest.raises(SegmentError, match="cleared"):
            relation.clear()

    def test_copy_is_readonly_snapshot(self, tmp_path):
        relation = make(tmp_path, segment_rows=2)
        for i in range(5):
            relation.insert((i, str(i)))
        snapshot = relation.copy()
        assert snapshot.counts_copy() == relation.counts_copy()
        with pytest.raises(SegmentError, match="read-only"):
            snapshot.insert((9, "nope"))
        relation.insert((9, "later"))                  # original still writable
        assert (9, "later") not in snapshot

    def test_lookup_scans(self, tmp_path):
        relation = make(tmp_path, segment_rows=2)
        for i in range(6):
            relation.insert((i % 3, str(i)))
        hits = sorted(relation.lookup(["k"], [1]))
        assert hits == sorted(r for r in relation if r[0] == 1)
        # repeated lookups stay correct across further seals (no stale cache)
        relation.insert((1, "new"))
        assert (1, "new") in set(relation.lookup(["k"], [1]))

    def test_distinct_count_upper_bound(self, tmp_path):
        relation = make(tmp_path, segment_rows=2)
        relation.insert((1, "a"))
        relation.insert((2, "b"))                      # seals [ (1,a),(2,b) ]
        relation.insert((1, "a"))                      # same row, new segment
        relation.insert((3, "c"))
        assert relation.distinct_count >= 3            # documented upper bound
        assert len(relation) == 4                      # multiplicities exact
        assert relation.counts_copy()[(1, "a")] == 2

    def test_queries_over_segmented_relation(self, tmp_path):
        from repro.datastore import query as Q
        relation = make(tmp_path, segment_rows=4)
        plain = Relation("p", relation.schema)
        for i in range(30):
            row = (i % 5, f"v{i % 7}")
            relation.insert(row)
            plain.insert(row)
        for backend in ("row", "columnar"):
            agg_seg = Q.aggregate(relation, ["k"], {"n": ("count", "*")},
                                  backend=backend)
            agg_plain = Q.aggregate(plain, ["k"], {"n": ("count", "*")},
                                    backend=backend)
            assert agg_seg.counts_copy() == agg_plain.counts_copy()

    def test_database_create_segmented(self, tmp_path):
        db = Database()
        relation = db.create_segmented("big", directory=tmp_path / "big",
                                       segment_rows=3, k="int", v="text")
        assert isinstance(relation, SegmentedRelation)
        for i in range(10):
            relation.insert((i, str(i)))
        assert len(relation.segment_refs) == 3
        assert db["big"] is relation


class TestSegmentCache:
    def test_lru_eviction_under_budget(self, tmp_path):
        cache = SegmentCache(budget_bytes=1)           # evict aggressively
        relation = SegmentedRelation("t", Schema.of(k="int"),
                                     tmp_path / "t", segment_rows=2,
                                     cache=cache)
        for i in range(8):
            relation.insert((i,))
        assert len(relation.segment_refs) == 4
        assert sorted(relation) == [(i,) for i in range(8)]
        # budget of 1 byte: at most one entry stays resident
        assert len(cache._entries) <= 1

    def test_iter_stores_streams_chunks(self, tmp_path):
        relation = make(tmp_path, segment_rows=3)
        for i in range(8):
            relation.insert((i, str(i)))
        stores = list(relation.iter_stores())
        assert len(stores) == 3                        # 2 sealed + tail
        total = sum(int(s.counts.sum()) for s in stores)
        assert total == 8
