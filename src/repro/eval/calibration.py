"""Calibration plots and probability histograms (paper Figure 5).

"After each training run, DeepDive emits the diagrams shown in Figure 5...
The leftmost diagram is a calibration plot that shows whether DeepDive's
emitted probabilities are accurate... The center and right diagrams show a
histogram of predictions in various probability buckets for the test and
training sets... Ideal prediction histograms are U-shaped."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

NUM_BUCKETS = 10


@dataclass
class CalibrationPlot:
    """The leftmost Figure 5 plot: accuracy per predicted-probability bucket."""

    bucket_centers: np.ndarray      # 0.05, 0.15, ... 0.95
    bucket_accuracy: np.ndarray     # observed fraction correct (NaN if empty)
    bucket_counts: np.ndarray

    @property
    def max_deviation(self) -> float:
        """Largest |predicted - observed| over non-empty buckets; the paper's
        visual 'distance from the dotted blue line' as a number."""
        mask = self.bucket_counts > 0
        if not mask.any():
            return float("nan")
        return float(np.max(np.abs(
            self.bucket_accuracy[mask] - self.bucket_centers[mask])))

    def ascii(self, width: int = 40) -> str:
        """Terminal rendering of the calibration plot."""
        lines = ["calibration (predicted -> observed)"]
        for center, accuracy, count in zip(self.bucket_centers,
                                           self.bucket_accuracy,
                                           self.bucket_counts):
            if count == 0:
                lines.append(f"  {center:4.2f} |{'':{width}}| (empty)")
                continue
            bar = "#" * int(round(accuracy * width))
            lines.append(f"  {center:4.2f} |{bar:{width}}| {accuracy:.2f} (n={count})")
        return "\n".join(lines)


@dataclass
class ProbabilityHistogram:
    """The center/right Figure 5 plots: prediction counts per bucket."""

    bucket_counts: np.ndarray

    @property
    def u_shape_score(self) -> float:
        """Fraction of probability mass in the extreme buckets (<0.1, >0.9).

        1.0 is the ideal U shape; a low score is the paper's 'worrisome'
        histogram where the system cannot push beliefs to 0 or 1.
        """
        total = self.bucket_counts.sum()
        if total == 0:
            return float("nan")
        return float((self.bucket_counts[0] + self.bucket_counts[-1]) / total)

    def ascii(self, width: int = 40) -> str:
        peak = max(int(self.bucket_counts.max()), 1)
        lines = ["probability histogram"]
        for i, count in enumerate(self.bucket_counts):
            bar = "#" * int(round(count / peak * width))
            lines.append(f"  [{i / 10:.1f},{(i + 1) / 10:.1f}) |{bar:{width}}| {count}")
        return "\n".join(lines)


def bucket_index(probability: float) -> int:
    """Which of the 10 equal-width buckets ``probability`` falls in."""
    return min(int(probability * NUM_BUCKETS), NUM_BUCKETS - 1)


def calibration_plot(probabilities: Sequence[float],
                     is_correct: Sequence[bool]) -> CalibrationPlot:
    """Bucket predictions and compare predicted probability with accuracy."""
    if len(probabilities) != len(is_correct):
        raise ValueError("probabilities and labels must have equal length")
    counts = np.zeros(NUM_BUCKETS, dtype=np.int64)
    correct = np.zeros(NUM_BUCKETS, dtype=np.int64)
    for probability, label in zip(probabilities, is_correct):
        index = bucket_index(probability)
        counts[index] += 1
        correct[index] += bool(label)
    with np.errstate(invalid="ignore"):
        accuracy = np.where(counts > 0, correct / np.maximum(counts, 1), np.nan)
    centers = (np.arange(NUM_BUCKETS) + 0.5) / NUM_BUCKETS
    return CalibrationPlot(centers, accuracy, counts)


def probability_histogram(probabilities: Iterable[float]) -> ProbabilityHistogram:
    """Count predictions per probability bucket."""
    counts = np.zeros(NUM_BUCKETS, dtype=np.int64)
    for probability in probabilities:
        counts[bucket_index(probability)] += 1
    return ProbabilityHistogram(counts)


def calibration_vs_exact(compiled, estimated_marginals) -> CalibrationPlot:
    """Calibration of estimated marginals against the exact-inference oracle.

    On toy graphs (small enough for full enumeration) we do not need held-out
    labels to judge calibration: bucket the non-evidence variables by their
    *estimated* marginal and report the mean *exact* marginal per bucket.  A
    correct sampler hugs the diagonal; systematic deviation localizes a
    sampling bug to a probability range.
    """
    from repro.inference.exact import exact_marginals

    exact = exact_marginals(compiled).marginals
    query = ~compiled.is_evidence
    counts = np.zeros(NUM_BUCKETS, dtype=np.int64)
    exact_mass = np.zeros(NUM_BUCKETS, dtype=np.float64)
    for estimated, truth in zip(np.asarray(estimated_marginals)[query],
                                exact[query]):
        index = bucket_index(float(estimated))
        counts[index] += 1
        exact_mass[index] += truth
    with np.errstate(invalid="ignore"):
        observed = np.where(counts > 0, exact_mass / np.maximum(counts, 1),
                            np.nan)
    centers = (np.arange(NUM_BUCKETS) + 0.5) / NUM_BUCKETS
    return CalibrationPlot(centers, observed, counts)
