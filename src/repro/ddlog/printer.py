"""Pretty-printer for DDlog ASTs: the inverse of the parser.

Used by debugging tools to show rules back to the engineer, and by the test
suite to assert that parse -> print -> parse is the identity.
"""

from __future__ import annotations

from repro.ddlog.ast import (Comparison, Declaration, FixedWeight,
                             PerRuleWeight, ProgramAst, RelationAtom, Rule,
                             Term, UdfBinding, UdfCondition, UdfWeight, Var,
                             VarWeight, WeightSpec)


def print_term(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    value = term.value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def print_atom(atom: RelationAtom) -> str:
    inner = ", ".join(print_term(t) for t in atom.terms)
    prefix = "!" if atom.negated else ""
    return f"{prefix}{atom.relation}({inner})"


def print_body_item(item) -> str:
    if isinstance(item, RelationAtom):
        return print_atom(item)
    if isinstance(item, Comparison):
        return f"[{print_term(item.left)} {item.op} {print_term(item.right)}]"
    if isinstance(item, UdfCondition):
        args = ", ".join(print_term(a) for a in item.args)
        prefix = "!" if item.negated else ""
        return f"[{prefix}{item.udf}({args})]"
    if isinstance(item, UdfBinding):
        args = ", ".join(print_term(a) for a in item.args)
        return f"{item.target} = {item.udf}({args})"
    raise TypeError(f"unknown body item {item!r}")


def print_weight(spec: WeightSpec) -> str:
    if isinstance(spec, FixedWeight):
        return f"{spec.value:g}"
    if isinstance(spec, PerRuleWeight):
        return "?"
    if isinstance(spec, UdfWeight):
        args = ", ".join(print_term(a) for a in spec.args)
        return f"{spec.udf}({args})"
    if isinstance(spec, VarWeight):
        return spec.var
    raise TypeError(f"unknown weight spec {spec!r}")


def print_rule(rule: Rule) -> str:
    connective = f" {rule.connective.value} " if rule.connective else ""
    head = connective.join(print_atom(h) for h in rule.heads)
    body = ", ".join(print_body_item(item) for item in rule.body)
    weight = f" weight = {print_weight(rule.weight)}" if rule.weight else ""
    return f"{head} :- {body}{weight}."


def print_declaration(decl: Declaration) -> str:
    columns = ", ".join(f"{name} {type_name}" for name, type_name in decl.columns)
    marker = "?" if decl.is_variable else ""
    return f"{decl.name}{marker}({columns})."


def print_program(ast: ProgramAst) -> str:
    """Render the whole program as parseable DDlog source."""
    lines = [print_declaration(d) for d in ast.declarations]
    if ast.declarations and ast.rules:
        lines.append("")
    lines.extend(print_rule(rule) for rule in ast.rules)
    return "\n".join(lines)
