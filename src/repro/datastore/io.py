"""Datastore persistence: CSV per relation and JSON for whole databases.

DeepDive deployments hand extracted tables to downstream tools ("OLAP query
processors, visualization software like Tableau, and analytical tools such
as R or Excel" -- Section 1); CSV is the lingua franca for that hand-off.
JSON dump/load round-trips a whole database including schemas, so an
application's state can be archived next to its run history.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Iterable, TextIO

import numpy as np

from repro.datastore.database import Database
from repro.datastore.relation import Relation
from repro.datastore.schema import Schema
from repro.datastore.types import ColumnType


# ---------------------------------------------------------------------- CSV
def write_csv(relation: Relation, stream: TextIO) -> int:
    """Write ``relation`` to ``stream`` as CSV with a header row.

    ARRAY columns are JSON-encoded in their cell.  Returns rows written
    (multiplicity preserved: a row with count 2 appears twice).
    """
    writer = csv.writer(stream)
    writer.writerow(relation.schema.names)
    written = 0
    array_positions = {i for i, column in enumerate(relation.schema.columns)
                       if column.type is ColumnType.ARRAY}
    for row in relation:
        encoded = [json.dumps(list(v)) if i in array_positions and v is not None
                   else v for i, v in enumerate(row)]
        writer.writerow(encoded)
        written += 1
    return written


def read_csv(stream: TextIO, schema: Schema, name: str = "loaded") -> Relation:
    """Read a CSV written by :func:`write_csv` back into a relation."""
    reader = csv.reader(stream)
    header = next(reader, None)
    if header is None:
        return Relation(name, schema)
    if tuple(header) != schema.names:
        raise ValueError(f"CSV header {header} does not match schema "
                         f"{schema.names}")
    relation = Relation(name, schema)
    for raw in reader:
        row: list[Any] = []
        for value, column in zip(raw, schema.columns):
            if value == "":
                row.append(None)
            elif column.type is ColumnType.INT:
                row.append(int(value))
            elif column.type is ColumnType.FLOAT:
                row.append(float(value))
            elif column.type is ColumnType.BOOL:
                row.append(value == "True")
            elif column.type is ColumnType.ARRAY:
                row.append(tuple(json.loads(value)))
            else:
                row.append(value)
        relation.insert(row)
    return relation


def relation_to_csv_text(relation: Relation) -> str:
    """Convenience: the relation's CSV as a string."""
    buffer = io.StringIO()
    write_csv(relation, buffer)
    return buffer.getvalue()


# --------------------------------------------------------------------- JSON
#: Current JSON database format.  v3 stores each relation columnar: one or
#: more *parts*, each a local interning pool plus per-column int64 code
#: lists and a multiplicity vector -- every distinct row is written once
#: (v2 expanded multiplicities into repeated rows) and dump/restore moves
#: codes in bulk instead of decoding Python rows.  v2 adds each relation's
#: mutation-version counter so a restored database resumes IVM/DRed cache
#: keying where the dumped one left off; v1/v2 dumps still load.
DATABASE_FORMAT_VERSION = 3
SUPPORTED_DATABASE_VERSIONS = (1, 2, 3)


def relation_parts(relation: Relation) -> list[dict]:
    """``relation`` as v3 *parts*: ``{pool, codes, counts}`` dicts.

    A :class:`~repro.datastore.segments.SegmentedRelation` contributes one
    part per sealed segment (codes copied straight out of the mmap, no row
    decode) plus its tail; an in-memory relation becomes a single part
    encoded against a fresh local pool.  Tuple values (ARRAY columns) are
    stored as JSON lists; :func:`counts_from_parts` restores them.
    """
    from repro.datastore.segments import encode_value

    parts = []
    for store in _relation_stores(relation):
        parts.append({
            "pool": [encode_value(v) for v in store.pool.values],
            "codes": [np.asarray(store.codes[j]).tolist()
                      for j in range(store.codes.shape[0])],
            "counts": np.asarray(store.counts).tolist(),
        })
    return parts


def _relation_stores(relation: Relation):
    from repro.datastore import columnar as C
    from repro.datastore.segments import SegmentedRelation

    if isinstance(relation, SegmentedRelation):
        yield from relation.iter_stores()
    else:
        yield C.ColumnStore.from_counted_rows(
            relation.schema, relation.counted_rows(), C.InternPool())


def counts_from_parts(parts: Iterable[dict]) -> dict:
    """Merge v3 parts back into one ``row -> count`` bag.

    Tolerant of both JSON lists and numpy arrays for codes/counts, so
    in-process callers (checkpoint manifests) can hand over arrays without
    a ``tolist`` round-trip.
    """
    from repro.datastore.segments import decode_value

    counts: dict[tuple, int] = {}
    for part in parts:
        values = [decode_value(v) for v in part["pool"]]
        objects = np.empty(len(values), dtype=object)
        objects[:] = values
        columns = [objects[np.asarray(codes, dtype=np.int64)]
                   for codes in part["codes"]]
        multiplicities = np.asarray(part["counts"], dtype=np.int64).tolist()
        for row, count in zip(zip(*columns), multiplicities):
            counts[row] = counts.get(row, 0) + count
    return counts


def database_to_dict(db: Database, relations: Iterable[str] | None = None,
                     version: int = DATABASE_FORMAT_VERSION) -> dict:
    """Serialize ``db`` (or a subset of relations) to a JSON-compatible dict.

    ``version`` selects the emitted format (3 is the columnar default;
    2 keeps the legacy expanded-rows layout for compatibility tooling).
    """
    if version not in (2, 3):
        raise ValueError(f"can only write database format versions 2 and 3, "
                         f"not {version!r}")
    names = list(relations) if relations is not None else db.names()
    payload = {"version": version, "relations": {}}
    for name in names:
        relation = db[name]
        item: dict = {
            "schema": [[c.name, c.type.value] for c in relation.schema.columns],
            "mutation_version": relation.mutation_version,
        }
        if version == 3:
            item["parts"] = relation_parts(relation)
        else:
            item["rows"] = [[list(v) if isinstance(v, tuple) else v
                             for v in row] for row in relation]
        payload["relations"][name] = item
    return payload


def database_from_dict(data: dict) -> Database:
    """Inverse of :func:`database_to_dict`.

    Restored relations resume the persisted mutation-version counters, so
    incremental machinery (DRed views, columnar caches) keyed on them
    behaves exactly as it would have over the original database.  Unknown
    (future) format versions are refused rather than misread.
    """
    version = data.get("version")
    if version not in SUPPORTED_DATABASE_VERSIONS:
        raise ValueError(
            f"unsupported database format version {data.get('version')!r}; "
            f"this build reads versions {SUPPORTED_DATABASE_VERSIONS}")
    db = Database()
    for name, item in data["relations"].items():
        schema = Schema.of(**{column: type_name
                              for column, type_name in item["schema"]})
        relation = db.create(name, schema)
        # one bulk insert (a single version bump) so the persisted counter —
        # which counted at least one mutation per stored row batch — can
        # always be restored exactly
        if version == 3:
            relation.insert_counted(counts_from_parts(item["parts"]).items())
        else:
            relation.insert_many(item["rows"])
        persisted = item.get("mutation_version")
        if persisted is not None and persisted > relation.mutation_version:
            relation.restore_mutation_version(persisted)
    return db


def dump_database(db: Database, stream: TextIO,
                  relations: Iterable[str] | None = None) -> None:
    """Write ``db`` as JSON to ``stream``."""
    json.dump(database_to_dict(db, relations), stream)


def load_database(stream: TextIO) -> Database:
    """Read a database written by :func:`dump_database`."""
    return database_from_dict(json.load(stream))
