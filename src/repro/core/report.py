"""Full run reports: the execution history "in an easy-to-consume form".

Section 2.5 requires that DeepDive "retains a statistical 'execution
history' and can present it to the user in an easy-to-consume form"; this
module assembles one self-contained plain-text report per run -- summary,
phase timings, Figure-5 artifacts, top features with observation counts,
overlap warnings, and (when a previous run is supplied) the run-over-run
diff -- suitable for archiving next to the code version that produced it.
"""

from __future__ import annotations

from repro.core.history import RunHistory
from repro.core.result import RunResult


def run_report(app, result: RunResult, relation: str | None = None,
               history: RunHistory | None = None, top_features: int = 15) -> str:
    """Render a complete report for ``result`` produced by ``app``.

    ``relation``: restrict the output-database section to one variable
    relation (default: all).  ``history``: include the diff against the
    previous recorded run, and record this one.
    """
    lines: list[str] = []
    rule = "=" * 70
    lines += [rule, "DEEPDIVE RUN REPORT", rule, ""]
    lines.append(result.summary())
    lines.append("")

    lines.append("-- factor graph " + "-" * 50)
    for key, value in result.graph_stats.items():
        lines.append(f"  {key:12s} {value}")
    lines.append("")

    top_spans = result.profile.top_spans(10)
    if top_spans:
        lines.append("-- profile: top spans by inclusive time " + "-" * 26)
        for name, seconds, calls in top_spans:
            lines.append(f"  {seconds:8.3f}s  x{calls:<5d} {name}")
        counters = result.profile.metrics.get("counters", {})
        for key, value in sorted(counters.items(), key=lambda kv: -kv[1])[:8]:
            lines.append(f"  {key} = {value:g}")
        lines.append("")

    lines.append("-- output database " + "-" * 47)
    output = result.output
    names = [relation] if relation else sorted(output)
    for name in names:
        accepted = output.get(name, {})
        lines.append(f"  {name}: {len(accepted)} tuples at "
                     f"p>={result.threshold}")
        for values, probability in sorted(accepted.items(),
                                          key=lambda kv: -kv[1])[:10]:
            lines.append(f"    {probability:.3f}  {values}")
        if len(accepted) > 10:
            lines.append(f"    ... ({len(accepted) - 10} more)")
    lines.append("")

    if result.holdout_pairs:
        lines.append("-- calibration (Figure 5) " + "-" * 40)
        lines.append(result.calibration().ascii())
        lines.append("")
        lines.append(result.test_histogram().ascii())
        lines.append("")

    lines.append("-- top features by |weight| " + "-" * 38)
    ranked = sorted(result.feature_stats, key=lambda s: -abs(s.weight))
    for stat in ranked[:top_features]:
        flag = "  ** undertrained" if stat.undertrained else ""
        lines.append(f"  {stat.weight:+7.3f}  n={stat.observations:<6d} "
                     f"{stat.key}{flag}")
    lines.append("")

    from repro.supervision import detect_supervision_overlap
    warnings = detect_supervision_overlap(app.graph)
    lines.append("-- supervision overlap check (Sec. 8) " + "-" * 28)
    if warnings:
        for warning in warnings:
            lines.append(f"  WARNING: {warning.describe()}")
    else:
        lines.append("  clean: no feature duplicates a supervision rule")
    lines.append("")

    if history is not None:
        if len(history):
            lines.append("-- change since previous run " + "-" * 37)
            history.record(result)
            lines.append(history.diff().render())
        else:
            history.record(result)
            lines.append("-- first recorded run (no diff) " + "-" * 34)
        lines.append("")
        lines.append("-- run history " + "-" * 51)
        lines.append(history.render())
        lines.append("")

    lines.append(rule)
    return "\n".join(lines)
