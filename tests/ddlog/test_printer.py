"""Printer tests: parse -> print -> parse must be the identity."""

import pytest

from repro.ddlog import parse_program
from repro.ddlog.printer import print_program, print_rule

EXAMPLES = [
    # the paper's Figure 3 program
    """
    Sentence(s text, content text).
    PersonCandidate(s text, m text).
    MarriedCandidate(m1 text, m2 text).
    MarriedMentions?(m1 text, m2 text).
    EL(m text, e text).
    Married(e1 text, e2 text).
    MarriedCandidate(m1, m2) :- PersonCandidate(s, m1), PersonCandidate(s, m2), [m1 < m2].
    MarriedMentions(m1, m2) :- MarriedCandidate(m1, m2), Sentence(s, sent) weight = phrase(m1, m2, sent).
    MarriedMentions_Ev(m1, m2, true) :- MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
    """,
    # inference rules with every connective and weight form
    """
    A?(x text).
    B?(x text).
    L(x text, y text).
    A(x) => B(y) :- L(x, y) weight = 2.5.
    A(x) = B(x) :- L(x, x) weight = ?.
    !A(x) | B(y) :- L(x, y) weight = 1.
    A(x) & B(y) :- L(x, y) weight = w(x).
    """,
    # constants, UDF bindings and conditions
    """
    R(a text, n int).
    Q(a text, p text).
    Q(a, p) :- R(a, 5), p = glue(a, "suffix"), [!in_dict(a)], [a != "none"].
    """,
]


def normalize(ast):
    return ([(d.name, d.columns, d.is_variable) for d in ast.declarations],
            [(r.kind, r.heads, r.connective, r.body, r.weight)
             for r in ast.rules])


class TestRoundTrip:
    @pytest.mark.parametrize("source", EXAMPLES)
    def test_parse_print_parse_identity(self, source):
        first = parse_program(source)
        printed = print_program(first)
        second = parse_program(printed)
        assert normalize(first) == normalize(second)

    def test_printed_program_is_readable(self):
        ast = parse_program(EXAMPLES[0])
        text = print_program(ast)
        assert "MarriedMentions?(m1 text, m2 text)." in text
        assert "weight = phrase(m1, m2, sent)" in text

    def test_print_rule_single(self):
        ast = parse_program("R(a text). Q(a text). Q(a) :- R(a).")
        assert print_rule(ast.rules[0]) == "Q(a) :- R(a)."

    def test_negated_head_printed(self):
        ast = parse_program("""
        A?(x text).
        L(x text, y text).
        !A(x) | A(y) :- L(x, y) weight = 1.0.
        """)
        assert print_rule(ast.rules[0]).startswith("!A(x) | A(y)")

    def test_string_escaping(self):
        ast = parse_program('R(a text). Q(a text). Q(a) :- R(a), [a != "x\\"y"].')
        reparsed = parse_program(
            "R(a text). Q(a text). " + print_rule(ast.rules[0]))
        assert normalize(ast)[1] == normalize(reparsed)[1]
