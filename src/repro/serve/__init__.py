"""Durable online serving for DeepDive-style KBC applications.

The batch pipeline (:class:`repro.core.DeepDive`) answers "run this program
over this corpus once".  This package keeps that KB *alive*: documents,
evidence, and even rules arrive as a stream of deltas; marginals refresh
incrementally (Section 4.2 materialization strategies); readers query
immutable versioned snapshots while the single writer works; and a
write-ahead log plus periodic checkpoints make the whole thing crash
recoverable with bit-identical marginals.

Typical use::

    from repro.serve import KBService, add_documents

    with KBService.create(dirpath, app_factory, bootstrap_ops) as service:
        service.ingest(add_documents([("d9", "Ann married Bob.")]))
        spouses = service.query("spouse")

    # later, or after a crash:
    service = KBService.open(dirpath, app_factory)
"""

from repro.serve.checkpoint import (CHECKPOINT_FORMAT_VERSION, CheckpointError,
                                    CheckpointInfo, CheckpointManager)
from repro.serve.config import ServeConfig
from repro.serve.engine import DEFAULT_RUN_KWARGS, ServeEngine
from repro.serve.ops import (AddDocuments, AddRows, AddRules, IngestOp,
                             OpError, RemoveDocuments, RemoveRows,
                             add_documents, add_rows, op_from_record,
                             remove_rows)
from repro.serve.service import IngestRejected, KBService, ServiceFailed
from repro.serve.snapshot import Snapshot
from repro.serve.wal import WalError, WalRecord, WriteAheadLog

__all__ = [
    "AddDocuments",
    "AddRows",
    "AddRules",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointManager",
    "DEFAULT_RUN_KWARGS",
    "IngestOp",
    "IngestRejected",
    "KBService",
    "OpError",
    "RemoveDocuments",
    "RemoveRows",
    "ServeConfig",
    "ServeEngine",
    "ServiceFailed",
    "Snapshot",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "add_documents",
    "add_rows",
    "op_from_record",
    "remove_rows",
]
