"""Tests for the overlap detector and manual-labelling comparator."""

import pytest

from repro.factorgraph import FactorFunction, FactorGraph
from repro.supervision import (apply_manual_labels, detect_supervision_overlap,
                               noisy_oracle)


def labelled_graph(num_positive=20, num_negative=20,
                   overlap_feature=True, coverage=1.0):
    """Evidence variables with a normal feature plus (optionally) a feature
    that duplicates the supervision rule."""
    graph = FactorGraph()
    normal = graph.weight("normal_feature")
    dup = graph.weight("kb_duplicate")
    for i in range(num_positive):
        v = graph.variable(("pos", i))
        graph.set_evidence(("pos", i), True)
        graph.add_factor(FactorFunction.IS_TRUE, [v], normal)
        if overlap_feature and i < int(num_positive * coverage):
            graph.add_factor(FactorFunction.IS_TRUE, [v], dup)
    for i in range(num_negative):
        v = graph.variable(("neg", i))
        graph.set_evidence(("neg", i), False)
        graph.add_factor(FactorFunction.IS_TRUE, [v], normal)
    return graph


class TestOverlapDetector:
    def test_duplicate_feature_flagged(self):
        warnings = detect_supervision_overlap(labelled_graph())
        assert [w.weight_key for w in warnings] == ["kb_duplicate"]
        assert warnings[0].severity == 1.0

    def test_normal_feature_not_flagged(self):
        warnings = detect_supervision_overlap(labelled_graph(overlap_feature=False))
        assert warnings == []

    def test_low_coverage_not_flagged(self):
        graph = labelled_graph(coverage=0.3)
        assert detect_supervision_overlap(graph) == []

    def test_coverage_threshold_tunable(self):
        graph = labelled_graph(coverage=0.85)
        assert detect_supervision_overlap(graph, min_coverage=0.8)
        assert not detect_supervision_overlap(graph, min_coverage=0.9)

    def test_feature_firing_on_negatives_not_flagged(self):
        graph = labelled_graph()
        dup = graph.weight_by_key("kb_duplicate").weight_id
        # the "duplicate" also fires on many negatives -> just a common feature
        for i in range(10):
            graph.add_factor(FactorFunction.IS_TRUE,
                             [graph.variable_id(("neg", i))], dup)
        assert detect_supervision_overlap(graph) == []

    def test_too_few_positives_silent(self):
        graph = labelled_graph(num_positive=2, num_negative=2)
        assert detect_supervision_overlap(graph) == []

    def test_describe(self):
        warning = detect_supervision_overlap(labelled_graph())[0]
        assert "kb_duplicate" in warning.describe()


class TestNoisyOracle:
    def test_zero_error_is_truth(self):
        oracle = noisy_oracle({"a", "b"}, error_rate=0.0)
        assert oracle("a") is True
        assert oracle("z") is False

    def test_deterministic_per_item(self):
        oracle = noisy_oracle({"a"}, error_rate=0.5, seed=1)
        first = oracle("a")
        assert all(oracle("a") == first for _ in range(10))

    def test_error_rate_approximate(self):
        truth = {f"t{i}" for i in range(500)}
        oracle = noisy_oracle(truth, error_rate=0.2, seed=0)
        wrong = sum(1 for item in truth if not oracle(item))
        assert 0.1 < wrong / 500 < 0.3


class TestApplyManualLabels:
    def test_budget_respected(self):
        graph = FactorGraph()
        keys = []
        for i in range(50):
            key = ("q", i)
            graph.variable(key)
            keys.append(key)
        applied = apply_manual_labels(graph, keys, lambda k: True, budget=10)
        assert applied == 10
        labelled = [v for v in graph.variables.values() if v.evidence is not None]
        assert len(labelled) == 10

    def test_missing_variables_skipped(self):
        graph = FactorGraph()
        graph.variable(("q", 0))
        applied = apply_manual_labels(graph, [("q", 0), ("q", 99)],
                                      lambda k: False, budget=10)
        assert applied == 1
