"""An independent logistic-regression extractor (joint-inference ablation).

DeepDive's feature rules alone are equivalent to per-candidate logistic
classifiers; the system's extra power comes from joint inference rules and
unified supervision.  This baseline strips everything but the classifier:
per-candidate bag-of-features logistic regression trained directly on
distant-supervision labels, no factor graph, no correlation rules, no
marginal calibration.  Benchmarks use it to quantify what the graphical
layer adds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np


@dataclass
class LogisticModel:
    """A trained bag-of-features logistic model."""

    feature_index: dict[str, int]
    weights: np.ndarray
    bias: float

    def probability(self, features: Iterable[str]) -> float:
        score = self.bias
        for feature in features:
            index = self.feature_index.get(feature)
            if index is not None:
                score += self.weights[index]
        return float(1.0 / (1.0 + np.exp(-np.clip(score, -500, 500))))


def train_logistic(examples: Sequence[tuple[Sequence[str], bool]],
                   epochs: int = 100, step_size: float = 0.1,
                   l2: float = 0.01, seed: int = 0) -> LogisticModel:
    """Train on (feature list, label) pairs with SGD + L2."""
    feature_index: dict[str, int] = {}
    for features, _ in examples:
        for feature in features:
            feature_index.setdefault(feature, len(feature_index))
    weights = np.zeros(len(feature_index))
    bias = 0.0
    rng = np.random.default_rng(seed)
    order = np.arange(len(examples))
    step = step_size
    for _ in range(epochs):
        rng.shuffle(order)
        for i in order:
            features, label = examples[i]
            indices = [feature_index[f] for f in features]
            score = bias + weights[indices].sum() if indices else bias
            probability = 1.0 / (1.0 + np.exp(-np.clip(score, -500, 500)))
            gradient = float(label) - probability
            for index in indices:
                weights[index] += step * (gradient - l2 * weights[index])
            bias += step * gradient
        step *= 0.97
    return LogisticModel(feature_index, weights, bias)


def classify_candidates(model: LogisticModel,
                        candidates: Mapping[Hashable, Sequence[str]],
                        threshold: float = 0.5) -> set[Hashable]:
    """Candidates whose predicted probability clears ``threshold``."""
    return {key for key, features in candidates.items()
            if model.probability(features) >= threshold}
