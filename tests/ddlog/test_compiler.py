"""Compiler tests: rule bodies evaluated over a database must produce the
joins/selections the datalog semantics dictate."""

import pytest

from repro.datastore import Database
from repro.ddlog import DDlogProgram, compile_body, head_projection
from repro.ddlog.compiler import head_values_reader


def program_and_db():
    program = DDlogProgram.parse("""
    PersonCandidate(s text, m text).
    Sentence(s text, content text).
    MarriedCandidate(m1 text, m2 text).
    MarriedMentions?(m1 text, m2 text).

    MarriedCandidate(m1, m2) :-
        PersonCandidate(s, m1), PersonCandidate(s, m2), [m1 < m2].

    MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2), [realpair(m1, m2)]
        weight = pairkey(m1, m2).
    """)
    program.register_udf("realpair", lambda m1, m2: m1 != "skip", returns="bool")
    program.register_udf("pairkey", lambda m1, m2: f"{m1}|{m2}")
    db = Database()
    program.create_relations(db)
    db.insert("PersonCandidate", [("s1", "a"), ("s1", "b"), ("s2", "c")])
    db.insert("Sentence", [("s1", "text one"), ("s2", "text two")])
    return program, db


class TestBodyCompilation:
    def test_self_join_with_condition(self):
        program, db = program_and_db()
        rule = program.derivation_rules[0]
        plan = compile_body(rule, program.declarations, program.udfs)
        rows = set(plan.evaluate(db))
        # only (a, b) from s1 survives [m1 < m2]; s2 has a single person
        dicts = [plan.schema(db).row_dict(r) for r in rows]
        pairs = {(d["m1"], d["m2"]) for d in dicts}
        assert pairs == {("a", "b")}

    def test_head_projection_to_target_columns(self):
        program, db = program_and_db()
        rule = program.derivation_rules[0]
        body = compile_body(rule, program.declarations, program.udfs)
        plan = head_projection(rule, body, ("m1", "m2"))
        assert set(plan.evaluate(db)) == {("a", "b")}

    def test_constant_in_body_atom(self):
        program = DDlogProgram.parse("""
        R(a text, n int).
        Q(a text).
        Q(a) :- R(a, 5).
        """)
        db = Database()
        program.create_relations(db)
        db.insert("R", [("x", 5), ("y", 6)])
        rule = program.derivation_rules[0]
        plan = head_projection(rule, compile_body(rule, program.declarations, {}), ("a",))
        assert set(plan.evaluate(db)) == {("x",)}

    def test_repeated_variable_in_atom(self):
        program = DDlogProgram.parse("""
        R(a text, b text).
        Q(a text).
        Q(a) :- R(a, a).
        """)
        db = Database()
        program.create_relations(db)
        db.insert("R", [("x", "x"), ("y", "z")])
        rule = program.derivation_rules[0]
        plan = head_projection(rule, compile_body(rule, program.declarations, {}), ("a",))
        assert set(plan.evaluate(db)) == {("x",)}

    def test_udf_condition_filters(self):
        program, db = program_and_db()
        db.insert("MarriedCandidate", [("a", "b"), ("skip", "b")])
        rule = program.feature_rules[0]
        plan = compile_body(rule, program.declarations, program.udfs)
        rows = [plan.schema(db).row_dict(r) for r in plan.evaluate(db)]
        assert {(r["m1"], r["m2"]) for r in rows} == {("a", "b")}

    def test_udf_binding_extends_rows(self):
        program = DDlogProgram.parse("""
        R(a text, b text).
        Q(a text, p text).
        Q(a, p) :- R(a, b), p = glue(a, b).
        """)
        program.register_udf("glue", lambda a, b: f"{a}+{b}")
        db = Database()
        program.create_relations(db)
        db.insert("R", [("x", "y")])
        rule = program.derivation_rules[0]
        plan = head_projection(rule, compile_body(rule, program.declarations,
                                                  program.udfs), ("a", "p"))
        assert set(plan.evaluate(db)) == {("x", "x+y")}

    def test_constant_head_term(self):
        program = DDlogProgram.parse("""
        R(a text).
        Q?(a text).
        Q_Ev(a, true) :- R(a).
        """)
        db = Database()
        program.create_relations(db)
        db.insert("R", [("x",)])
        rule = program.supervision_rules[0]
        plan = head_projection(rule, compile_body(rule, program.declarations, {}),
                               ("a", "label"))
        assert set(plan.evaluate(db)) == {("x", True)}

    def test_head_values_reader(self):
        program, db = program_and_db()
        rule = program.derivation_rules[0]
        plan = compile_body(rule, program.declarations, program.udfs)
        reader = head_values_reader(rule)
        rows = [plan.schema(db).row_dict(r) for r in plan.evaluate(db)]
        assert {reader(r) for r in rows} == {("a", "b")}

    def test_cross_product_when_no_shared_vars(self):
        program = DDlogProgram.parse("""
        R(a text).
        S(b text).
        Q(a text, b text).
        Q(a, b) :- R(a), S(b).
        """)
        db = Database()
        program.create_relations(db)
        db.insert("R", [("r1",), ("r2",)])
        db.insert("S", [("s1",)])
        rule = program.derivation_rules[0]
        plan = head_projection(rule, compile_body(rule, program.declarations, {}),
                               ("a", "b"))
        assert set(plan.evaluate(db)) == {("r1", "s1"), ("r2", "s1")}


class TestProgramObject:
    def test_rule_kind_accessors(self):
        program, _ = program_and_db()
        assert len(program.derivation_rules) == 1
        assert len(program.feature_rules) == 1
        assert program.supervision_rules == []
        assert program.inference_rules == []

    def test_create_relations_includes_evidence(self):
        program, db = program_and_db()
        assert "MarriedMentions_Ev" in db
        assert "label" in db["MarriedMentions_Ev"].schema

    def test_duplicate_udf_rejected(self):
        program, _ = program_and_db()
        with pytest.raises(ValueError):
            program.register_udf("realpair", lambda: None)

    def test_validate_checks_udfs(self):
        program = DDlogProgram.parse("""
        R(a text). Q?(a text).
        Q(a) :- R(a) weight = f(a).
        """)
        from repro.ddlog import DDlogValidationError
        with pytest.raises(DDlogValidationError):
            program.validate()
        program.register_udf("f", lambda a: a)
        program.validate()

    def test_variable_relations(self):
        program, _ = program_and_db()
        assert [d.name for d in program.variable_relations()] == ["MarriedMentions"]

    def test_udf_decorator(self):
        program = DDlogProgram.parse("R(a text). Q?(a text). Q(a) :- R(a) weight = g(a).")

        @program.udf("g")
        def g(a):
            return a

        program.validate()
        assert program.udfs["g"]("x") == "x"
