"""Checkpoints: periodic durable images of the whole serving state.

A checkpoint bounds recovery time (replay = WAL tail only, not the full
history) and is the only way learned weights survive a restart — the
factor-graph payload embeds them, while re-grounding alone would reset every
weight to its initial value.

One checkpoint file carries, as a single JSON document:

* the datastore (``datastore.io`` v2 dump, mutation counters included);
* the factor graph (``factorgraph.serialize`` v2, id-exact);
* the grounder's bookkeeping (:meth:`Grounder.state_dict`);
* the inference state (chain world + marginals, mean-field parameters);
* the publish cursor (``lsn``, snapshot version, threshold).

Writes are atomic (temp file + ``os.replace``) so a crash mid-checkpoint
leaves the previous checkpoint intact; loads verify a format version and
refuse anything unknown rather than guessing.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from dataclasses import dataclass

CHECKPOINT_FORMAT_VERSION = 1

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})\.json$")


class CheckpointError(ValueError):
    """Raised for unreadable or unsupported checkpoint payloads."""


@dataclass(frozen=True)
class CheckpointInfo:
    """A checkpoint on disk: its path and the LSN it covers."""

    path: pathlib.Path
    lsn: int


class CheckpointManager:
    """Save/load/prune checkpoints in one service directory."""

    def __init__(self, directory: str | os.PathLike,
                 keep: int = 2) -> None:
        self.directory = pathlib.Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    # ---------------------------------------------------------------- saving
    def save(self, payload: dict, lsn: int) -> CheckpointInfo:
        """Atomically persist ``payload`` as the checkpoint covering ``lsn``.

        The payload is stamped with the format version; older checkpoints
        beyond the retention count are pruned afterwards (never before — a
        failed save must not eat the previous checkpoint).
        """
        document = dict(payload)
        document["format"] = CHECKPOINT_FORMAT_VERSION
        document["lsn"] = lsn
        path = self.directory / f"checkpoint-{lsn:012d}.json"
        temp = path.with_suffix(".json.tmp")
        with open(temp, "w", encoding="utf-8") as stream:
            json.dump(document, stream)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp, path)
        self.prune()
        return CheckpointInfo(path, lsn)

    def prune(self) -> list[pathlib.Path]:
        """Delete all but the newest ``keep`` checkpoints; returns removals."""
        removed = []
        for info in self.list()[:-self.keep] if self.keep else []:
            info.path.unlink(missing_ok=True)
            removed.append(info.path)
        return removed

    # --------------------------------------------------------------- loading
    def list(self) -> list[CheckpointInfo]:
        """Checkpoints on disk, oldest first."""
        found = []
        for path in self.directory.iterdir():
            match = _CHECKPOINT_RE.match(path.name)
            if match:
                found.append(CheckpointInfo(path, int(match.group(1))))
        return sorted(found, key=lambda info: info.lsn)

    def latest(self) -> CheckpointInfo | None:
        """The newest checkpoint, or ``None`` for a fresh directory."""
        checkpoints = self.list()
        return checkpoints[-1] if checkpoints else None

    def load(self, info: CheckpointInfo | None = None) -> dict:
        """Read and validate a checkpoint payload (default: the latest)."""
        if info is None:
            info = self.latest()
            if info is None:
                raise CheckpointError(f"no checkpoint in {self.directory}")
        try:
            with open(info.path, encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"unreadable checkpoint {info.path}: {error}") from None
        version = payload.get("format")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format {version!r} in {info.path}; "
                f"this build reads version {CHECKPOINT_FORMAT_VERSION}")
        if payload.get("lsn") != info.lsn:
            raise CheckpointError(
                f"checkpoint {info.path} claims lsn {payload.get('lsn')!r} "
                f"but its filename says {info.lsn}")
        return payload
