"""Detector battery unit tests: shapes, confidences, span dedup, masking."""

from repro.compliance.detectors import (DEFAULT_DETECTORS, DETECTOR_NAMES,
                                        CreditCardDetector, EmailDetector,
                                        LocationDetector, PhoneDetector,
                                        SsnDetector, default_detectors,
                                        luhn_valid, mask)


def names(detections):
    return [d.detector for d in detections]


# ------------------------------------------------------------------- email
def test_email_basic():
    found = EmailDetector().detect("write to ann.smith+x@mail.example.org !")
    assert [d.value for d in found] == ["ann.smith+x@mail.example.org"]
    assert found[0].confidence > 0.9


def test_email_span_offsets():
    text = "a@b.co and c@d.io"
    found = EmailDetector().detect(text)
    assert [text[d.start:d.end] for d in found] == ["a@b.co", "c@d.io"]


def test_email_no_false_positive_on_bare_at():
    assert EmailDetector().detect("meet @ noon") == []


# ------------------------------------------------------------------- phone
def test_phone_formats_and_confidence_ordering():
    det = PhoneDetector()
    paren = det.detect("call (555) 301-0187 now")
    dashed = det.detect("call 555-301-0187 now")
    local = det.detect("call 555-0187 now")
    assert [d.value for d in paren] == ["(555) 301-0187"]
    assert [d.value for d in dashed] == ["555-301-0187"]
    assert [d.value for d in local] == ["555-0187"]
    assert paren[0].confidence > dashed[0].confidence > local[0].confidence


def test_phone_ten_digit_not_double_counted_as_seven():
    found = PhoneDetector().detect("392-555-0187")
    assert [d.value for d in found] == ["392-555-0187"]


def test_phone_detections_sorted_by_start():
    found = PhoneDetector().detect("555-0187 then (555) 301-0187")
    assert [d.start for d in found] == sorted(d.start for d in found)


# --------------------------------------------------------------------- ssn
def test_ssn_plausible_area_scores_high():
    found = SsnDetector().detect("ref 457-55-5462 please")
    assert names(found) == ["ssn"]
    assert found[0].confidence == 0.9


def test_ssn_implausible_area_scores_low():
    for bogus in ("000-12-3456", "666-12-3456", "957-12-3456"):
        found = SsnDetector().detect(bogus)
        assert found[0].confidence == 0.4


def test_ssn_does_not_match_ten_digit_phone():
    assert SsnDetector().detect("392-555-0187") == []


# ------------------------------------------------------------- credit card
def test_luhn():
    assert luhn_valid("4111111111111111")
    assert not luhn_valid("4111111111111112")


def test_credit_card_luhn_gates_confidence():
    det = CreditCardDetector()
    valid = det.detect("card 4111 1111 1111 1111 on file")
    bogus = det.detect("order 4111111111111112 shipped")
    assert valid[0].confidence == 0.95
    assert bogus[0].confidence == 0.3


# ---------------------------------------------------------------- location
def test_location_person_adjacent_scores_higher():
    det = LocationDetector()
    adjacent = det.detect("she lives in Fairview these days")
    editorial = det.detect("Fairview council voted tuesday")
    assert adjacent[0].confidence == 0.8
    assert editorial[0].confidence == 0.5


def test_location_custom_gazetteer():
    det = LocationDetector(places=("Quuxton",))
    assert [d.value for d in det.detect("moved to Quuxton")] == ["Quuxton"]
    assert det.detect("moved to Fairview") == []


# ----------------------------------------------------------- battery + mask
def test_default_battery_names():
    assert DETECTOR_NAMES == ("email", "phone", "ssn", "credit_card",
                              "location")
    assert len(default_detectors()) == len(DEFAULT_DETECTORS)


def test_detectors_are_deterministic():
    text = "ann@x.io or (555) 301-0187, ssn 457-55-5462, in Fairview"
    for detector in DEFAULT_DETECTORS:
        assert detector.detect(text) == detector.detect(text)


def test_mask_keeps_shape_not_content():
    assert mask("555-0187") == "5**-****"
    assert mask("ann@x.io") == "a**@*.**"
    assert mask("") == ""
    # masking never leaks more than the first character
    assert "187" not in mask("555-0187")
