"""Process-wide registry of warm worker pools.

A warm pool only pays off if *every* subsystem that wants ``workers=N``
under start-method ``mode`` shares the same long-lived processes: the NUMA
replica layer, corpus preprocessing, and the serving layer all route
through :func:`get_pool`, which hands out one :class:`~repro.parallel.warm.
WorkerPool` per ``(workers, mode, owner)`` and keeps it alive across calls.

``owner`` partitions the registry: the default ``None`` is the shared pool
every anonymous caller lands on, while a subsystem that must not share its
workers — one shard of a :class:`~repro.serve.shard.ShardedKBService`, say,
whose apply loop would otherwise thrash a sibling shard's segment cache and
serialize both shards' NLP fan-outs through one set of processes — passes
its own token and gets a private pool.  Shard-aware *sizing* is the
caller's half of the bargain: N owners each asking for ``cpus / N`` workers
fan out without oversubscribing the box (see
:func:`effective_cpus` and the serve layer's per-shard worker cap).

Lifetime: the registry owns the pools.  :func:`acquire_pool` /
:func:`release_pool` are *pin counts* for subsystems with an explicit
open/stop lifecycle (``repro.serve``) -- releasing the last pin leaves the
pool warm for the next caller; :func:`shutdown_pools` (registered at
interpreter exit, callable from tests and benches) actually stops workers
and unlinks segments.

No code here reads environment variables; worker counts and modes arrive
through :class:`~repro.obs.config.EngineConfig` plumbing.
"""

from __future__ import annotations

import atexit
import os
import threading
import warnings

from repro.parallel.pool import DEFAULT_TIMEOUT
from repro.parallel.warm import WorkerPool

_PoolKey = tuple[int, str, str | None]

_LOCK = threading.Lock()
_POOLS: dict[_PoolKey, WorkerPool] = {}
_PINS: dict[_PoolKey, int] = {}


def effective_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    The number shard routers divide by when sizing per-shard pools; falls
    back to ``os.cpu_count()`` on platforms without ``sched_getaffinity``.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                        # pragma: no cover - macOS
        return os.cpu_count() or 1


def get_pool(workers: int, mode: str = "auto",
             timeout: float = DEFAULT_TIMEOUT,
             owner: str | None = None) -> WorkerPool | None:
    """The shared warm pool for ``(workers, mode, owner)``, or ``None``.

    Creates the pool on first request and re-creates it if a previous one
    was closed.  Returns ``None`` (with a warning) when the pool cannot be
    built -- unavailable start method, bad worker count -- so callers fall
    back to their sequential path.
    """
    if workers < 1:
        return None
    key = (workers, mode, owner)
    with _LOCK:
        pool = _POOLS.get(key)
        if pool is not None and not pool.closed:
            return pool
        try:
            pool = WorkerPool(workers, mode=mode, timeout=timeout)
        except ValueError as exc:
            warnings.warn(f"warm pool unavailable: {exc}", RuntimeWarning,
                          stacklevel=2)
            return None
        _POOLS[key] = pool
        _PINS.setdefault(key, 0)
        return pool


def acquire_pool(workers: int, mode: str = "auto",
                 timeout: float = DEFAULT_TIMEOUT,
                 owner: str | None = None) -> WorkerPool | None:
    """``get_pool`` plus a pin: the caller promises a later ``release_pool``."""
    pool = get_pool(workers, mode, timeout, owner=owner)
    if pool is not None:
        with _LOCK:
            for key, tracked in _POOLS.items():
                if tracked is pool:
                    _PINS[key] = _PINS.get(key, 0) + 1
                    break
    return pool


def release_pool(pool: WorkerPool | None) -> None:
    """Drop one pin.  The pool stays warm; the registry owns its lifetime.

    Idempotent for ``None`` and for pools the registry no longer tracks,
    so shutdown paths can call it unconditionally.
    """
    if pool is None:
        return
    with _LOCK:
        for key, tracked in _POOLS.items():
            if tracked is pool:
                _PINS[key] = max(0, _PINS.get(key, 0) - 1)
                return


def pool_pins(pool: WorkerPool) -> int:
    """Current pin count for ``pool`` (0 if untracked); for tests."""
    with _LOCK:
        for key, tracked in _POOLS.items():
            if tracked is pool:
                return _PINS.get(key, 0)
    return 0


def shutdown_pools() -> None:
    """Close every registered pool and clear the registry."""
    with _LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
        _PINS.clear()
    for pool in pools:
        pool.close()


atexit.register(shutdown_pools)
