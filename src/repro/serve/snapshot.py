"""Immutable published views: what readers see.

The serving layer's consistency model is snapshot isolation with a single
writer: the apply loop builds the next version off to the side and publishes
it with one reference assignment, so readers always query a complete,
internally consistent knowledge base and never block on (or observe) an
ingest in flight.  A :class:`Snapshot` therefore owns *copies* of everything
it exposes — marginals, graph statistics, relation cardinalities — and
nothing that aliases the writer's mutable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compliance.manifest import ComplianceManifest

VariableKey = tuple[str, tuple]


@dataclass(frozen=True)
class Snapshot:
    """One published version of the extracted knowledge base.

    ``version``
        Monotonic publish counter (bootstrap = 0).
    ``lsn``
        The WAL sequence number whose effects this snapshot includes; a
        recovered service republishes the same (version, lsn) pairs.
    ``marginals``
        Variable key -> marginal probability, for every query variable.
    ``threshold``
        The acceptance threshold :meth:`output_tuples` applies by default.
    ``refresh``
        How this version's marginals were produced: ``"full_run"``,
        ``"sampling"``, ``"variational"``, or ``"none"`` (no touched
        variables — previous marginals carried over).
    ``manifest``
        The :class:`~repro.compliance.manifest.ComplianceManifest` of the
        publish-time scrub that produced this view, or ``None`` when no
        compliance policy was active.  A manifest means the marginal keys
        readers see are the *scrubbed* relabeling; the WAL and checkpoints
        keep the raw ground truth.
    """

    version: int
    lsn: int
    marginals: Mapping[VariableKey, float]
    threshold: float
    refresh: str = "full_run"
    graph_stats: Mapping[str, int] = field(default_factory=dict)
    relation_counts: Mapping[str, int] = field(default_factory=dict)
    manifest: "ComplianceManifest | None" = None

    # ------------------------------------------------------------ query API
    def marginal(self, key: Hashable, default: float | None = None) -> float:
        """The marginal probability of one variable key."""
        value = self.marginals.get(key)
        if value is None:
            if default is not None:
                return default
            raise KeyError(f"no variable {key!r} in snapshot v{self.version}")
        return value

    def output_tuples(self, relation: str,
                      threshold: float | None = None) -> set[tuple]:
        """Accepted tuples of ``relation`` at ``threshold`` (default: the
        snapshot's own)."""
        cut = self.threshold if threshold is None else threshold
        return {values for (name, values), probability in self.marginals.items()
                if name == relation and probability >= cut}

    def top(self, relation: str, k: int = 10) -> list[tuple[tuple, float]]:
        """The ``k`` highest-probability tuples of ``relation``."""
        entries = [(values, probability)
                   for (name, values), probability in self.marginals.items()
                   if name == relation]
        entries.sort(key=lambda item: (-item[1], item[0]))
        return entries[:k]

    def relations(self) -> list[str]:
        """Relation names with at least one variable in this snapshot."""
        return sorted({name for (name, _values) in self.marginals})

    def __len__(self) -> int:
        return len(self.marginals)
