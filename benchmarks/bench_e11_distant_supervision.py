"""E11 -- Sections 3.2 & 5.3: distant supervision vs manual labelling.

Paper artifact: "the massive number of labels enabled by distant supervision
rules may simply be more effective than the smaller number of labels that
come from manual processes, even in the face of possibly-higher error rates"
[53]; also "distant supervision rules can be revised, debugged, and cheaply
reexecuted".

We train the spouse model under (a) manual labels from a 5%-error annotator
at several budgets, and (b) full distant supervision from the incomplete KB,
and compare F1 as a function of labelling effort.  Shape checks: manual
quality grows with budget; distant supervision matches or beats any
affordable manual budget at zero marginal labelling cost.
"""

from __future__ import annotations

import numpy as np
from conftest import once

from repro.apps import spouse
from repro.core.app import DeepDive
from repro.corpus import spouse as spouse_corpus
from repro.factorgraph import CompiledGraph
from repro.inference import GibbsSampler, LearningOptions, learn_weights
from repro.supervision import apply_manual_labels, noisy_oracle

ANNOTATOR_ERROR = 0.05


def build_unsupervised(corpus, seed=0) -> DeepDive:
    """The spouse app with NO distant-supervision KB loaded."""
    app = DeepDive(spouse.PROGRAM, seed=seed)
    from repro.apps.common import pair_features
    app.register_udf("spouse_features",
                     lambda p1, p2, c: pair_features(p1, p2, c))
    known_names = {name.lower() for name, _ in corpus.kb["NameEL"]}
    app.add_extractor("PersonCandidate",
                      spouse.person_extractor_factory(known_names))
    app.add_extractor("SpouseSentence", lambda s: [(s.key, s.text)])
    app.load_documents(corpus.documents)
    return app


def run_graph(app, seed=0):
    compiled = CompiledGraph(app.graph)
    learn_weights(compiled, LearningOptions(epochs=60, seed=seed))
    sampler = GibbsSampler(compiled, seed=seed, clamp_evidence=False)
    result = sampler.marginals(num_samples=250, burn_in=40)
    return {key: float(p)
            for key, p in zip(compiled.var_keys, result.marginals)}


def f1_at(app, marginals, corpus, threshold=0.8):
    gold = spouse.gold_mention_pairs(app, corpus)
    accepted = {key[1] for key, p in marginals.items() if p >= threshold}
    from repro.eval import precision_recall
    return precision_recall(accepted, gold).f1


def test_e11_distant_vs_manual(benchmark, reporter):
    from repro.corpus.base import NoiseConfig
    corpus = spouse_corpus.generate(
        spouse_corpus.SpouseConfig(num_couples=100, num_distractor_pairs=100,
                                   num_sibling_pairs=20,
                                   sentences_per_pair=3,
                                   noise=NoiseConfig(kb_coverage=0.6)), seed=51)
    budgets = [10, 25, 50, 100, 200]
    outcome = {"manual": {}}

    def experiment():
        for budget in budgets:
            app = build_unsupervised(corpus, seed=0)
            graph = app.graph
            gold = spouse.gold_mention_pairs(app, corpus)
            gold_keys = {("MarriedMentions", pair) for pair in gold}
            annotator = noisy_oracle(gold_keys, error_rate=ANNOTATOR_ERROR,
                                     seed=1)
            keys = [v.key for v in graph.variables.values()]
            apply_manual_labels(graph, keys, annotator, budget=budget, seed=2)
            marginals = run_graph(app)
            outcome["manual"][budget] = f1_at(app, marginals, corpus)

        ds_app = spouse.build(corpus, seed=0)
        ds_marginals = run_graph(ds_app)
        outcome["distant"] = f1_at(ds_app, ds_marginals, corpus)
        outcome["ds_labels"] = sum(
            1 for v in ds_app.graph.variables.values() if v.evidence is not None)
        return outcome

    once(benchmark, experiment)

    rows = [[f"manual x{budget}", budget, f"{f1:.3f}"]
            for budget, f1 in outcome["manual"].items()]
    rows.append(["distant supervision", outcome["ds_labels"],
                 f"{outcome['distant']:.3f}"])

    reporter.line("E11 / Secs 3.2 & 5.3 -- distant supervision vs manual labels")
    reporter.line(f"paper: many noisy DS labels beat few manual labels; manual")
    reporter.line(f"annotator modelled with {ANNOTATOR_ERROR:.0%} error rate")
    reporter.line()
    reporter.table(["supervision", "labels", "F1"], rows)

    manual = outcome["manual"]
    # more manual labels help
    assert manual[budgets[-1]] > manual[budgets[0]]
    # distant supervision beats small manual budgets
    assert outcome["distant"] > manual[10]
    assert outcome["distant"] > manual[25]
    # and stays competitive with the largest budget
    assert outcome["distant"] >= manual[budgets[-1]] - 0.05
