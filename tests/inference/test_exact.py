"""Exact-inference oracle tests: the enumerator itself, and the chromatic
vectorized Gibbs engine measured against it.

The random graphs cover every general factor function (IMPLY/AND/OR/EQUAL),
negated literals, unary feature factors, and evidence clamping -- the full
semantic surface the sweep has to get right.
"""

import numpy as np
import pytest

from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.inference import GibbsSampler, exact_marginals
from repro.inference.exact import enumerate_worlds, world_log_weights
from repro.inference.map_inference import world_log_weight


def random_graph(seed: int, num_variables: int = 7,
                 with_evidence: bool = True) -> FactorGraph:
    """A small random graph exercising every factor function and negation."""
    rng = np.random.default_rng(seed)
    graph = FactorGraph()
    for i in range(num_variables):
        graph.variable(i)
        if rng.random() < 0.8:
            graph.add_factor(
                FactorFunction.IS_TRUE, [i],
                graph.weight(("u", i), float(rng.normal(0, 1))),
                negated=[bool(rng.random() < 0.3)])
    functions = [FactorFunction.IMPLY, FactorFunction.AND,
                 FactorFunction.OR, FactorFunction.EQUAL]
    for f in range(6):
        function = functions[int(rng.integers(len(functions)))]
        arity = 2 if function == FactorFunction.EQUAL else int(rng.integers(2, 4))
        members = [int(v) for v in
                   rng.choice(num_variables, size=arity, replace=False)]
        negated = [bool(b) for b in rng.random(arity) < 0.3]
        weight = graph.weight(("g", f), float(rng.normal(0, 1)))
        graph.add_factor(function, members, weight, negated=negated)
    if with_evidence:
        for v in rng.choice(num_variables, size=2, replace=False):
            graph.set_evidence(int(v), bool(rng.random() < 0.5))
    return graph


class TestOracle:
    """The enumerator must agree with an independent per-world computation."""

    @pytest.mark.parametrize("seed", range(5))
    def test_log_weights_match_scalar_evaluation(self, seed):
        compiled = CompiledGraph(random_graph(seed))
        worlds = enumerate_worlds(compiled, clamp_evidence=False)
        vectorized = world_log_weights(compiled, worlds)
        scalar = np.array([world_log_weight(compiled, w) for w in worlds])
        np.testing.assert_allclose(vectorized, scalar, atol=1e-12)

    def test_single_variable_closed_form(self):
        graph = FactorGraph()
        v = graph.variable("x")
        graph.add_factor(FactorFunction.IS_TRUE, [v], graph.weight("w", 1.5))
        compiled = CompiledGraph(graph)
        result = exact_marginals(compiled)
        expected = np.exp(1.5) / (1.0 + np.exp(1.5))
        assert result.marginals[0] == pytest.approx(expected)
        assert result.log_partition == pytest.approx(np.log(1.0 + np.exp(1.5)))
        assert result.num_worlds == 2
        assert result.by_key(compiled) == {"x": pytest.approx(expected)}

    def test_evidence_clamps_enumeration(self):
        graph = FactorGraph()
        a = graph.variable("a")
        b = graph.variable("b")
        graph.add_factor(FactorFunction.EQUAL, [a, b], graph.weight("w", 2.0))
        graph.set_evidence("a", True)
        compiled = CompiledGraph(graph)
        clamped = exact_marginals(compiled, clamp_evidence=True)
        assert clamped.num_worlds == 2
        assert clamped.marginals[compiled.variable_index("a")] == 1.0
        expected_b = np.exp(2.0) / (np.exp(2.0) + 1.0)
        assert clamped.marginals[compiled.variable_index("b")] == \
            pytest.approx(expected_b)
        free = exact_marginals(compiled, clamp_evidence=False)
        assert free.num_worlds == 4
        assert free.marginals[compiled.variable_index("a")] == pytest.approx(0.5)

    def test_refuses_oversized_enumeration(self):
        graph = FactorGraph()
        for i in range(22):
            graph.variable(i)
            graph.add_factor(FactorFunction.IS_TRUE, [i],
                             graph.weight(("w", i), 0.1))
        compiled = CompiledGraph(graph)
        with pytest.raises(ValueError, match="free"):
            exact_marginals(compiled)
        # a tighter explicit ceiling also applies
        with pytest.raises(ValueError):
            exact_marginals(compiled, max_free_variables=5)


class TestGibbsMatchesOracle:
    """Chromatic-engine marginals must converge to the exact marginals."""

    @pytest.mark.parametrize("seed", range(4))
    def test_clamped_chain_converges(self, seed):
        compiled = CompiledGraph(random_graph(seed))
        sampler = GibbsSampler(compiled, seed=100 + seed, engine="chromatic")
        estimated = sampler.marginals(num_samples=8000, burn_in=400)
        expected = exact_marginals(compiled)
        np.testing.assert_allclose(estimated.marginals, expected.marginals,
                                   atol=0.03)

    @pytest.mark.parametrize("seed", range(2))
    def test_free_chain_converges(self, seed):
        compiled = CompiledGraph(random_graph(seed))
        sampler = GibbsSampler(compiled, seed=200 + seed,
                               clamp_evidence=False, engine="chromatic")
        estimated = sampler.marginals(num_samples=8000, burn_in=400)
        expected = exact_marginals(compiled, clamp_evidence=False)
        np.testing.assert_allclose(estimated.marginals, expected.marginals,
                                   atol=0.03)

    def test_every_factor_function_in_isolation(self):
        cases = [
            (FactorFunction.IMPLY, 3, [False, True, False]),
            (FactorFunction.AND, 2, [True, False]),
            (FactorFunction.OR, 3, [False, False, True]),
            (FactorFunction.EQUAL, 2, [True, False]),
        ]
        for function, arity, negated in cases:
            graph = FactorGraph()
            for i in range(arity):
                graph.variable(i)
                graph.add_factor(FactorFunction.IS_TRUE, [i],
                                 graph.weight(("u", i), 0.4 * (i - 1)))
            graph.add_factor(function, list(range(arity)),
                             graph.weight("g", 1.3), negated=negated)
            compiled = CompiledGraph(graph)
            estimated = GibbsSampler(compiled, seed=9).marginals(
                num_samples=8000, burn_in=400)
            expected = exact_marginals(compiled)
            np.testing.assert_allclose(
                estimated.marginals, expected.marginals, atol=0.03,
                err_msg=f"function={function.name}")


class TestEngineEquivalence:
    """sweep() and sweep_reference() are the same chain, bit for bit."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("clamp", [True, False])
    def test_identical_trajectories(self, seed, clamp):
        compiled = CompiledGraph(random_graph(seed))
        chromatic = GibbsSampler(compiled, seed=seed, clamp_evidence=clamp,
                                 engine="chromatic")
        reference = GibbsSampler(compiled, seed=seed, clamp_evidence=clamp,
                                 engine="reference")
        world_c = chromatic.initial_assignment()
        world_r = reference.initial_assignment()
        np.testing.assert_array_equal(world_c, world_r)
        for sweep in range(50):
            sampled_c = chromatic.sweep(world_c)
            sampled_r = reference.sweep(world_r)
            assert sampled_c == sampled_r
            np.testing.assert_array_equal(world_c, world_r,
                                          err_msg=f"diverged at sweep {sweep}")

    def test_identical_marginal_results(self):
        compiled = CompiledGraph(random_graph(3))
        m_chromatic = GibbsSampler(compiled, seed=7, engine="chromatic") \
            .marginals(num_samples=300, burn_in=30)
        m_reference = GibbsSampler(compiled, seed=7, engine="reference") \
            .marginals(num_samples=300, burn_in=30)
        np.testing.assert_array_equal(m_chromatic.marginals,
                                      m_reference.marginals)

    def test_unknown_engine_rejected(self):
        compiled = CompiledGraph(random_graph(0))
        with pytest.raises(ValueError, match="engine"):
            GibbsSampler(compiled, engine="turbo")
