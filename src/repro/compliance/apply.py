"""The snapshot-publish transform: scrub marginals without touching one.

:func:`scrub_marginals` is what the serving engine calls while constructing
every published :class:`~repro.serve.snapshot.Snapshot`: it rewrites the
variable *keys* (``(relation, values_tuple)``) under a
:class:`~repro.compliance.policy.CompliancePolicy` and copies the
probabilities through untouched.  The guarantees the property suite pins:

* probabilities are bit-identical — the scrub never recomputes, rounds, or
  reorders a marginal, it only relabels (or drops) keys;
* under ``anonymize`` the relabeling is *injective* (HMAC surrogates plus a
  collision backstop), so acceptance decisions, joins, and dedup survive:
  ``scrubbed.output_tuples(r)`` is exactly ``{transform(t) for t in
  raw.output_tuples(r)}``;
* the transform is a pure function of ``(marginals, schemas, policy)`` —
  recovery replays publish the same scrubbed views bit for bit.

Two degradations are defined rather than left to chance:

* a :class:`~repro.compliance.anonymizer.SurrogateCollision` during publish
  degrades *that cell* to redaction instead of raising — a publish runs
  inside the service apply loop, and a one-in-10^8 birthday event must not
  kill serving (direct :class:`Anonymizer` use still raises, so audits and
  the property suite keep the strict backstop);
* when redaction collapses two distinct variable keys onto one scrubbed
  key, the published probability is the **maximum** across the merged
  originals — commutative, so independent of publish order, and
  conservative for thresholded acceptance (a tuple that was accepted raw
  stays accepted scrubbed).

Action semantics per column (see :mod:`repro.compliance.policy`): explicit
rules transform the **whole cell value** (the operator declared the column
sensitive, matched or not); the detection-driven default action transforms
**detected spans only**, leaving non-PII cells of a mixed column alone.
"""

from __future__ import annotations

from time import perf_counter
from typing import Mapping, Sequence

from repro import obs
from repro.compliance.anonymizer import Anonymizer, SurrogateCollision
from repro.compliance.detectors import DEFAULT_DETECTORS, Detector, mask
from repro.compliance.manifest import ColumnReport, ComplianceManifest
from repro.compliance.policy import CompliancePolicy
from repro.compliance.scanner import Scanner


def scrub_value(value, action: str, detector: str, anonymizer: Anonymizer,
                detections=None):
    """One cell under one action.

    With ``detections`` (the detection-driven path) only the detected spans
    are rewritten; without (the explicit-rule path) the whole value is.
    """
    if action == "allow":
        return value
    text = value if isinstance(value, str) else str(value)
    if detections:
        if action == "anonymize":
            return anonymizer.anonymize_text(text, detections)
        return anonymizer.redact_text(text, detections)
    if action == "anonymize":
        return anonymizer.surrogate(detector, text)
    return f"[REDACTED:{detector}]"


def scrub_marginals(marginals: Mapping,
                    schemas: Mapping[str, Sequence[str]] | None,
                    policy: CompliancePolicy,
                    anonymizer: Anonymizer | None = None,
                    detectors: Sequence[Detector] = DEFAULT_DETECTORS,
                    ) -> tuple[dict, ComplianceManifest]:
    """``(scrubbed_marginals, manifest)`` for one publish.  See above."""
    started = perf_counter()
    schemas = schemas or {}
    anonymizer = anonymizer if anonymizer is not None \
        else Anonymizer(policy.key)
    scanner = Scanner(policy, detectors)

    # ---- pass 1: detect every distinct cell once, decide column actions
    grouped: dict[str, list[tuple]] = {}
    for (relation, values) in marginals:
        grouped.setdefault(relation, []).append(values)

    # (relation, column_index) -> {"action", "detector", "reports"}
    column_plan: dict[tuple[str, int], dict] = {}
    # (relation, column_index, cell) -> [Detection] at/above min_confidence
    cell_hits: dict[tuple[str, int, object], list] = {}
    for relation, rows in grouped.items():
        width = max(len(values) for values in rows)
        names = list(schemas.get(relation, ()))[:width]
        names += [f"col{i}" for i in range(len(names), width)]
        for index, column in enumerate(names):
            per_detector: dict[str, list] = {}
            scanned = 0
            for values in rows:
                if len(values) <= index:
                    continue
                cell = values[index]
                scanned += 1
                key = (relation, index, cell)
                if key not in cell_hits:
                    cell_hits[key] = [
                        d for d in scanner.detect_value(cell)
                        if d.confidence >= policy.min_confidence]
                for detection in cell_hits[key]:
                    per_detector.setdefault(detection.detector,
                                            []).append(detection)
            dominant = max(per_detector,
                           key=lambda name: (len(per_detector[name]),
                                             name)) if per_detector else None
            explicit = policy.action_for(relation, column)
            if explicit is not None:
                action = explicit
            elif per_detector and policy.default_action != "allow":
                action = policy.default_action
            else:
                action = "allow"
            reports = []
            for name in sorted(per_detector):
                detections = per_detector[name]
                examples = []
                for detection in detections:
                    masked = mask(detection.value)
                    if masked not in examples:
                        examples.append(masked)
                    if len(examples) >= policy.max_examples:
                        break
                reports.append(ColumnReport(
                    relation=relation, column=column, detector=name,
                    rows_scanned=scanned, hits=len(detections),
                    confidence=(sum(d.confidence for d in detections)
                                / len(detections)),
                    examples=tuple(examples), action=action))
            if explicit is not None and explicit != "allow" \
                    and not reports:
                # the operator ruled a column the detectors missed; record
                # the action so the manifest shows the full applied policy
                reports.append(ColumnReport(
                    relation=relation, column=column, detector="rule",
                    rows_scanned=scanned, hits=scanned, confidence=1.0,
                    examples=(), action=action))
            column_plan[(relation, index)] = {
                "action": action, "explicit": explicit is not None,
                "detector": dominant if dominant is not None else "value",
                "reports": reports}

    # ---- pass 2: rebuild the mapping in original publish order
    scrubbed: dict = {}
    dropped = rewritten = collisions = surrogate_collisions = 0
    for (relation, values), probability in marginals.items():
        new_values = []
        drop = False
        changed = False
        for index, cell in enumerate(values):
            plan = column_plan.get((relation, index))
            if plan is None or plan["action"] == "allow":
                new_values.append(cell)
                continue
            if plan["action"] == "drop":
                drop = True
                break
            if plan["explicit"]:
                detections = None
            else:
                detections = cell_hits.get((relation, index, cell), ())
            if detections is not None and not detections:
                new_cell = cell
            else:
                try:
                    new_cell = scrub_value(cell, plan["action"],
                                           plan["detector"], anonymizer,
                                           detections=detections)
                except SurrogateCollision:
                    # birthday event inside the surrogate space: degrade
                    # this cell to redaction rather than failing the
                    # publish (and with it the service apply loop)
                    surrogate_collisions += 1
                    new_cell = scrub_value(cell, "redact",
                                           plan["detector"], anonymizer,
                                           detections=detections)
            changed = changed or new_cell != cell
            new_values.append(new_cell)
        if drop:
            dropped += 1
            continue
        key = (relation, tuple(new_values))
        if key in scrubbed:
            # reachable via redact (or a degraded surrogate): keep the max
            # probability — commutative, hence publish-order independent
            collisions += 1
            scrubbed[key] = max(scrubbed[key], probability)
        else:
            scrubbed[key] = probability
        if changed:
            rewritten += 1

    reports = [report
               for (_rel, _idx) in sorted(column_plan)
               for report in column_plan[(_rel, _idx)]["reports"]]
    manifest = ComplianceManifest(source="publish", reports=tuple(reports),
                                  rows_scanned=len(marginals))
    if obs.enabled():
        obs.observe("compliance.publish.seconds", perf_counter() - started)
        obs.count("compliance.publish.rewritten", rewritten)
        obs.count("compliance.publish.dropped", dropped)
        if collisions:
            obs.count("compliance.publish.collisions", collisions)
        if surrogate_collisions:
            obs.count("compliance.publish.surrogate_collisions",
                      surrogate_collisions)
    return scrubbed, manifest
