"""Shared-memory array packs: layout, roundtrips, compiled-graph views."""

import numpy as np
import pytest

from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.inference import GibbsSampler
from repro.parallel import SharedArrayPack, attach_compiled, share_compiled
from repro.parallel.shm import _ALIGNMENT


def small_graph(n=12):
    graph = FactorGraph()
    prev = graph.variable("v0")
    graph.add_factor(FactorFunction.IS_TRUE, [prev], graph.weight("u", 0.5))
    for i in range(1, n):
        cur = graph.variable(f"v{i}")
        graph.add_factor(FactorFunction.EQUAL, [prev, cur],
                         graph.weight("c", 0.8))
        prev = cur
    return CompiledGraph(graph)


class TestSharedArrayPack:
    def test_roundtrip_views(self):
        arrays = {"a": np.arange(7, dtype=np.int64),
                  "b": np.linspace(0, 1, 5, dtype=np.float64),
                  "c": np.array([[1, 2], [3, 4]], dtype=np.int32)}
        with SharedArrayPack(arrays, scalars={"n": 7}) as pack:
            for name, original in arrays.items():
                assert np.array_equal(pack.views[name], original)
                assert pack.views[name].dtype == original.dtype
            assert pack.handle.scalars == {"n": 7}

    def test_alignment(self):
        arrays = {"a": np.ones(3, dtype=np.int8),
                  "b": np.ones(3, dtype=np.float64)}
        with SharedArrayPack(arrays) as pack:
            for spec in pack.handle.specs.values():
                assert spec.offset % _ALIGNMENT == 0

    def test_attach_sees_parent_writes(self):
        with SharedArrayPack({"x": np.zeros(4)}) as pack:
            from repro.parallel import AttachedPack
            attached = AttachedPack(pack.handle)
            pack.views["x"][2] = 9.5
            assert attached.views["x"][2] == 9.5
            attached.views["x"][0] = -1.0       # and writes flow back
            assert pack.views["x"][0] == -1.0
            attached.close()

    def test_close_idempotent(self):
        pack = SharedArrayPack({"x": np.zeros(2)})
        pack.close()
        pack.close()

    def test_empty_pack(self):
        with SharedArrayPack({}) as pack:
            assert pack.views == {}

    def test_unlinked_segment_gone(self):
        pack = SharedArrayPack({"x": np.zeros(2)})
        name = pack.handle.shm_name
        pack.close()
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestShareCompiled:
    def test_view_matches_compiled(self):
        compiled = small_graph()
        pack = share_compiled(compiled)
        try:
            attached, view = attach_compiled(pack.handle)
            assert view.num_variables == compiled.num_variables
            assert view.num_weights == compiled.num_weights
            assert np.array_equal(view.fv_indptr, compiled.fv_indptr)
            assert np.array_equal(view.weight_values, compiled.weight_values)
            assert np.array_equal(view.var_colors, compiled.var_colors)
            attached.close()
        finally:
            pack.close()

    def test_sampler_on_view_is_bit_identical(self):
        """A GibbsSampler over the shared view runs the exact same chain."""
        compiled = small_graph()
        pack = share_compiled(compiled)
        try:
            attached, view = attach_compiled(pack.handle)
            direct = GibbsSampler(compiled, seed=11)
            shared = GibbsSampler(view, seed=11)
            world_a = direct.initial_assignment()
            world_b = shared.initial_assignment()
            assert np.array_equal(world_a, world_b)
            for _ in range(4):
                drawn_a = direct.sweep(world_a)
                drawn_b = shared.sweep(world_b)
                assert drawn_a == drawn_b
                assert np.array_equal(world_a, world_b)
            attached.close()
        finally:
            pack.close()
