"""Regex + confidence PII detectors.

Each detector recognises one PII class inside free text (or an exact column
value) and reports :class:`Detection` spans with a confidence in ``[0, 1]``.
Confidence is *structural*: a match that also passes a semantic check (a
Luhn-valid card number, an SSN with a plausible area prefix, a location
preceded by a person-adjacent preposition) scores higher than one that only
matches the surface pattern.  The scanner aggregates these per column; the
policy layer thresholds them (``CompliancePolicy.min_confidence``).

Detectors are pure and deterministic — the same text always yields the same
detections in the same order — which is what lets snapshot scrubbing be a
replayable transform (recovery republishes bit-identical scrubbed views).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Detection:
    """One PII match: which detector, where, and how confident."""

    detector: str
    value: str
    start: int
    end: int
    confidence: float


class Detector:
    """Base class: subclasses set ``name`` and implement :meth:`detect`."""

    name: str = "detector"

    def detect(self, text: str) -> list[Detection]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _spans(pattern: re.Pattern, text: str) -> Iterable[re.Match]:
    return pattern.finditer(text)


class EmailDetector(Detector):
    """RFC-ish email addresses; the one PII class regexes truly nail."""

    name = "email"
    PATTERN = re.compile(
        r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9](?:[A-Za-z0-9.-]*[A-Za-z0-9])?"
        r"\.[A-Za-z]{2,}\b")

    def detect(self, text: str) -> list[Detection]:
        return [Detection(self.name, m.group(0), m.start(), m.end(), 0.97)
                for m in _spans(self.PATTERN, text)]


class PhoneDetector(Detector):
    """US-shaped phone numbers: dashed, dotted, parenthesized, and the
    7-digit local form classified ads actually print (``555-0187``)."""

    name = "phone"
    #: (pattern, confidence) — longer, more structured forms score higher.
    PATTERNS = (
        (re.compile(r"(?<!\d)\(\d{3}\)\s*\d{3}[-.]\d{4}(?!\d)"), 0.95),
        (re.compile(r"(?<![\d.-])\d{3}[-.]\d{3}[-.]\d{4}(?![\d.-])"), 0.9),
        (re.compile(r"(?<![\d.-])\d{3}[-.]\d{4}(?![\d.-])"), 0.6),
    )

    def detect(self, text: str) -> list[Detection]:
        found: list[Detection] = []
        claimed: list[tuple[int, int]] = []
        for pattern, confidence in self.PATTERNS:
            for m in _spans(pattern, text):
                span = (m.start(), m.end())
                # a 7-digit match inside an already-claimed 10-digit span is
                # the same number seen twice; keep the structured reading
                if any(span[0] >= s and span[1] <= e for s, e in claimed):
                    continue
                claimed.append(span)
                found.append(Detection(self.name, m.group(0),
                                       span[0], span[1], confidence))
        found.sort(key=lambda d: (d.start, d.end))
        return found


class SsnDetector(Detector):
    """``AAA-GG-SSSS`` social security numbers with area-prefix sanity."""

    name = "ssn"
    PATTERN = re.compile(r"(?<![\d-])(\d{3})-(\d{2})-(\d{4})(?![\d-])")

    def detect(self, text: str) -> list[Detection]:
        found = []
        for m in _spans(self.PATTERN, text):
            area, group, serial = m.group(1), m.group(2), m.group(3)
            plausible = (area not in ("000", "666") and area < "900"
                         and group != "00" and serial != "0000")
            found.append(Detection(self.name, m.group(0), m.start(), m.end(),
                                   0.9 if plausible else 0.4))
        return found


def luhn_valid(digits: str) -> bool:
    """The Luhn checksum every real card number satisfies."""
    total, parity = 0, len(digits) % 2
    for index, char in enumerate(digits):
        digit = ord(char) - 48
        if index % 2 == parity:
            digit *= 2
            if digit > 9:
                digit -= 9
        total += digit
    return total % 10 == 0


class CreditCardDetector(Detector):
    """13–16 digit card numbers (optionally space/dash grouped); Luhn-valid
    matches are near-certain, the rest are probably order ids."""

    name = "credit_card"
    PATTERN = re.compile(
        r"(?<![\d-])(?:\d[ -]?){12,15}\d(?![\d-])")

    def detect(self, text: str) -> list[Detection]:
        found = []
        for m in _spans(self.PATTERN, text):
            digits = re.sub(r"[ -]", "", m.group(0))
            if not 13 <= len(digits) <= 16:
                continue
            confidence = 0.95 if luhn_valid(digits) else 0.3
            found.append(Detection(self.name, m.group(0),
                                   m.start(), m.end(), confidence))
        return found


#: Default place gazetteer: the generated corpora's city inventory plus a
#: few real-world shapes, so the detector works out of the box on both.
DEFAULT_PLACES = (
    "Fairview", "Riverton", "Lakewood", "Brookside", "Hillcrest",
    "Mapleton", "Ashford", "Greenfield", "Stonebridge", "Westvale",
    "Springfield", "Shelbyville", "Centerville",
)

#: Words that tie a place to a person when they appear right before it.
_ADJACENT = ("in", "near", "at", "from", "around", "lives", "located")


class LocationDetector(Detector):
    """Gazetteer-based person-adjacent locations.

    A bare place name is weak evidence (0.5) — plenty of corpora mention
    cities editorially.  A place preceded by a person-adjacent preposition
    ("in Fairview", "near Lakewood") reads as *someone's* location and
    scores 0.8.  The gazetteer is configurable per deployment.
    """

    name = "location"

    def __init__(self, places: Sequence[str] = DEFAULT_PLACES) -> None:
        self.places = tuple(places)
        escaped = "|".join(re.escape(place) for place in self.places)
        self._pattern = re.compile(rf"\b({escaped})\b")

    def detect(self, text: str) -> list[Detection]:
        found = []
        for m in _spans(self._pattern, text):
            prefix = text[:m.start()].rstrip().rsplit(None, 1)
            adjacent = bool(prefix) and prefix[-1].lower() in _ADJACENT
            found.append(Detection(self.name, m.group(0), m.start(), m.end(),
                                   0.8 if adjacent else 0.5))
        return found


def default_detectors(places: Sequence[str] | None = None) -> tuple[Detector, ...]:
    """The standard detector battery, optionally with a custom gazetteer."""
    return (EmailDetector(), PhoneDetector(), SsnDetector(),
            CreditCardDetector(),
            LocationDetector(places) if places is not None
            else LocationDetector())


DEFAULT_DETECTORS: tuple[Detector, ...] = default_detectors()
DETECTOR_NAMES: tuple[str, ...] = tuple(d.name for d in DEFAULT_DETECTORS)


def mask(value: str) -> str:
    """A non-reversible display form for manifest examples.

    Keeps only the first character and the length shape (non-alphanumerics
    survive so ``555-0187`` masks to ``5**-****``) — enough to recognise
    *what kind* of value leaked without re-leaking it.
    """
    if not value:
        return value
    masked = [value[0]]
    for char in value[1:]:
        masked.append(char if not char.isalnum() else "*")
    return "".join(masked)
