"""ServeEngine: the deterministic ingest-batch -> KB-version state machine."""

import pytest

from repro.serve import (AddRules, RemoveDocuments, ServeConfig, ServeEngine,
                         add_documents, add_rows, remove_rows)
from tests.serve.conftest import (RUN_KWARGS, bootstrap_ops, keys_for_token,
                                  make_app_factory)


def fresh_engine(**config_changes):
    config = ServeConfig(refresh_samples=40, refresh_burn_in=10,
                         **config_changes)
    return ServeEngine(make_app_factory(), config=config,
                       run_kwargs=RUN_KWARGS)


@pytest.fixture(scope="module")
def booted():
    engine = fresh_engine()
    snapshot = engine.bootstrap(bootstrap_ops())
    return engine, snapshot


class TestBootstrap:
    def test_publishes_version_zero(self, booted):
        _, snapshot = booted
        assert snapshot.version == 0
        assert snapshot.lsn == 0
        assert snapshot.refresh == "full_run"
        # four documents, one good + one bad mention each
        assert len(snapshot) == 8

    def test_supervised_marginals_split(self, booted):
        _, snapshot = booted
        accepted = snapshot.output_tuples("GoodName")
        values = {v[0] for v in accepted}
        assert any("apple" not in v and ":1" in v for v in values) or accepted
        # good mentions (positions 1) accepted, bad (position 4) rejected
        top = snapshot.top("GoodName", k=3)
        assert all(probability > 0.5 for _, probability in top)

    def test_double_bootstrap_rejected(self, booted):
        engine, _ = booted
        with pytest.raises(RuntimeError, match="already bootstrapped"):
            engine.bootstrap([])

    def test_apply_before_bootstrap_rejected(self):
        engine = fresh_engine()
        with pytest.raises(RuntimeError, match="bootstrap the engine"):
            engine.apply_batch([], lsn=1)


class TestSnapshotReads:
    def test_marginal_lookup_and_default(self, booted):
        _, snapshot = booted
        key = next(iter(snapshot.marginals))
        assert snapshot.marginal(key) == snapshot.marginals[key]
        assert snapshot.marginal(("GoodName", ("nope",)), default=0.5) == 0.5
        with pytest.raises(KeyError):
            snapshot.marginal(("GoodName", ("nope",)))

    def test_relations_and_thresholds(self, booted):
        _, snapshot = booted
        assert snapshot.relations() == ["GoodName"]
        assert snapshot.output_tuples("GoodName", threshold=0.0) \
            >= snapshot.output_tuples("GoodName", threshold=1.0)


class TestApplyBatch:
    def test_document_arrival_adds_variables(self):
        engine = fresh_engine()
        before = engine.bootstrap(bootstrap_ops())
        after = engine.apply_batch(
            [add_documents([("new", "the grape and the blight sat there .")])],
            lsn=1)
        assert after.version == 1 and after.lsn == 1
        assert after.refresh in ("sampling", "variational")
        new_keys = set(after.marginals) - set(before.marginals)
        assert len(new_keys) == 2

    def test_untouched_marginals_bit_identical(self):
        engine = fresh_engine(strategy="sampling")
        before = engine.bootstrap(bootstrap_ops())
        after = engine.apply_batch(
            [add_documents([("new", "the melon sat there .")])], lsn=1)
        for key, probability in before.marginals.items():
            assert after.marginals[key] == probability

    def test_document_removal(self):
        engine = fresh_engine()
        before = engine.bootstrap(bootstrap_ops())
        after = engine.apply_batch([RemoveDocuments(("d3",))], lsn=1)
        gone = set(before.marginals) - set(after.marginals)
        assert len(gone) == 2                    # d3's two mentions retracted
        assert all("d3" in str(key) for key in gone)

    def test_supervision_retraction(self):
        # variational refresh: an unclamped variable's mean-field marginal
        # is strictly inside (0, 1), so retraction is unambiguous
        engine = fresh_engine(strategy="variational")
        engine.bootstrap(bootstrap_ops())
        after = engine.apply_batch(
            [remove_rows("GoodList", [("apple",)])], lsn=1)
        apple = keys_for_token(engine.app, "apple")
        assert apple
        # no longer clamped to 1.0; the learned feature keeps it high
        assert all(0.5 < after.marginals[key] < 1.0 for key in apple)

    def test_empty_batch_publishes_unchanged(self):
        engine = fresh_engine()
        before = engine.bootstrap(bootstrap_ops())
        after = engine.apply_batch([], lsn=1)
        assert after.refresh == "none"
        assert after.version == 1
        assert dict(after.marginals) == dict(before.marginals)

    def test_forced_strategies(self):
        for strategy in ("sampling", "variational"):
            engine = fresh_engine(strategy=strategy)
            engine.bootstrap(bootstrap_ops())
            after = engine.apply_batch(
                [add_documents([("new", "the fig sat there .")])], lsn=1)
            assert after.refresh == strategy

    def test_large_delta_falls_back_to_full_run(self):
        engine = fresh_engine(full_rerun_fraction=0.001)
        engine.bootstrap(bootstrap_ops())
        after = engine.apply_batch(
            [add_documents([("new", "the fig sat there .")])], lsn=1)
        assert after.refresh == "full_run"


class TestRuleDeltas:
    def test_rule_delta_triggers_rebuild(self):
        engine = fresh_engine()
        before = engine.bootstrap(bootstrap_ops())
        rules = ("ExtraGood(token text).\n"
                 "GoodName_Ev(m, true) :- "
                 "NameMention(s, m, t, p), ExtraGood(t).")
        rebuilt = engine.apply_batch([AddRules(rules)], lsn=1)
        assert rebuilt.refresh == "full_run"
        # the data survived the rebuild
        assert set(rebuilt.marginals) == set(before.marginals)
        # the new relation is live: supervising 'fig' clamps it to true
        after = engine.apply_batch([add_rows("ExtraGood", [("fig",)])], lsn=2)
        fig = keys_for_token(engine.app, "fig")
        assert fig and all(after.marginals[key] == 1.0 for key in fig)

    def test_rebuild_does_not_double_supervision(self):
        engine = fresh_engine()
        engine.bootstrap(bootstrap_ops())
        before = engine.app.grounder.state_dict()["evidence_votes"]
        engine.apply_batch([AddRules("ExtraGood(token text).")], lsn=1)
        after = engine.app.grounder.state_dict()["evidence_votes"]
        # re-extraction reproduces exactly the votes one grounding pass
        # produces (copying evidence relations over would double them)
        assert after == before
        assert all(positive + negative == 1
                   for _values, positive, negative in after["GoodName"])


class TestCheckpointRestore:
    def test_restore_is_bit_identical(self):
        engine = fresh_engine()
        engine.bootstrap(bootstrap_ops())
        engine.apply_batch(
            [add_documents([("new", "the grape sat there .")])], lsn=1)
        payload = engine.checkpoint_payload()

        restored = ServeEngine.restore(payload, make_app_factory(),
                                       config=engine.config,
                                       run_kwargs=RUN_KWARGS)
        snapshot = restored.current_snapshot(lsn=1)
        assert snapshot.version == engine.version
        assert dict(snapshot.marginals) == engine._marginals

        # and the *next* batch behaves identically on both engines
        batch = [add_documents([("n2", "the melon and the decay sat there .")])]
        original_next = engine.apply_batch(batch, lsn=2)
        restored_next = restored.apply_batch(batch, lsn=2)
        assert dict(original_next.marginals) == dict(restored_next.marginals)

    def test_payload_is_json_compatible(self):
        import json
        engine = fresh_engine()
        engine.bootstrap(bootstrap_ops())
        payload = engine.checkpoint_payload()
        assert json.loads(json.dumps(payload))["engine_version"] == 0

    def test_rule_deltas_survive_restore(self):
        engine = fresh_engine()
        engine.bootstrap(bootstrap_ops())
        engine.apply_batch([AddRules("ExtraGood(token text).")], lsn=1)
        restored = ServeEngine.restore(engine.checkpoint_payload(),
                                       make_app_factory(),
                                       config=engine.config,
                                       run_kwargs=RUN_KWARGS)
        assert restored.rule_deltas == engine.rule_deltas
        assert "ExtraGood" in restored.app.db
