"""Crash recovery: kill the apply loop mid-batch, recover, compare bits.

The durability contract under test: a batch is committed the moment its WAL
record is on disk, so a crash *after* the append but *before* (or during)
the in-memory apply must not lose it — recovery replays it and lands on
marginals bit-identical to a service that never crashed.
"""

import warnings

import pytest

from repro.serve import (KBService, ServeConfig, ServiceFailed, add_documents,
                         remove_rows)
from tests.serve.conftest import RUN_KWARGS, bootstrap_ops, make_app_factory


class Boom(RuntimeError):
    """The injected fault."""


BATCHES = [
    [add_documents([("n0", "the grape and the blight sat there .")])],
    [remove_rows("GoodList", [("plum",)])],
    [add_documents([("n1", "the melon sat there .")])],
]


def make_config(**changes):
    options = dict(checkpoint_every=0, refresh_samples=40, refresh_burn_in=10)
    options.update(changes)
    return ServeConfig(**options)


def run_uninterrupted(tmp_path, config):
    """The control: every batch applied with no crash."""
    service = KBService.create(tmp_path / "control", make_app_factory(),
                               bootstrap_ops(), config=config,
                               run_kwargs=RUN_KWARGS)
    with service:
        for batch in BATCHES:
            snapshot = service.ingest(batch, wait=True)
    return snapshot


def crash_at_last_batch(tmp_path, config):
    """The victim: dies right after WAL-appending the final batch."""
    service = KBService.create(tmp_path / "victim", make_app_factory(),
                               bootstrap_ops(), config=config,
                               run_kwargs=RUN_KWARGS)
    for batch in BATCHES[:-1]:
        service.ingest(batch, wait=True)

    def crash(lsn, batch):
        raise Boom(f"injected crash after WAL append of lsn {lsn}")

    service.fault_hooks["after_wal_append"] = crash
    with pytest.raises(ServiceFailed, match="injected crash"):
        service.ingest(BATCHES[-1], wait=True)
    # the loop is dead; further ingest is refused
    with pytest.raises(ServiceFailed):
        service.submit(BATCHES[0][0])
    service.wal.close()
    return service


@pytest.mark.parametrize("checkpoint_every", [0, 1],
                         ids=["wal_only", "checkpoint_plus_tail"])
def test_recovery_is_bit_identical(tmp_path, checkpoint_every):
    config = make_config(checkpoint_every=checkpoint_every)
    control = run_uninterrupted(tmp_path, config)
    crashed = crash_at_last_batch(tmp_path, config)

    # the batch the victim never applied is durably in its WAL
    assert crashed.wal.last_lsn == len(BATCHES)

    recovered = KBService.open(tmp_path / "victim", make_app_factory(),
                               config=config, run_kwargs=RUN_KWARGS)
    with recovered:
        snapshot = recovered.client().snapshot()
        assert snapshot.version == control.version
        assert snapshot.lsn == control.lsn
        assert dict(snapshot.marginals) == dict(control.marginals)

        # the recovered service keeps serving: one more identical batch on
        # both sides stays bit-identical (chains resume in lockstep)
        extra = [add_documents([("n2", "the fig and the decay sat there .")])]
        after = recovered.ingest(extra, wait=True)
    followup = KBService.create(tmp_path / "control2", make_app_factory(),
                                bootstrap_ops(), config=config,
                                run_kwargs=RUN_KWARGS)
    with followup:
        for batch in BATCHES + [extra]:
            expected = followup.ingest(batch, wait=True)
    assert dict(after.marginals) == dict(expected.marginals)


def test_torn_apply_replays_the_durable_batch(tmp_path):
    """A fault *in* the engine apply (after the WAL write) still recovers;
    every acknowledged batch survives."""
    config = make_config(checkpoint_every=1)
    service = KBService.create(tmp_path / "svc", make_app_factory(),
                               bootstrap_ops(), config=config,
                               run_kwargs=RUN_KWARGS)
    acknowledged = service.ingest(BATCHES[0], wait=True)
    service.fault_hooks["after_wal_append"] = \
        lambda lsn, batch: (_ for _ in ()).throw(Boom("mid-batch"))
    with pytest.raises(ServiceFailed):
        service.ingest(BATCHES[1], wait=True)
    service.wal.close()

    recovered = KBService.open(tmp_path / "svc", make_app_factory(),
                               config=config, run_kwargs=RUN_KWARGS)
    with recovered:
        snapshot = recovered.client().snapshot()
        # both the acknowledged batch and the torn one (it hit the WAL) apply
        assert snapshot.lsn == 2
        for key, probability in acknowledged.marginals.items():
            assert key in snapshot.marginals
        assert snapshot.version >= acknowledged.version


def test_recovery_after_torn_wal_append(tmp_path):
    """A crash *during* the WAL append leaves a torn final line: recovery
    drops that unacknowledged batch, physically repairs the log, and the
    service keeps committing to it — later restarts read a clean log."""
    config = make_config()
    service = KBService.create(tmp_path / "svc", make_app_factory(),
                               bootstrap_ops(), config=config,
                               run_kwargs=RUN_KWARGS)
    service.ingest(BATCHES[0], wait=True)
    service.ingest(BATCHES[1], wait=True)
    service.stop()
    wal_path = tmp_path / "svc" / "ingest.wal"
    text = wal_path.read_text()
    wal_path.write_text(text[:len(text) - 15])   # tear the lsn-2 record

    with pytest.warns(UserWarning, match="truncated tail"):
        recovered = KBService.open(tmp_path / "svc", make_app_factory(),
                                   config=config, run_kwargs=RUN_KWARGS)
    with recovered:
        assert recovered.client().snapshot().lsn == 1     # the torn batch is gone
        # the client retries the unacknowledged batch; it lands at lsn 2
        after = recovered.ingest(BATCHES[1], wait=True)
        assert after.lsn == 2

    # the repaired log is fully clean: a third open replays both records
    # without any truncation warning and lands on identical marginals
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        reopened = KBService.open(tmp_path / "svc", make_app_factory(),
                                  config=config, run_kwargs=RUN_KWARGS)
    assert not [w for w in caught if "truncated tail" in str(w.message)]
    with reopened:
        snapshot = reopened.client().snapshot()
        assert snapshot.lsn == 2
        assert dict(snapshot.marginals) == dict(after.marginals)


def test_recovery_without_wal_tail(tmp_path):
    """checkpoint_every=1 and a clean stop: recovery is checkpoint-only."""
    config = make_config(checkpoint_every=1)
    service = KBService.create(tmp_path / "svc", make_app_factory(),
                               bootstrap_ops(), config=config,
                               run_kwargs=RUN_KWARGS)
    with service:
        final = service.ingest(BATCHES[0], wait=True)
    recovered = KBService.open(tmp_path / "svc", make_app_factory(),
                               config=config, run_kwargs=RUN_KWARGS)
    with recovered:
        snapshot = recovered.client().snapshot()
    assert dict(snapshot.marginals) == dict(final.marginals)
    assert snapshot.lsn == final.lsn
