"""The DeepDive application object: the paper's Figure 1 loop as an API.

A :class:`DeepDive` instance owns a DDlog program, a datastore, candidate
extractors, and (once grounded) a factor graph.  The three execution phases
of Section 3 map to:

1. *candidate generation & feature extraction* -- :meth:`load_documents`
   (NLP + extractor UDFs) and the feature rules run during grounding;
2. *supervision* -- the ``_Ev`` rules run during grounding;
3. *learning & inference* -- :meth:`run`.

The first grounding is a full load; afterwards every data change flows
through DRed incremental grounding, per Section 4.1.
"""

from __future__ import annotations

import warnings
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.core.extractors import (CandidateExtractor, DocumentExtractor,
                                   DocumentExtractorFn, ExtractorFn,
                                   run_document_extractors, run_extractors)
from repro.core.result import RunResult, VariableKey
from repro.datastore import Database
from repro.ddlog.program import DDlogProgram
from repro.eval.error_analysis import (ErrorAnalysisReport, FeatureStat,
                                       build_report, diagnose_miss)
from repro.factorgraph import CompiledGraph, FactorFunction
from repro.grounding import Grounder, GroundingDelta
from repro.inference import GibbsSampler, LearningOptions, learn_weights
from repro.nlp.pipeline import Document, preprocess_corpus, sentence_row
from repro.obs import EngineConfig, PhaseRecorder


class DeepDive:
    """A DeepDive application over one aspirational schema.

    ``config`` is the typed engine configuration: datastore backend,
    columnar dispatch threshold, Gibbs sweep engine, NUMA topology, and
    whether runs are traced.  When omitted it is read once from the
    environment via :meth:`EngineConfig.from_env`; it is then threaded
    explicitly through the database, grounder, and samplers, so mutating
    the environment after construction has no effect.
    """

    def __init__(self, program: DDlogProgram | str, seed: int = 0,
                 config: EngineConfig | None = None) -> None:
        self.program = (DDlogProgram.parse(program)
                        if isinstance(program, str) else program)
        self.config = config if config is not None else EngineConfig.from_env()
        self.db = Database(config=self.config)
        self.seed = seed
        self._extractors: list[CandidateExtractor] = []
        self._document_extractors: list[DocumentExtractor] = []
        self._grounder: Grounder | None = None
        self._recorder = PhaseRecorder(trace=self.config.trace)
        # incremental-inference state: last run's chain + pending deltas
        self._chain_state: dict | None = None
        self._pending_touched: set = set()
        self._ensure_corpus_relations()

    @property
    def _timings(self) -> dict[str, float]:
        """Deprecated phase-timing dict; use ``RunResult.profile`` instead."""
        warnings.warn(
            "DeepDive._timings is deprecated; read RunResult.profile "
            "(or RunResult.phase_timings, derived from it)",
            DeprecationWarning, stacklevel=2)
        return self._recorder.profile().phase_seconds()

    def _ensure_corpus_relations(self) -> None:
        from repro.nlp.pipeline import DOCUMENT_SCHEMA, SENTENCE_SCHEMA
        if "documents" not in self.db:
            self.db.create("documents", DOCUMENT_SCHEMA)
        if "sentences" not in self.db:
            self.db.create("sentences", SENTENCE_SCHEMA)
        self.program.create_relations(self.db)

    # ------------------------------------------------------------ registration
    def udf(self, name: str, returns: str = "text"):
        """Register a DDlog UDF (decorator), forwarding to the program."""
        return self.program.udf(name, returns)

    def register_udf(self, name: str, fn: Callable, returns: str = "text") -> None:
        self.program.register_udf(name, fn, returns)

    def add_extractor(self, relation: str, fn: ExtractorFn, name: str = "") -> None:
        """Register a candidate-generation UDF feeding ``relation``."""
        self._extractors.append(CandidateExtractor(relation, fn, name or fn.__name__))

    def add_document_extractor(self, fn: DocumentExtractorFn,
                               name: str = "") -> None:
        """Register a whole-document extractor (tables, metadata, ...).

        The UDF receives the raw :class:`~repro.nlp.pipeline.Document` and
        returns ``{relation: [rows...]}``.
        """
        self._document_extractors.append(
            DocumentExtractor(fn, name or fn.__name__))

    # ------------------------------------------------------------------- data
    def _staged_rows(self, documents: list[Document]) -> tuple[dict[str, list], int]:
        """The exact base-relation rows ingesting ``documents`` produces.

        Shared by :meth:`load_documents` (which inserts them) and
        :meth:`remove_documents` (which recomputes and deletes them): the
        NLP pipeline and the extractor UDFs are deterministic over document
        content, so recomputation is the inverse of ingestion.
        """
        with obs.span("nlp.preprocess", documents=len(documents),
                      workers=self.config.workers):
            per_doc = preprocess_corpus(
                documents, workers=self.config.workers,
                parallel_mode=self.config.parallel_mode,
                pool_warm=self.config.pool_warm,
                pool_min_work=self.config.pool_min_work,
                pool_owner=self.config.pool_owner)
            sentences = [s for group in per_doc for s in group]
        with obs.span("extractors.run",
                      extractors=len(self._extractors)) as sp:
            candidate_rows = run_extractors(self._extractors, sentences)
            sp.set(candidates=sum(len(r) for r in candidate_rows.values()))
        rows: dict[str, list] = {
            "documents": [(d.doc_id, d.content) for d in documents],
            "sentences": [sentence_row(s) for s in sentences],
        }
        for relation, extracted in candidate_rows.items():
            rows.setdefault(relation, []).extend(extracted)
        for relation, extracted in run_document_extractors(
                self._document_extractors, documents).items():
            rows.setdefault(relation, []).extend(extracted)
        return rows, len(sentences)

    def load_documents(self, documents: Iterable[Document]) -> int:
        """Preprocess documents and run candidate generation over them.

        Before the first :meth:`run` this stages plain inserts (initial
        load); afterwards changes propagate through incremental grounding.
        Returns the number of sentences loaded.
        """
        with self._recorder.phase("candidate_generation") as phase:
            documents = list(documents)
            inserts, num_sentences = self._staged_rows(documents)
            self._apply(inserts=inserts)
            phase.set(documents=len(documents), sentences=num_sentences)
        return num_sentences

    def remove_documents(self, doc_ids: Iterable[str]) -> int:
        """Remove documents and everything ingestion derived from them.

        Recomputes the sentence rows and extractor outputs from the stored
        content (the pipeline is deterministic) and deletes them; the
        deletions then flow through DRed incremental grounding like any
        other retraction.  Returns the number of documents removed.
        """
        documents_relation = self.db["documents"]
        documents: list[Document] = []
        for doc_id in doc_ids:
            stored = next(iter(
                documents_relation.lookup(["doc_id"], [doc_id])), None)
            if stored is None:
                raise KeyError(f"no document {doc_id!r} loaded")
            documents.append(Document(doc_id, stored[1]))
        if not documents:
            return 0
        with self._recorder.phase("document_removal") as phase:
            deletes, num_sentences = self._staged_rows(documents)
            self._apply(deletes=deletes)
            phase.set(documents=len(documents), sentences=num_sentences)
        return len(documents)

    def add_rows(self, relation: str, rows: Iterable[Sequence]) -> None:
        """Add rows to a base relation (e.g. a distant-supervision KB)."""
        self._apply(inserts={relation: [tuple(r) for r in rows]})

    def remove_rows(self, relation: str, rows: Iterable[Sequence]) -> None:
        """Delete rows from a base relation (propagates incrementally)."""
        self._apply(deletes={relation: [tuple(r) for r in rows]})

    def _apply(self, inserts: dict[str, list] | None = None,
               deletes: dict[str, list] | None = None) -> GroundingDelta | None:
        inserts = {k: v for k, v in (inserts or {}).items() if v}
        deletes = {k: v for k, v in (deletes or {}).items() if v}
        if self._grounder is None:
            if deletes:
                raise ValueError("cannot delete rows before the initial grounding")
            for relation, rows in inserts.items():
                self.db.insert(relation, rows)
            return None
        delta = self._grounder.apply_changes(inserts=inserts, deletes=deletes)
        self._pending_touched |= delta.touched_keys
        return delta

    # ----------------------------------------------------- serving interface
    @property
    def chain_state(self) -> dict | None:
        """The last run's materialized Gibbs chain (world + marginals by
        variable key), or ``None`` before any run.  The serving layer
        checkpoints this so a recovered service resumes incremental
        inference from the exact chain the crashed one held."""
        return self._chain_state

    @chain_state.setter
    def chain_state(self, state: dict | None) -> None:
        if state is not None and not {"world", "marginals"} <= set(state):
            raise ValueError("chain state needs 'world' and 'marginals'")
        self._chain_state = state

    def drain_touched(self) -> set:
        """Return and clear the variable keys touched since the last drain.

        Grounding deltas accumulate touched keys until either a run consumes
        them or an external driver (the serving apply loop) drains them to
        seed its own incremental refresh.
        """
        touched = self._pending_touched
        self._pending_touched = set()
        return touched

    def adopt(self, db: Database, grounder: Grounder | None,
              chain_state: dict | None = None) -> None:
        """Install recovered state: database, grounder, and chain.

        Used by checkpoint recovery (:mod:`repro.serve`): the database comes
        from a dump, the grounder from :meth:`Grounder.restore` over it, and
        the chain state from the checkpoint payload.  The app continues as
        if it had built that state itself.
        """
        if grounder is not None and grounder.db is not db:
            raise ValueError("grounder must be bound to the adopted database")
        self.db = db
        self._grounder = grounder
        self._chain_state = chain_state
        self._pending_touched = set()
        self._ensure_corpus_relations()

    # -------------------------------------------------------------- grounding
    @property
    def grounder(self) -> Grounder:
        """The (lazily created) incremental grounder."""
        if self._grounder is None:
            with self._recorder.phase("grounding") as phase:
                self._grounder = Grounder(self.program, self.db,
                                          config=self.config)
                graph = self._grounder.graph
                phase.set(variables=len(graph.variables),
                          factors=len(graph.factors))
        return self._grounder

    @property
    def graph(self):
        return self.grounder.graph

    # -------------------------------------------------------------------- run
    def run(self, threshold: float = 0.9,
            holdout_fraction: float = 0.25,
            learning: LearningOptions | None = None,
            num_samples: int = 300, burn_in: int = 50,
            compute_train_histogram: bool = True) -> RunResult:
        """Execute supervision + learning + inference and return the result.

        ``holdout_fraction`` of the evidence variables is hidden from the
        learner and used for the Figure-5 calibration artifacts.
        """
        graph = self.grounder.graph
        compiled = CompiledGraph(graph)
        rng = np.random.default_rng(self.seed)

        evidence_indices = np.nonzero(compiled.is_evidence)[0]
        holdout_count = int(len(evidence_indices) * holdout_fraction)
        holdout = rng.choice(evidence_indices, size=holdout_count, replace=False) \
            if holdout_count else np.array([], dtype=np.int64)
        holdout_labels = compiled.evidence_values[holdout].copy()
        compiled.is_evidence[holdout] = False
        compiled.note_mutation()

        options = learning or LearningOptions(
            seed=self.seed, engine=self.config.gibbs_engine)
        with self._recorder.phase("learning", replace=True,
                                  optimizer=options.optimizer) as phase:
            diagnostics = learn_weights(compiled, options)
            phase.set(epochs=diagnostics.epochs_run)
        compiled.export_weights(graph)

        with self._recorder.phase("inference", replace=True,
                                  engine=self.config.gibbs_engine) as phase:
            sampler = GibbsSampler(compiled, seed=self.seed,
                                   clamp_evidence=True, config=self.config)
            world = sampler.initial_assignment()
            result = sampler.marginals(num_samples=num_samples,
                                       burn_in=burn_in, assignment=world)
            phase.set(num_samples=num_samples, burn_in=burn_in)
        self._chain_state = {
            "world": {key: bool(world[i])
                      for i, key in enumerate(compiled.var_keys)},
            "marginals": {key: float(result.marginals[i])
                          for i, key in enumerate(compiled.var_keys)},
        }
        self._pending_touched.clear()

        marginals: dict[VariableKey, float] = {}
        for index, key in enumerate(compiled.var_keys):
            marginals[key] = float(result.marginals[index])

        holdout_pairs = [(float(result.marginals[i]), bool(label))
                         for i, label in zip(holdout, holdout_labels)]

        train_pairs: list[tuple[float, bool]] = []
        if compute_train_histogram and compiled.is_evidence.any():
            free = GibbsSampler(compiled, seed=self.seed + 1,
                                clamp_evidence=False, config=self.config)
            free_result = free.marginals(num_samples=max(50, num_samples // 3),
                                         burn_in=burn_in)
            for i in np.nonzero(compiled.is_evidence)[0]:
                train_pairs.append((float(free_result.marginals[i]),
                                    bool(compiled.evidence_values[i])))

        return RunResult(
            marginals=marginals,
            threshold=threshold,
            profile=self._recorder.profile(),
            holdout_pairs=holdout_pairs,
            train_pairs=train_pairs,
            graph_stats=graph.stats(),
            feature_stats=self.feature_stats(),
            learning=diagnostics,
        )

    def run_incremental(self, threshold: float = 0.9, radius: int = 1,
                        num_samples: int = 60, burn_in: int = 15) -> RunResult:
        """Refresh marginals after data changes, without re-learning.

        Implements Section 4.2's sampling-based incremental inference: the
        previous run's Gibbs chain is materialized per variable key; only
        variables within ``radius`` factor-hops of the grounding deltas
        accumulated since the last run are resampled.  Falls back to a full
        :meth:`run` when no chain state exists yet.
        """
        if self._chain_state is None:
            return self.run(threshold=threshold, num_samples=num_samples * 4,
                            burn_in=burn_in * 3)
        from repro.grounding import SamplingMaterialization

        graph = self.grounder.graph
        compiled = CompiledGraph(graph)
        stored_world = self._chain_state["world"]
        stored_marginals = self._chain_state["marginals"]

        rng = np.random.default_rng(self.seed + 7)
        world = rng.random(compiled.num_variables) < 0.5
        marginals = np.full(compiled.num_variables, 0.5)
        changed: set[int] = set()
        for index, key in enumerate(compiled.var_keys):
            if key in stored_world:
                world[index] = stored_world[key]
                marginals[index] = stored_marginals[key]
            else:
                changed.add(index)          # brand-new variable
            if key in self._pending_touched:
                changed.add(index)

        with self._recorder.phase("incremental_inference", replace=True,
                                  radius=radius) as phase:
            strategy = SamplingMaterialization.from_state(
                compiled, world, marginals, seed=self.seed + 7)
            if changed:
                update = strategy.update(changed, radius=radius,
                                         num_samples=num_samples,
                                         burn_in=burn_in)
                marginals = update.marginals
            else:
                clamped = compiled.is_evidence
                marginals[clamped] = compiled.evidence_values[clamped]
            phase.set(resampled=len(changed))

        self._chain_state = {
            "world": {key: bool(strategy.world[i])
                      for i, key in enumerate(compiled.var_keys)},
            "marginals": {key: float(marginals[i])
                          for i, key in enumerate(compiled.var_keys)},
        }
        self._pending_touched.clear()
        return RunResult(
            marginals={key: float(marginals[i])
                       for i, key in enumerate(compiled.var_keys)},
            threshold=threshold,
            profile=self._recorder.profile(),
            graph_stats=graph.stats(),
            feature_stats=self.feature_stats(),
        )

    # -------------------------------------------------------------- debugging
    def feature_stats(self) -> list[FeatureStat]:
        """Weight/observation table for the error-analysis document."""
        graph = self.grounder.graph
        stats = []
        for weight in graph.weights.values():
            provenance = self.grounder.weight_provenance.get(weight.key)
            stats.append(FeatureStat(
                key=str(weight.key),
                weight=weight.value,
                observations=weight.observations,
                description=provenance.rule_text if provenance else "",
            ))
        return stats

    def feature_count(self, key: VariableKey) -> int:
        """Number of IS_TRUE (feature) factors attached to a variable."""
        graph = self.grounder.graph
        if not graph.has_variable(key):
            return 0
        variable = graph.variables[graph.variable_id(key)]
        return sum(1 for fid in variable.factor_ids
                   if graph.factors[fid].function == FactorFunction.IS_TRUE)

    def error_analysis(self, result: RunResult, relation: str,
                       truth: Iterable[tuple],
                       bucket_failure: Callable[[Hashable], str] | None = None,
                       sample_size: int = 100) -> ErrorAnalysisReport:
        """Build the Section-5.2 error-analysis document for one relation.

        ``truth`` is the gold tuple set (an oracle in benchmarks, a human
        sample in production).  The default failure bucketer applies the
        paper's three-way root-cause procedure.
        """
        truth_set = {tuple(t) for t in truth}
        extractions = result.output_tuples(relation)
        candidate_keys = {values for (name, values) in result.marginals
                          if name == relation}

        def default_bucketer(item: Hashable) -> str:
            return diagnose_miss(
                item, candidate_keys,
                lambda values: self.feature_count((relation, values)))

        return build_report(
            extractions=extractions,
            truth=truth_set,
            mark_extraction=lambda item: item in truth_set,
            bucket_failure=bucket_failure or default_bucketer,
            feature_stats=result.feature_stats,
            db_stats=self.db.stats(),
            graph_stats=result.graph_stats,
            sample_size=sample_size,
            seed=self.seed,
        )
