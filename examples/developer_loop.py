"""The DeepDive developer loop (paper Figure 1 and Section 5), scripted.

Plays the role of the knowledge engineer across three iterations: run the
system, produce the error-analysis document, read off the top failure
bucket, apply the matching fix, and rerun.  Also demonstrates the
supervision-overlap detector from Section 8 catching a bad feature before it
poisons a training run, and closes by profiling the final iteration with
``EngineConfig(trace=True)`` to show where the time went.

Run:  python examples/developer_loop.py
"""

from repro.apps import spouse
from repro.apps.common import pair_features, window_features
from repro.core.app import DeepDive
from repro.corpus import spouse as spouse_corpus
from repro.inference import LearningOptions
from repro.nlp.tokenize import token_texts
from repro.obs import EngineConfig
from repro.supervision import detect_supervision_overlap

RUN_KWARGS = dict(threshold=0.8, holdout_fraction=0.1,
                  learning=LearningOptions(epochs=50, seed=0),
                  num_samples=200, burn_in=30, compute_train_histogram=False)


def build(corpus, feature_fn, negatives, seed=0, config=None):
    app = DeepDive(spouse.PROGRAM, seed=seed, config=config)
    app.register_udf("spouse_features", feature_fn)
    known_names = {name.lower() for name, _ in corpus.kb["NameEL"]}
    app.add_extractor("PersonCandidate",
                      spouse.person_extractor_factory(known_names))
    app.add_extractor("SpouseSentence", lambda s: [(s.key, s.text)])
    app.load_documents(corpus.documents)
    name_entities = {}
    for name, entity in corpus.kb["NameEL"]:
        name_entities.setdefault(name.lower(), []).append(entity)
    app.add_rows("EL", [(m, e) for (_, m, t, _)
                        in app.db["PersonCandidate"].distinct_rows()
                        for e in name_entities.get(t, ())])
    app.add_rows("Married", corpus.kb["Married"])
    if negatives:
        app.add_rows("Sibling", corpus.kb["Sibling"])
        acquainted = []
        for a, b in corpus.metadata["distractors"][::2]:
            acquainted += [(a, b), (b, a)]
        app.add_rows("Acquainted", acquainted)
    return app


def distance_only(p1, p2, content):
    return [f"dist:{min(p2 - p1, 10)}"]


def full_features(p1, p2, content):
    return (pair_features(p1, p2, content)
            + window_features(p1, content, prefix="m1_"))


ITERATIONS = [
    ("iteration 0: distance feature only", distance_only, False),
    ("iteration 1: + phrase/window features", full_features, False),
    ("iteration 2: + negative supervision", full_features, True),
]


def main():
    corpus = spouse_corpus.generate(
        spouse_corpus.SpouseConfig(num_couples=30, num_distractor_pairs=30,
                                   num_sibling_pairs=10,
                                   sentences_per_pair=3), seed=13)

    for title, feature_fn, negatives in ITERATIONS:
        print("=" * 70)
        print(title)
        app = build(corpus, feature_fn, negatives)
        result = app.run(**RUN_KWARGS)
        quality = spouse.evaluate(app, result, corpus)
        print(f"quality: {quality}")
        gold = spouse.gold_mention_pairs(app, corpus)
        report = app.error_analysis(result, "MarriedMentions", gold,
                                    sample_size=60)
        top = report.top_bucket()
        if top:
            print(f"top failure bucket: {top.tag} (count {top.count})")
            print("engineer's next action: "
                  + {"insufficient-features": "write a richer feature UDF",
                     "incorrect-weights": "add a distant-supervision rule",
                     "candidate-generation-failure":
                         "fix the candidate extractor"}.get(top.tag, "inspect"))
        else:
            print("no failures in the sampled error analysis")

    print("=" * 70)
    print("section 8 check: the supervision-overlap detector")
    app = build(corpus, full_features, True)
    app.grounder   # ground
    warnings = detect_supervision_overlap(app.graph)
    if warnings:
        for warning in warnings:
            print("  WARNING:", warning.describe())
    else:
        print("  no feature duplicates a distant-supervision rule -- safe")

    print("=" * 70)
    print("where did the time go? (EngineConfig(trace=True))")
    app = build(corpus, full_features, True,
                config=EngineConfig(trace=True))
    result = app.run(**RUN_KWARGS)
    print(result.profile.render(max_depth=2))
    print()
    print("top spans by inclusive time:")
    for name, seconds, calls in result.profile.top_spans(8):
        print(f"  {name:<28} {seconds * 1000:8.1f}ms  x{calls}")


if __name__ == "__main__":
    main()
