"""KBService: the queue, the apply loop, and concurrent readers."""

import queue
import threading
import time
import types

import pytest

from repro import obs
from repro.serve import (IngestRejected, KBService, ServeConfig, ServiceFailed,
                         Snapshot, WriteAheadLog, add_documents, add_rows)
from repro.serve.checkpoint import CheckpointManager
from tests.serve.conftest import RUN_KWARGS, bootstrap_ops, make_app_factory


def live_service(tmp_path, **config_changes):
    options = dict(checkpoint_every=0, refresh_samples=40, refresh_burn_in=10)
    options.update(config_changes)
    return KBService.create(tmp_path / "svc", make_app_factory(),
                            bootstrap_ops(), config=ServeConfig(**options),
                            run_kwargs=RUN_KWARGS)


def stub_service(tmp_path, **config_changes):
    """Queue mechanics without a real engine (the loop is never started)."""
    config = ServeConfig(**config_changes)
    engine = types.SimpleNamespace(config=config)
    snapshot = Snapshot(version=0, lsn=0, marginals={}, threshold=0.9)
    return KBService(engine, tmp_path,
                     WriteAheadLog(tmp_path / "ingest.wal"),
                     CheckpointManager(tmp_path / "checkpoints"), snapshot)


class TestIngestPath:
    def test_ingest_and_query(self, tmp_path):
        with live_service(tmp_path) as service:
            v0 = service.client().snapshot()
            after = service.ingest(
                [add_documents([("n0", "the grape sat there .")])], wait=True)
            assert after.version == v0.version + 1
            assert service.client().snapshot().version == after.version
            assert service.client().query("GoodName", threshold=0.0) \
                >= v0.output_tuples("GoodName", threshold=0.0)

    def test_submit_coalesces_and_flush_applies_all(self, tmp_path):
        with live_service(tmp_path, max_batch_ops=8) as service:
            for i, token in enumerate(("grape", "melon")):
                service.submit(add_documents(
                    [(f"n{i}", f"the {token} sat there .")]))
            snapshot = service.flush()
            assert snapshot.relation_counts["Content"] == 4 + 2
            # coalescing commits fewer batches than ops when the queue backs
            # up, never more
            assert snapshot.version <= 2 + 1

    def test_explicit_batch_is_one_commit(self, tmp_path):
        with live_service(tmp_path) as service:
            before = service.client().snapshot().version
            after = service.ingest(
                [add_documents([("n0", "the grape sat there .")]),
                 add_rows("GoodList", [("grape",)])], wait=True)
            assert after.version == before + 1   # one batch, one version

    def test_requested_checkpoint_lands_on_disk(self, tmp_path):
        with live_service(tmp_path) as service:
            service.ingest([add_rows("GoodList", [("fig",)])], wait=True)
            info = service.checkpoint()
            assert info.path.exists()
            assert info.lsn == service.wal.last_lsn

    def test_periodic_checkpoint_cadence(self, tmp_path):
        with live_service(tmp_path, checkpoint_every=1,
                          keep_checkpoints=8) as service:
            for i in range(3):
                service.ingest([add_rows("GoodList", [(f"tok{i}",)])],
                               wait=True)
            service.flush()
            lsns = [info.lsn for info in service.checkpoints.list()]
        assert lsns == [0, 1, 2, 3]              # bootstrap + one per batch

    def test_checkpoint_compacts_the_wal(self, tmp_path):
        with live_service(tmp_path, checkpoint_every=1) as service:
            for i in range(3):
                service.ingest([add_rows("GoodList", [(f"tok{i}",)])],
                               wait=True)
            service.flush()
            # every committed batch is covered by a checkpoint, so the WAL
            # holds no records — reopen/recovery cost is the tail only
            assert service.wal.replay() == []
            assert service.wal.base_lsn == 3
            assert service.wal.last_lsn == 3


class TestAdmissionControl:
    def test_reject_policy_fails_fast(self, tmp_path):
        service = stub_service(tmp_path, queue_capacity=2, admission="reject")
        op = add_rows("GoodList", [("x",)])
        service.submit(op)
        service.submit(op)
        with pytest.raises(IngestRejected, match="queue full"):
            service.submit(op)
        service.stop()

    def test_block_policy_times_out(self, tmp_path):
        service = stub_service(tmp_path, queue_capacity=1, admission="block")
        op = add_rows("GoodList", [("x",)])
        service.submit(op)
        with pytest.raises(IngestRejected):
            service.submit(op, timeout=0.05)
        service.stop()

    def test_queue_drains_once_loop_runs(self, tmp_path):
        with live_service(tmp_path, queue_capacity=4,
                          admission="reject") as service:
            for i in range(3):
                service.submit(add_rows("GoodList", [(f"t{i}",)]))
            snapshot = service.flush()
            assert snapshot.relation_counts["GoodList"] == 3 + 3


class TestCheckpointFailureIsolation:
    def test_periodic_checkpoint_failure_does_not_fail_the_batch(
            self, tmp_path):
        # the batch is WAL-committed, applied, and published before the
        # periodic checkpoint runs: a failing save must not turn into a
        # ServiceFailed for the waiter (inviting a duplicate retry of a
        # committed batch) and must not kill the loop
        with live_service(tmp_path, checkpoint_every=1) as service:
            real_save = service.checkpoints.save
            calls = []

            def flaky_save(payload, lsn, database=None):
                calls.append(lsn)
                if len(calls) == 1:
                    raise OSError("disk full")
                return real_save(payload, lsn, database=database)

            service.checkpoints.save = flaky_save
            with pytest.warns(UserWarning, match="periodic checkpoint "
                                                 "failed"):
                snapshot = service.ingest(
                    [add_rows("GoodList", [("fig",)])], wait=True)
                service.flush()
            assert snapshot.version == 1         # the batch succeeded
            after = service.ingest([add_rows("GoodList", [("lime",)])],
                                   wait=True)
            assert after.version == 2            # the loop is still alive
            service.flush()
            assert calls == [1, 2]               # retried after next batch
            assert service.checkpoints.latest().lsn == 2

    def test_explicit_checkpoint_failure_keeps_serving(self, tmp_path):
        with live_service(tmp_path) as service:
            def broken_save(payload, lsn, database=None):
                raise OSError("disk full")

            service.checkpoints.save = broken_save
            with pytest.raises(ServiceFailed, match="disk full"):
                service.checkpoint()
            del service.checkpoints.save
            # a failed checkpoint leaves state intact; serving continues
            after = service.ingest([add_rows("GoodList", [("fig",)])],
                                   wait=True)
            assert after.version == 1


class TestEnqueueFailureRace:
    def test_enqueue_after_concurrent_loop_death_fails_fast(self, tmp_path):
        # the loop can fail (and drain the queue) between _check_alive and
        # the put; the producer must notice and fail, not wait forever
        service = stub_service(tmp_path)
        boom = RuntimeError("injected loop death")

        class RacyQueue(queue.Queue):
            def put(self, item, block=True, timeout=None):
                super().put(item, block, timeout)
                if service._failure is None:     # the loop dies right here
                    service._failure = boom
                    service._drain_failed()

        service._queue = RacyQueue(maxsize=service.config.queue_capacity)
        with pytest.raises(ServiceFailed, match="injected loop death"):
            service.ingest([add_rows("GoodList", [("x",)])], wait=True,
                           timeout=2)
        service.stop()


class TestConcurrentReads:
    def test_readers_never_block_and_see_consistent_versions(self, tmp_path):
        with live_service(tmp_path) as service:
            stop = threading.Event()
            failures: list[str] = []
            reads = [0, 0, 0]

            def reader(slot):
                last_version = -1
                while not stop.is_set():
                    snapshot = service.client().snapshot()
                    if snapshot.version < last_version:
                        failures.append(
                            f"version went backwards: {snapshot.version} "
                            f"after {last_version}")
                    last_version = snapshot.version
                    # a snapshot is internally consistent: its marginals
                    # never change after publication
                    if len(snapshot) != len(dict(snapshot.marginals)):
                        failures.append("snapshot mutated underneath reader")
                    service.client().query("GoodName")
                    reads[slot] += 1

            threads = [threading.Thread(target=reader, args=(slot,))
                       for slot in range(3)]
            for thread in threads:
                thread.start()
            try:
                for i, token in enumerate(("grape", "melon", "decay")):
                    service.ingest(
                        [add_documents([(f"n{i}", f"the {token} sat there .")])],
                        wait=True)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
            assert not failures
            # readers made progress *while* batches were applying
            assert all(count > 0 for count in reads)
            assert service.client().snapshot().version == 3

    def test_snapshot_is_immutable_across_ingest(self, tmp_path):
        with live_service(tmp_path) as service:
            held = service.client().snapshot()
            before = dict(held.marginals)
            service.ingest(
                [add_documents([("n0", "the grape sat there .")])], wait=True)
            assert dict(held.marginals) == before
            assert service.client().snapshot().version == held.version + 1


class TestObservability:
    def test_read_and_ingest_metrics_recorded(self, tmp_path):
        collector = obs.Collector()
        with obs.installed(collector):
            with live_service(tmp_path) as service:
                service.ingest([add_rows("GoodList", [("fig",)])], wait=True)
                service.client().query("GoodName")
                service.client().snapshot()
        metrics = collector.metrics
        assert metrics.counter_total("serve.reads") >= 2
        assert metrics.counter_total("serve.ops.applied") == 1
        assert metrics.histogram("serve.read.seconds").count >= 2
        names = {span.name for root in collector.roots
                 for span in root.walk()}
        assert "serve.bootstrap" in names
        assert "serve.commit" in names

    def test_reader_spans_from_other_threads(self, tmp_path):
        collector = obs.Collector()
        with obs.installed(collector):
            with live_service(tmp_path) as service:
                worker = threading.Thread(
                    target=lambda: service.client().query("GoodName"))
                worker.start()
                worker.join()
        names = {span.name for root in collector.roots
                 for span in root.walk()}
        assert "serve.read" in names


class TestLifecycle:
    def test_stopped_service_refuses_work(self, tmp_path):
        service = live_service(tmp_path)
        service.stop()
        from repro.serve import ServiceFailed
        with pytest.raises(ServiceFailed, match="stopped"):
            service.submit(add_rows("GoodList", [("x",)]))

    def test_stop_with_checkpoint(self, tmp_path):
        service = live_service(tmp_path)
        service.ingest([add_rows("GoodList", [("fig",)])], wait=True)
        service.stop(checkpoint=True)
        assert service.checkpoints.latest().lsn == 1

    def test_stop_does_not_wait_for_queue_capacity(self, tmp_path):
        # stop is signalled out-of-band: with the queue full and a producer
        # blocked on admission, the stop call must neither hang behind the
        # backpressure nor strand the blocked producer
        service = stub_service(tmp_path, queue_capacity=1)
        op = add_rows("GoodList", [("x",)])
        service.submit(op)                       # fills the queue; no loop
        outcomes = []

        def producer():
            try:
                service.ingest([op], wait=True, timeout=10)
                outcomes.append("completed")
            except ServiceFailed:
                outcomes.append("refused")
            except TimeoutError:
                outcomes.append("stranded")

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.1)                          # let it block on the put
        started = time.monotonic()
        service.stop(timeout=2.0)
        assert time.monotonic() - started < 2.0
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert outcomes == ["refused"]
