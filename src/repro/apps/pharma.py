"""The pharmacogenomics application (paper Section 6.2).

Aspirational schema: ``Interacts(drug, gene)``, supervised by an incomplete
PharmGKB-style KB plus a study-context negative heuristic.
"""

from __future__ import annotations

import re

from repro.apps.common import contains_any, pair_features
from repro.core.app import DeepDive
from repro.core.result import RunResult
from repro.corpus.base import GeneratedCorpus
from repro.corpus.pharma import DRUG_SUFFIXES
from repro.eval.metrics import PrecisionRecall, precision_recall

PROGRAM = """
PharmaSentence(s text, content text).
DrugMention(s text, m text, drug text, position int).
TargetMention(s text, m text, gene text, position int).
DrugGeneCandidate(m1 text, m2 text).
DGPair(s text, m1 text, m2 text, p1 int, p2 int).
InteractsMention?(m1 text, m2 text).
DrugOf(m text, d text).
GeneOf(m text, g text).
PharmGkb(d text, g text).

DrugGeneCandidate(m1, m2) :-
    DrugMention(s, m1, d, p1), TargetMention(s, m2, g, p2).

DGPair(s, m1, m2, p1, p2) :-
    DrugMention(s, m1, d, p1), TargetMention(s, m2, g, p2).

InteractsMention(m1, m2) :-
    DGPair(s, m1, m2, p1, p2), PharmaSentence(s, content)
    weight = dg_features(p1, p2, content).

InteractsMention_Ev(m1, m2, true) :-
    DrugGeneCandidate(m1, m2), DrugOf(m1, d), GeneOf(m2, g), PharmGkb(d, g).

InteractsMention_Ev(m1, m2, false) :-
    DGPair(s, m1, m2, p1, p2), PharmaSentence(s, content),
    [study_context(content)].
"""

GENE_PATTERN = re.compile(r"^[A-Z]{3,4}\d$")
STUDY_MARKERS = {"administered", "genotyped", "trial", "profiled", "cohort",
                 "dosing", "collected"}


def drug_extractor(sentence):
    """Candidates: lowercase tokens with a pharmaceutical suffix."""
    rows = []
    for position, token in enumerate(sentence.tokens):
        lower = token.lower()
        if any(lower.endswith(suffix) for suffix in DRUG_SUFFIXES) and len(lower) > 5:
            mention = f"{sentence.key}:d{position}"
            rows.append((sentence.key, mention, lower, position))
    return rows


def gene_extractor(sentence):
    rows = []
    for position, token in enumerate(sentence.tokens):
        if GENE_PATTERN.match(token):
            mention = f"{sentence.key}:g{position}"
            rows.append((sentence.key, mention, token, position))
    return rows


def build(corpus: GeneratedCorpus, seed: int = 0) -> DeepDive:
    """Wire the pharmacogenomics application for a generated corpus."""
    app = DeepDive(PROGRAM, seed=seed)
    app.register_udf("dg_features",
                     lambda p1, p2, content: pair_features(p1, p2, content))
    app.register_udf("study_context",
                     lambda content: contains_any(content, STUDY_MARKERS),
                     returns="bool")

    app.add_extractor("DrugMention", drug_extractor, name="drugs")
    app.add_extractor("TargetMention", gene_extractor, name="genes")
    app.add_extractor("PharmaSentence", lambda s: [(s.key, s.text)],
                      name="sentence_content")
    app.load_documents(corpus.documents)

    app.add_rows("DrugOf", [(m, d) for (_, m, d, _)
                            in app.db["DrugMention"].distinct_rows()])
    app.add_rows("GeneOf", [(m, g) for (_, m, g, _)
                            in app.db["TargetMention"].distinct_rows()])
    app.add_rows("PharmGkb", corpus.kb["PharmGkb"])
    return app


def entity_predictions(app: DeepDive, result: RunResult) -> set[tuple]:
    drug_of = dict(app.db["DrugOf"].distinct_rows())
    gene_of = dict(app.db["GeneOf"].distinct_rows())
    return {(drug_of[m1], gene_of[m2])
            for (m1, m2) in result.output_tuples("InteractsMention")}


def evaluate(app: DeepDive, result: RunResult,
             corpus: GeneratedCorpus) -> PrecisionRecall:
    return precision_recall(entity_predictions(app, result),
                            corpus.truth["drug_gene"])
