"""Integration tests: every example application must reach high quality on
its synthetic corpus (the paper's claim of human-level precision across
domains, E9's unit-level counterpart)."""

import pytest

from repro.apps import ads, books, genetics, materials, pharma, spouse
from repro.corpus import ads as ads_corpus
from repro.corpus import books as books_corpus
from repro.corpus import genetics as genetics_corpus
from repro.corpus import materials as materials_corpus
from repro.corpus import pharma as pharma_corpus
from repro.corpus import spouse as spouse_corpus
from repro.inference import LearningOptions

RUN_KWARGS = dict(threshold=0.8, holdout_fraction=0.15,
                  learning=LearningOptions(epochs=60, seed=0),
                  num_samples=200, burn_in=30, compute_train_histogram=False)


class TestSpouseApp:
    @pytest.fixture(scope="class")
    def setup(self):
        corpus = spouse_corpus.generate(
            spouse_corpus.SpouseConfig(num_couples=30, num_distractor_pairs=20,
                                       num_sibling_pairs=8,
                                       sentences_per_pair=3), seed=1)
        app = spouse.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        return app, result, corpus

    def test_quality(self, setup):
        app, result, corpus = setup
        pr = spouse.evaluate(app, result, corpus)
        assert pr.f1 > 0.8

    def test_candidates_high_recall(self, setup):
        app, result, corpus = setup
        gold = spouse.gold_mention_pairs(app, corpus)
        candidates = set(app.db["MarriedCandidate"].distinct_rows())
        assert len(gold & candidates) / len(gold) > 0.9

    def test_features_human_readable(self, setup):
        app, result, corpus = setup
        keys = [s.key for s in result.feature_stats]
        assert any("between:" in k for k in keys)
        assert any("dist:" in k for k in keys)


class TestGeneticsApp:
    def test_quality(self):
        corpus = genetics_corpus.generate(seed=2)
        app = genetics.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        pr = genetics.evaluate(app, result, corpus)
        assert pr.f1 > 0.85

    def test_entity_predictions_typed(self):
        corpus = genetics_corpus.generate(seed=2)
        app = genetics.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        for gene, pheno in genetics.entity_predictions(app, result):
            assert gene[0].isupper()
            assert pheno.islower()


class TestPharmaApp:
    def test_quality(self):
        corpus = pharma_corpus.generate(seed=2)
        app = pharma.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        pr = pharma.evaluate(app, result, corpus)
        assert pr.f1 > 0.85


class TestMaterialsApp:
    def test_quality(self):
        corpus = materials_corpus.generate(seed=2)
        app = materials.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        pr = materials.evaluate(app, result, corpus)
        assert pr.f1 > 0.8

    def test_property_recovered_from_units(self):
        corpus = materials_corpus.generate(seed=2)
        app = materials.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        props = {prop for _, prop, _ in materials.entity_predictions(app, result)}
        assert "unknown" not in props


class TestAdsApp:
    @pytest.fixture(scope="class")
    def setup(self):
        corpus = ads_corpus.generate(ads_corpus.AdsConfig(num_ads=25), seed=3)
        app = ads.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        return app, result, corpus

    def test_price_quality(self, setup):
        app, result, corpus = setup
        assert ads.evaluate_price(app, result, corpus).f1 > 0.85

    def test_location_quality(self, setup):
        app, result, corpus = setup
        assert ads.evaluate_location(app, result, corpus).f1 > 0.85

    def test_phone_regex_is_perfect(self, setup):
        _, _, corpus = setup
        pr = ads.evaluate_phone(corpus)
        assert pr.f1 == 1.0  # the paper's one deterministic success story

    def test_forum_links_found(self, setup):
        _, _, corpus = setup
        links = ads.forum_links(corpus)
        assert links
        for ad_id, forum_id in links:
            assert ad_id.startswith("ad")
            assert forum_id.startswith("forum")


class TestBooksApp:
    def test_integrated_quality(self):
        corpus = books_corpus.generate(seed=3)
        app = books.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        pr = books.evaluate(app, result, corpus)
        assert pr.f1 > 0.9

    def test_without_dictionary_worse(self):
        corpus = books_corpus.generate(seed=3)
        with_dict = books.build(corpus, seed=0)
        without_dict = books.build(corpus, seed=0, use_movie_dictionary=False)
        pr_with = books.evaluate(with_dict, with_dict.run(**RUN_KWARGS), corpus)
        pr_without = books.evaluate(without_dict, without_dict.run(**RUN_KWARGS),
                                    corpus)
        assert pr_with.precision >= pr_without.precision


class TestJointSpouseApp:
    def test_joint_entity_aggregation_beats_lifting(self):
        corpus = spouse_corpus.generate(
            spouse_corpus.SpouseConfig(num_couples=25, num_distractor_pairs=25,
                                       num_sibling_pairs=8,
                                       sentences_per_pair=3), seed=4)
        app = spouse.build(corpus, seed=0, joint=True)
        result = app.run(**RUN_KWARGS)
        joint = spouse.evaluate_entities(app, result, corpus)
        lifted = spouse.evaluate_entities(app, result, corpus,
                                          from_mentions=True)
        assert joint.f1 >= lifted.f1 - 0.02
        assert joint.f1 > 0.8

    def test_entity_variables_created(self):
        corpus = spouse_corpus.generate(
            spouse_corpus.SpouseConfig(num_couples=10, num_distractor_pairs=10,
                                       num_sibling_pairs=4), seed=4)
        app = spouse.build(corpus, seed=0, joint=True)
        app.grounder
        keys = {v.key[0] for v in app.graph.variables.values()}
        assert "MarriedEntities" in keys
        assert "MarriedMentions" in keys

    def test_imply_factors_grounded(self):
        from repro.factorgraph import FactorFunction
        corpus = spouse_corpus.generate(
            spouse_corpus.SpouseConfig(num_couples=10, num_distractor_pairs=10,
                                       num_sibling_pairs=4), seed=4)
        app = spouse.build(corpus, seed=0, joint=True)
        app.grounder
        functions = {f.function for f in app.graph.factors.values()}
        assert FactorFunction.IMPLY in functions


class TestPaleoApp:
    def test_quality(self):
        from repro.apps import paleo
        from repro.corpus import paleo as paleo_corpus
        corpus = paleo_corpus.generate(seed=2)
        app = paleo.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        pr = paleo.evaluate(app, result, corpus)
        assert pr.f1 > 0.85

    def test_formation_extractor_anchors_on_keyword(self):
        from repro.apps import paleo
        from repro.nlp import Document, preprocess_document
        sentence = preprocess_document(
            Document("d", "Fossils occur in the Ashford Formation today ."))[0]
        rows = paleo.formation_extractor(sentence)
        assert len(rows) == 1
        assert rows[0][2] == "Ashford"

    def test_taxon_extractor_suffix_match(self):
        from repro.apps import paleo
        from repro.nlp import Document, preprocess_document
        sentence = preprocess_document(
            Document("d", "Remains of Bravosaurus were found nearby ."))[0]
        rows = paleo.taxon_extractor(sentence)
        assert [r[2] for r in rows] == ["Bravosaurus"]


class TestMaterialsTables:
    """Dark data's second modality: measurement tables (paper Sec. 1)."""

    @pytest.fixture(scope="class")
    def setup(self):
        corpus = materials_corpus.generate(
            materials_corpus.MaterialsConfig(num_materials=30,
                                             table_fraction=0.4), seed=5)
        app = materials.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        return app, result, corpus

    def test_table_documents_generated(self, setup):
        _, _, corpus = setup
        assert any(d.doc_id.startswith("tbl") for d in corpus.documents)

    def test_quality_with_tables(self, setup):
        app, result, corpus = setup
        pr = materials.evaluate(app, result, corpus)
        assert pr.f1 > 0.8

    def test_table_cells_extracted(self, setup):
        app, _, _ = setup
        table_mentions = [m for (s, m, _, _)
                          in app.db["FormulaMention"].distinct_rows()
                          if ":t0:" in m]
        assert table_mentions

    def test_table_values_accepted(self, setup):
        app, result, corpus = setup
        table_formulas = set()
        for doc in corpus.documents:
            if doc.doc_id.startswith("tbl"):
                from repro.nlp.tables import cell_candidates
                for _, formula, _, _ in cell_candidates(doc.doc_id, doc.content):
                    table_formulas.add(formula)
        predicted_formulas = {f for f, _, _
                              in materials.entity_predictions(app, result)}
        assert table_formulas & predicted_formulas

    def test_anneal_distractor_rejected(self, setup):
        app, result, _ = setup
        for _, prop, _ in materials.entity_predictions(app, result):
            assert prop in ("electron_mobility", "band_gap")
