"""The siloed extract-then-integrate pipeline (paper Section 2.4).

Two teams, two stages, no shared evidence:

* the *extraction* stage is a high-precision surface extractor over review
  pages, whose residual errors are movies misread as books ("2% of emitted
  tuples are not books, but are movies that were incorrectly extracted");
* the *integration* stage matches extractions against a partial book
  catalog, with no access to the raw text or to a movie dictionary (an
  artificial but organizationally real restriction the paper highlights).

Two integration policies bound the siloed design space:

* ``strict`` -- only integrate titles already in the catalog: precision
  survives but every novel book is dropped (the paper's "fails to integrate
  some of the correct extractions (because they are novel)");
* ``trusting`` -- accept everything the extractor emits: recall survives but
  every confusable movie pollutes the catalog.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.corpus.base import GeneratedCorpus
from repro.eval.metrics import PrecisionRecall, precision_recall
from repro.nlp.pipeline import Document

# "Review of <The Title> by <Creator> ... $ <price>" — covers book templates
# and, inevitably, the confusable movie reviews that use the same phrasing.
_EXTRACTION_PATTERNS = [
    re.compile(r"Review of (The \w+) by \w+ .*?\$ (\d+\.\d{2})"),
    re.compile(r"(The \w+) by \w+ is this month's book pick . Buy for \$ (\d+\.\d{2})"),
    re.compile(r"Paperback (The \w+) , written by \w+ , now \$ (\d+\.\d{2})"),
    # the loose pattern that drags in "screens this week" movie phrasing
    re.compile(r"(The \w+) by \w+ .*?\$ (\d+\.\d{2})"),
]


def surface_extract(documents: Iterable[Document]) -> set[tuple]:
    """Stage 1: the extraction team's output (title, price) tuples."""
    output: set[tuple] = set()
    for doc in documents:
        for pattern in _EXTRACTION_PATTERNS:
            for match in pattern.finditer(doc.content):
                output.add((match.group(1), match.group(2)))
    return output


@dataclass
class SiloedResult:
    """Output and quality of one siloed pipeline configuration."""

    extracted: set[tuple]
    integrated: set[tuple]
    quality: PrecisionRecall


class SiloedPipeline:
    """The two-stage pipeline with a pluggable integration policy."""

    def __init__(self, policy: str = "strict") -> None:
        if policy not in ("strict", "trusting"):
            raise ValueError("policy must be 'strict' or 'trusting'")
        self.policy = policy

    def run(self, corpus: GeneratedCorpus) -> SiloedResult:
        extracted = surface_extract(corpus.documents)
        catalog_titles = {title for title, _ in corpus.kb["Catalog"]}
        if self.policy == "strict":
            integrated = {(title, price) for title, price in extracted
                          if title in catalog_titles}
        else:
            integrated = set(extracted)
        quality = precision_recall(integrated, corpus.truth["book_price"])
        return SiloedResult(extracted, integrated, quality)


def extraction_precision(corpus: GeneratedCorpus) -> float:
    """Precision of stage 1 alone -- the paper's '98% precision' figure."""
    extracted = surface_extract(corpus.documents)
    truth = corpus.truth["book_price"]
    if not extracted:
        return 0.0
    return len(extracted & truth) / len(extracted)
