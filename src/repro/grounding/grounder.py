"""Grounding: translate DDlog rules + data into a factor graph.

"Grounding takes place when DeepDive translates the set of relations and
rules into a concrete factor graph upon which probabilistic inference is
possible" (Section 4.1).  The grounder here is *always incremental* after its
initial load, exactly as the paper prescribes: every rule body is a
DRed-maintained materialized view, and base-relation change batches patch the
factor graph through view deltas instead of re-grounding.

Responsibilities:

* run candidate-mapping (derivation) rules and keep their output relations in
  sync with the database;
* ground feature rules into tied-weight ``IS_TRUE`` factors;
* ground inference rules into ``IMPLY``/``AND``/``OR``/``EQUAL`` factors;
* resolve distant-supervision evidence (``_Ev`` relations) onto variables,
  with majority-vote conflict resolution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro import obs
from repro.datastore import Database
from repro.datastore.relation import Row
from repro.obs.config import EngineConfig
from repro.ddlog.ast import (FixedWeight, HeadConnective, PerRuleWeight, Rule,
                             RuleKind, UdfWeight, Var, VarWeight)
from repro.ddlog.program import DDlogProgram
from repro.ddlog.validate import evidence_base
from repro.factorgraph import (FactorFunction, FactorGraph, decode_key,
                               encode_key)
from repro.grounding.expansion import derived_relation_plans, expanded_rule_body

_CONNECTIVE_FUNCTIONS = {
    HeadConnective.IMPLY: FactorFunction.IMPLY,
    HeadConnective.AND: FactorFunction.AND,
    HeadConnective.OR: FactorFunction.OR,
    HeadConnective.EQUAL: FactorFunction.EQUAL,
}


class GroundingError(ValueError):
    """Raised for grounding-time inconsistencies."""


@dataclass
class GroundingDelta:
    """Summary of one incremental grounding round (the paper's dV and dF).

    ``touched_keys`` lists the variable keys whose factors or evidence
    changed -- the seed set for incremental inference (Section 4.2).
    """

    factors_added: int = 0
    factors_removed: int = 0
    variables_added: int = 0
    variables_removed: int = 0
    evidence_changed: int = 0
    touched_keys: set = field(default_factory=set)

    def merge(self, other: "GroundingDelta") -> None:
        self.factors_added += other.factors_added
        self.factors_removed += other.factors_removed
        self.variables_added += other.variables_added
        self.variables_removed += other.variables_removed
        self.evidence_changed += other.evidence_changed
        self.touched_keys |= other.touched_keys

    @property
    def total_changes(self) -> int:
        return (self.factors_added + self.factors_removed
                + self.variables_added + self.variables_removed
                + self.evidence_changed)


@dataclass
class WeightProvenance:
    """Where a weight came from, for the error-analysis document."""

    rule_text: str
    description: str
    rule_index: int


class Grounder:
    """Incremental grounder over one program and one database.

    Construction performs the initial load (full view materialization and
    full grounding); :meth:`apply_changes` afterwards runs only DRed delta
    rules.  The factor graph is available as :attr:`graph`.
    """

    def __init__(self, program: DDlogProgram, db: Database,
                 config: EngineConfig | None = None) -> None:
        program.validate()
        self.program = program
        self.db = db
        self.config = config if config is not None \
            else getattr(db, "config", None)
        self.graph = FactorGraph()
        self.weight_provenance: dict[Hashable, WeightProvenance] = {}

        program.create_relations(db)
        self._derived = derived_relation_plans(program.ast, program.udfs)
        self._rules = list(program.ast.rules)
        # (rule_index, body_row) -> factor ids grounded from that row
        self._row_factors: dict[tuple[int, Row], list[int]] = {}
        # var relation -> tuple -> label counter (distant supervision votes)
        self._evidence_votes: dict[str, dict[Row, Counter]] = {}
        self._view_rules: dict[str, int] = {}
        self._rule_schemas: dict[int, Any] = {}
        # compiled per-rule grounding recipes: positional head readers and
        # weight resolvers, so _ground_row never builds a row dict
        self._head_readers: dict[int, list[Callable[[Row], Row]]] = {}
        self._weight_fns: dict[int, Callable[[Row], list[int]]] = {}

        with obs.span("grounding.define_views") as sp:
            self._define_views()
            sp.set(views=len(db.views.names()))
        with obs.span("grounding.initial_load") as sp:
            self._initial_load()
            sp.set(variables=len(self.graph.variables),
                   factors=len(self.graph.factors))

    # ----------------------------------------------------------------- set-up
    def _define_views(self) -> None:
        views = self.db.views
        # DDlog expansion inlines derived-relation plans by object identity
        # into every consuming view, so a build-scoped store cache lets the
        # columnar initial load compute each shared subtree once.  The cache
        # must not outlive this method: base relations mutate afterwards.
        build_cache: dict[int, Any] = {}
        for name, plan in self._derived.items():
            views.define(f"derived::{name}", plan, build_cache)
        for index, rule in enumerate(self._rules):
            if rule.kind == RuleKind.DERIVATION:
                continue
            plan = expanded_rule_body(rule, self.program.ast, self.program.udfs,
                                      self._derived)
            view_name = f"rule::{index}"
            views.define(view_name, plan, build_cache)
            self._view_rules[view_name] = index
            self._rule_schemas[index] = views[view_name].schema
            self._compile_rule(index)

    def _initial_load(self) -> None:
        for name in self._derived:
            relation = self.db[name]
            relation.clear()
            # view rows already passed schema validation on their way in
            relation.insert_many(
                self.db.views[f"derived::{name}"].iter_visible(),
                validate=False)
        delta = GroundingDelta()
        # Evidence first, so variables created by rule grounding see labels.
        for view_name, index in self._view_rules.items():
            if self._rules[index].kind == RuleKind.SUPERVISION:
                # supervision walks its rows twice; keep the list here
                rows = self.db.views[view_name].visible_rows()
                self._apply_supervision(index, appeared=rows, disappeared=[],
                                        delta=delta)
        for view_name, index in self._view_rules.items():
            rule = self._rules[index]
            if rule.kind in (RuleKind.FEATURE, RuleKind.INFERENCE):
                ground_row = self._ground_row
                for row in self.db.views[view_name].iter_visible():
                    ground_row(index, row, delta)

    # ---------------------------------------------------- checkpoint support
    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the grounder's mutable bookkeeping.

        Together with the database dump and the serialized factor graph this
        is everything :meth:`restore` needs to resume incremental grounding
        exactly where this grounder stands: the row->factor-id map DRed
        retractions consult, the distant-supervision vote counters, and the
        weight-provenance table.  Factor ids refer to the graph's id space,
        which v2 graph serialization preserves exactly.
        """
        return {
            "row_factors": [
                [index, encode_key(row), list(factor_ids)]
                for (index, row), factor_ids in self._row_factors.items()
            ],
            "evidence_votes": {
                relation: [
                    [encode_key(values),
                     counter.get(True, 0), counter.get(False, 0)]
                    for values, counter in votes.items()
                ]
                for relation, votes in self._evidence_votes.items()
            },
            "weight_provenance": [
                [encode_key(key), p.rule_text, p.description, p.rule_index]
                for key, p in self.weight_provenance.items()
            ],
        }

    @classmethod
    def restore(cls, program: DDlogProgram, db: Database, graph: FactorGraph,
                state: dict, config: EngineConfig | None = None) -> "Grounder":
        """Rebuild a grounder from checkpointed parts without re-grounding.

        ``db`` must be the restored database (base relations, derived
        relations, variable tuples and evidence rows all present) and
        ``graph`` the id-exact deserialized factor graph.  Views are
        re-materialized from the database — deterministic given its contents
        — while the graph and the grounding bookkeeping are adopted as-is,
        so subsequent :meth:`apply_changes` rounds behave bit-identically to
        the grounder that was checkpointed.
        """
        program.validate()
        self = cls.__new__(cls)
        self.program = program
        self.db = db
        self.config = config if config is not None \
            else getattr(db, "config", None)
        self.graph = graph
        self.weight_provenance = {
            decode_key(key): WeightProvenance(rule_text, description,
                                              rule_index)
            for key, rule_text, description, rule_index
            in state.get("weight_provenance", [])
        }
        program.create_relations(db)
        self._derived = derived_relation_plans(program.ast, program.udfs)
        self._rules = list(program.ast.rules)
        self._row_factors = {
            (index, decode_key(row)): list(factor_ids)
            for index, row, factor_ids in state.get("row_factors", [])
        }
        self._evidence_votes = {}
        for relation, votes in state.get("evidence_votes", {}).items():
            decoded = self._evidence_votes.setdefault(relation, {})
            for values, positive, negative in votes:
                counter: Counter = Counter()
                if positive:
                    counter[True] = positive
                if negative:
                    counter[False] = negative
                decoded[decode_key(values)] = counter
        self._view_rules = {}
        self._rule_schemas = {}
        self._head_readers = {}
        self._weight_fns = {}
        with obs.span("grounding.restore_views") as sp:
            self._define_views()
            sp.set(views=len(db.views.names()))
        return self

    # ----------------------------------------------------------- public API
    def apply_changes(self, inserts: dict[str, list[Sequence[Any]]] | None = None,
                      deletes: dict[str, list[Sequence[Any]]] | None = None,
                      ) -> GroundingDelta:
        """Apply base-relation changes and patch the factor graph via DRed."""
        with obs.span("grounding.apply_changes") as sp:
            delta = self._apply_changes(inserts, deletes)
            sp.set(factors_added=delta.factors_added,
                   factors_removed=delta.factors_removed,
                   variables_added=delta.variables_added,
                   variables_removed=delta.variables_removed)
        return delta

    def _apply_changes(self, inserts, deletes) -> GroundingDelta:
        events = self.db.views.apply_changes(inserts=inserts, deletes=deletes)
        delta = GroundingDelta()

        for view_name, (appeared, disappeared) in events.items():
            if view_name.startswith("derived::"):
                relation = self.db[view_name.removeprefix("derived::")]
                for row in appeared:
                    relation.insert(row)
                for row in disappeared:
                    relation.delete(row)

        supervision_events = []
        rule_events = []
        for view_name, event in events.items():
            index = self._view_rules.get(view_name)
            if index is None:
                continue
            if self._rules[index].kind == RuleKind.SUPERVISION:
                supervision_events.append((index, event))
            else:
                rule_events.append((index, event))

        for index, (appeared, disappeared) in supervision_events:
            self._apply_supervision(index, appeared, disappeared, delta)
        for index, (appeared, disappeared) in rule_events:
            for row in disappeared:
                self._unground_row(index, row, delta)
            for row in appeared:
                self._ground_row(index, row, delta)
        if obs.enabled():
            obs.count("grounding.rounds")
            obs.count("grounding.touched_keys", len(delta.touched_keys))
        return delta

    def variable_marginal_keys(self) -> list[Hashable]:
        """Keys of all current variables (relation name + tuple)."""
        return [v.key for v in self.graph.variables.values()]

    # ------------------------------------------------------------- grounding
    def _compile_rule(self, index: int) -> None:
        """Precompute positional head readers and the weight resolver.

        The rule view's rows arrive schema-validated, so head tuples can be
        assembled by position (re-validating only when the view's column type
        differs from the target relation's) and weight keys resolved without
        materializing a row dict -- the per-row hot path of grounding.
        """
        rule = self._rules[index]
        schema = self._rule_schemas[index]
        self._head_readers[index] = [
            self._make_head_reader(rule, head_index, schema)
            for head_index in range(len(rule.heads))]
        if rule.kind in (RuleKind.FEATURE, RuleKind.INFERENCE):
            self._weight_fns[index] = self._make_weight_fn(index, rule, schema)

    def _make_head_reader(self, rule: Rule, head_index: int,
                          schema) -> Callable[[Row], Row]:
        from repro.datastore.types import coerce

        head = rule.heads[head_index]
        target = self.db[head.relation].schema
        parts: list[tuple[int | None, Any]] = []
        revalidate = False
        for position, term in enumerate(head.terms):
            if isinstance(term, Var):
                view_position = schema.position(term.name)
                parts.append((view_position, None))
                if schema.columns[view_position].type \
                        is not target.columns[position].type:
                    revalidate = True
            else:
                parts.append((None, coerce(term.value,
                                           target.columns[position].type)))
        if revalidate:
            validate = target.validate_row

            def read(row: Row) -> Row:
                return validate(tuple(row[p] if p is not None else v
                                      for p, v in parts))
        else:
            def read(row: Row) -> Row:
                return tuple(row[p] if p is not None else v for p, v in parts)
        return read

    def _make_weight_fn(self, index: int, rule: Rule,
                        schema) -> Callable[[Row], list[int]]:
        spec = rule.weight
        if isinstance(spec, (FixedWeight, PerRuleWeight)):
            fixed = isinstance(spec, FixedWeight)
            key = f"rule{index}:fixed" if fixed else f"rule{index}:*"
            cache: list[int] = []

            def constant(row: Row) -> list[int]:
                if not cache:       # weight registered on first grounded row
                    cache.append(self.graph.weight(
                        key, initial_value=spec.value, fixed=True) if fixed
                        else self.graph.weight(key))
                    self._note_weight(key, rule, index,
                                      "fixed" if fixed else "per-rule")
                return cache
            return constant
        if isinstance(spec, VarWeight):
            position = schema.position(spec.var)

            def per_value(row: Row) -> list[int]:
                value = row[position]
                key = f"rule{index}:{value}"
                weight_id = self.graph.weight(key)
                self._note_weight(key, rule, index, str(value))
                return [weight_id]
            return per_value
        if isinstance(spec, UdfWeight):
            udf = self.program.udfs[spec.udf]
            parts = [(schema.position(a.name), None) if isinstance(a, Var)
                     else (None, a.value) for a in spec.args]

            def per_udf(row: Row) -> list[int]:
                values = tuple(row[p] if p is not None else v
                               for p, v in parts)
                try:
                    result = udf(*values)
                except Exception as exc:    # noqa: BLE001 - rewrapped with context
                    from repro.ddlog.compiler import UdfError
                    raise UdfError(spec.udf, values, exc) from exc
                if result is None:
                    return []
                outputs = [result] if isinstance(result,
                                                 (str, int, float, bool)) \
                    else list(result)
                weight_ids = []
                for value in outputs:
                    key = f"rule{index}:{value}"
                    weight_ids.append(self.graph.weight(key))
                    self._note_weight(key, rule, index, str(value))
                return weight_ids
            return per_udf
        raise GroundingError(f"rule {index} has no weight specification")

    def _ground_row(self, index: int, row: Row, delta: GroundingDelta) -> None:
        rule = self._rules[index]
        weight_ids = self._weight_fns[index](row)
        if not weight_ids:
            return
        vars_before = delta.variables_added
        readers = self._head_readers[index]
        factor_ids: list[int] = []
        if rule.kind == RuleKind.FEATURE:
            var_id, created = self._variable_for(rule.head.relation,
                                                 readers[0](row))
            if created:
                delta.variables_added += 1
            delta.touched_keys.add(self.graph.variables[var_id].key)
            for weight_id in weight_ids:
                factor_ids.append(self.graph.add_factor(
                    FactorFunction.IS_TRUE, [var_id], weight_id))
        else:  # INFERENCE
            var_ids: list[int] = []
            negated: list[bool] = []
            for head_index, head in enumerate(rule.heads):
                var_id, created = self._variable_for(head.relation,
                                                     readers[head_index](row))
                if created:
                    delta.variables_added += 1
                delta.touched_keys.add(self.graph.variables[var_id].key)
                var_ids.append(var_id)
                negated.append(head.negated)
            function = _CONNECTIVE_FUNCTIONS[rule.connective]
            for weight_id in weight_ids:
                factor_ids.append(self.graph.add_factor(
                    function, var_ids, weight_id, negated=negated))
        self._row_factors[(index, row)] = factor_ids
        delta.factors_added += len(factor_ids)
        if obs.enabled():
            obs.count("grounding.factors", len(factor_ids), rule=index)
            obs.count("grounding.variables",
                      delta.variables_added - vars_before, rule=index)

    def _unground_row(self, index: int, row: Row, delta: GroundingDelta) -> None:
        factor_ids = self._row_factors.pop((index, row), None)
        if not factor_ids:
            return
        touched_vars: set[int] = set()
        for factor_id in factor_ids:
            factor = self.graph.factors.get(factor_id)
            if factor is None:
                continue
            touched_vars.update(factor.var_ids)
            self.graph.remove_factor(factor_id)
            delta.factors_removed += 1
        for var_id in touched_vars:
            variable = self.graph.variables.get(var_id)
            if variable is not None:
                delta.touched_keys.add(variable.key)
        for var_id in touched_vars:
            variable = self.graph.variables.get(var_id)
            if variable is not None and not variable.factor_ids \
                    and variable.evidence is None:
                self._remove_variable_and_tuple(variable.key)
                delta.variables_removed += 1

    def _remove_variable_and_tuple(self, key: Hashable) -> None:
        relation_name, values = key
        self.graph.remove_variable(key)
        relation = self.db[relation_name]
        if relation.count(values):
            relation.delete(values)

    def _variable_for(self, relation_name: str, values: Row) -> tuple[int, bool]:
        key = (relation_name, values)
        created = not self.graph.has_variable(key)
        var_id = self.graph.variable(key)
        if created:
            relation = self.db[relation_name]
            if not relation.count(values):
                relation.insert(values)
            label = self._resolved_label(relation_name, values)
            if label is not None:
                self.graph.variables[var_id].evidence = label
        return var_id, created

    # --------------------------------------------------------------- weights
    def _note_weight(self, key: str, rule: Rule, index: int, description: str) -> None:
        if key not in self.weight_provenance:
            self.weight_provenance[key] = WeightProvenance(
                rule_text=rule.text, description=description, rule_index=index)

    # -------------------------------------------------------------- evidence
    def _apply_supervision(self, index: int, appeared: Iterable[Row],
                           disappeared: Iterable[Row],
                           delta: GroundingDelta) -> None:
        rule = self._rules[index]
        relation_name = evidence_base(rule.head.relation)
        read_head = self._head_readers[index][0]
        evidence_relation = self.db[rule.head.relation]
        votes = self._evidence_votes.setdefault(relation_name, {})
        touched: set[Row] = set()
        for row, direction in [(r, +1) for r in appeared] + \
                              [(r, -1) for r in disappeared]:
            head_values = read_head(row)
            values, label = head_values[:-1], bool(head_values[-1])
            counter = votes.setdefault(values, Counter())
            counter[label] += direction
            touched.add(values)
            if direction > 0:
                evidence_relation.insert(head_values)
            else:
                evidence_relation.delete(head_values)
        for values in touched:
            self._refresh_evidence(relation_name, values, delta)

    def _resolved_label(self, relation_name: str, values: Row) -> bool | None:
        """Majority vote over distant-supervision labels; ties abstain."""
        counter = self._evidence_votes.get(relation_name, {}).get(values)
        if not counter:
            return None
        positive = counter.get(True, 0)
        negative = counter.get(False, 0)
        if positive > negative:
            return True
        if negative > positive:
            return False
        return None

    def _refresh_evidence(self, relation_name: str, values: Row,
                          delta: GroundingDelta) -> None:
        key = (relation_name, values)
        if not self.graph.has_variable(key):
            return
        variable = self.graph.variables[self.graph.variable_id(key)]
        label = self._resolved_label(relation_name, values)
        if variable.evidence != label:
            variable.evidence = label
            delta.evidence_changed += 1
            delta.touched_keys.add(key)
        if label is None and not variable.factor_ids:
            self._remove_variable_and_tuple(key)
            delta.variables_removed += 1


def ground(program: DDlogProgram, db: Database) -> FactorGraph:
    """One-shot convenience: ground ``program`` over ``db`` and return the graph."""
    return Grounder(program, db).graph
