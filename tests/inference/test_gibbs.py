"""Correctness tests for the Gibbs sampler: estimated marginals must match
the exact-inference oracle on small graphs."""

import numpy as np
import pytest

from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.inference import GibbsSampler, exact_marginals, sigmoid


def assert_close_to_exact(graph: FactorGraph, atol: float = 0.03) -> None:
    compiled = CompiledGraph(graph)
    sampler = GibbsSampler(compiled, seed=7)
    result = sampler.marginals(num_samples=6000, burn_in=300)
    expected = exact_marginals(compiled).marginals
    np.testing.assert_allclose(result.marginals, expected, atol=atol)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_extremes_stable(self):
        assert sigmoid(1000.0) == pytest.approx(1.0)
        assert sigmoid(-1000.0) == pytest.approx(0.0)

    def test_vectorized(self):
        out = sigmoid(np.array([-1.0, 0.0, 1.0]))
        assert out.shape == (3,)
        assert out[0] + out[2] == pytest.approx(1.0)

    def test_no_warnings_at_extremes(self):
        """Regression: np.where evaluated both branches, so exp(-x) overflowed
        for large-magnitude inputs.  Masked evaluation must stay silent even
        with every floating-point error promoted to an exception."""
        extremes = np.array([-1e9, -1000.0, -500.0, 0.0, 500.0, 1000.0, 1e9])
        with np.errstate(all="raise"):
            out = sigmoid(extremes)
            scalar_low = sigmoid(-1e6)
            scalar_high = sigmoid(1e6)
        assert ((out >= 0) & (out <= 1)).all()
        assert np.all(np.diff(out) >= 0)          # monotone
        assert scalar_low == pytest.approx(0.0)
        assert scalar_high == pytest.approx(1.0)

    def test_scalar_returns_float(self):
        assert isinstance(sigmoid(0.3), float)
        assert isinstance(sigmoid(np.float64(-0.3)), float)


class TestSingleVariable:
    def test_unary_marginal(self):
        graph = FactorGraph()
        v = graph.variable("x")
        graph.add_factor(FactorFunction.IS_TRUE, [v], graph.weight("w", 1.5))
        assert_close_to_exact(graph)

    def test_negated_unary(self):
        graph = FactorGraph()
        v = graph.variable("x")
        graph.add_factor(FactorFunction.IS_TRUE, [v], graph.weight("w", 2.0),
                         negated=[True])
        assert_close_to_exact(graph)


class TestPairwise:
    def test_imply_chain(self):
        graph = FactorGraph()
        a = graph.variable("a")
        b = graph.variable("b")
        graph.add_factor(FactorFunction.IS_TRUE, [a], graph.weight("wa", 1.0))
        graph.add_factor(FactorFunction.IMPLY, [a, b], graph.weight("wi", 2.0))
        assert_close_to_exact(graph)

    def test_equal_coupling(self):
        graph = FactorGraph()
        a = graph.variable("a")
        b = graph.variable("b")
        graph.add_factor(FactorFunction.IS_TRUE, [a], graph.weight("wa", 1.2))
        graph.add_factor(FactorFunction.EQUAL, [a, b], graph.weight("we", 1.5))
        assert_close_to_exact(graph)

    def test_or_factor(self):
        graph = FactorGraph()
        a = graph.variable("a")
        b = graph.variable("b")
        c = graph.variable("c")
        graph.add_factor(FactorFunction.OR, [a, b, c], graph.weight("wo", 2.0))
        graph.add_factor(FactorFunction.IS_TRUE, [a], graph.weight("wa", -1.0))
        assert_close_to_exact(graph)

    def test_and_with_negation(self):
        graph = FactorGraph()
        a = graph.variable("a")
        b = graph.variable("b")
        graph.add_factor(FactorFunction.AND, [a, b], graph.weight("w", 1.5),
                         negated=[False, True])
        assert_close_to_exact(graph)


class TestEvidence:
    def test_clamped_evidence_respected(self):
        graph = FactorGraph()
        a = graph.variable("a")
        b = graph.variable("b")
        graph.add_factor(FactorFunction.EQUAL, [a, b], graph.weight("we", 3.0))
        graph.set_evidence("a", True)
        assert_close_to_exact(graph)

    def test_evidence_reported_as_certain(self):
        graph = FactorGraph()
        a = graph.variable("a")
        graph.add_factor(FactorFunction.IS_TRUE, [a], graph.weight("w", -5.0))
        graph.set_evidence("a", True)
        compiled = CompiledGraph(graph)
        result = GibbsSampler(compiled, seed=0).marginals(num_samples=50, burn_in=5)
        assert result.marginals[compiled.variable_index("a")] == 1.0

    def test_free_chain_resamples_evidence(self):
        graph = FactorGraph()
        a = graph.variable("a")
        graph.add_factor(FactorFunction.IS_TRUE, [a], graph.weight("w", 0.0))
        graph.set_evidence("a", True)
        compiled = CompiledGraph(graph)
        sampler = GibbsSampler(compiled, seed=0, clamp_evidence=False)
        world = sampler.initial_assignment()
        seen = set()
        for _ in range(50):
            sampler.sweep(world)
            seen.add(bool(world[0]))
        assert seen == {True, False}


class TestMechanics:
    def test_sweep_returns_sample_count(self):
        graph = FactorGraph()
        for i in range(5):
            v = graph.variable(f"v{i}")
            graph.add_factor(FactorFunction.IS_TRUE, [v], graph.weight("w", 0.5))
        graph.set_evidence("v0", True)
        compiled = CompiledGraph(graph)
        sampler = GibbsSampler(compiled, seed=0)
        world = sampler.initial_assignment()
        assert sampler.sweep(world) == 4  # evidence variable not resampled

    def test_by_key(self):
        graph = FactorGraph()
        v = graph.variable("x")
        graph.add_factor(FactorFunction.IS_TRUE, [v], graph.weight("w", 0.0))
        compiled = CompiledGraph(graph)
        result = GibbsSampler(compiled, seed=1).marginals(num_samples=200, burn_in=10)
        mapping = result.by_key(compiled)
        assert set(mapping) == {"x"}
        assert 0.3 < mapping["x"] < 0.7

    def test_deterministic_under_seed(self):
        graph = FactorGraph()
        a = graph.variable("a")
        b = graph.variable("b")
        graph.add_factor(FactorFunction.IMPLY, [a, b], graph.weight("w", 1.0))
        compiled = CompiledGraph(graph)
        m1 = GibbsSampler(compiled, seed=3).marginals(num_samples=100, burn_in=10)
        m2 = GibbsSampler(compiled, seed=3).marginals(num_samples=100, burn_in=10)
        np.testing.assert_array_equal(m1.marginals, m2.marginals)
