"""Tests for the incremental-inference materialization strategies."""

import numpy as np
import pytest

from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.grounding import (SamplingMaterialization,
                             VariationalMaterialization, choose_strategy)


def star_graph(spokes=6, coupling=1.0, bias=0.8):
    """A hub variable EQUAL-coupled to several spoke variables."""
    graph = FactorGraph()
    hub = graph.variable("hub")
    graph.add_factor(FactorFunction.IS_TRUE, [hub], graph.weight("bias", bias))
    for i in range(spokes):
        spoke = graph.variable(f"spoke{i}")
        graph.add_factor(FactorFunction.EQUAL, [hub, spoke],
                         graph.weight("couple", coupling))
    return CompiledGraph(graph)


def independent_graph(n=50, bias=1.0):
    graph = FactorGraph()
    for i in range(n):
        v = graph.variable(f"v{i}")
        graph.add_factor(FactorFunction.IS_TRUE, [v], graph.weight("w", bias))
    return CompiledGraph(graph)


class TestSamplingMaterialization:
    def test_neighbourhood_radius(self):
        compiled = star_graph()
        strategy = SamplingMaterialization(compiled, seed=0,
                                           num_samples=20, burn_in=5)
        hub = compiled.variable_index("hub")
        spoke = compiled.variable_index("spoke0")
        mask0 = strategy.neighbourhood({spoke}, radius=0)
        assert mask0.sum() == 1
        mask1 = strategy.neighbourhood({spoke}, radius=1)
        assert mask1[hub]
        mask2 = strategy.neighbourhood({spoke}, radius=2)
        assert mask2.sum() == compiled.num_variables  # hub reaches all spokes

    def test_update_work_scales_with_region(self):
        compiled = star_graph(spokes=10)
        strategy = SamplingMaterialization(compiled, seed=0,
                                           num_samples=20, burn_in=5)
        small = strategy.update({compiled.variable_index("spoke0")}, radius=0,
                                num_samples=10, burn_in=2)
        large = strategy.update({compiled.variable_index("spoke0")}, radius=2,
                                num_samples=10, burn_in=2)
        assert small.work < large.work

    def test_update_tracks_weight_change(self):
        compiled = independent_graph(n=10, bias=2.0)
        strategy = SamplingMaterialization(compiled, seed=1,
                                           num_samples=200, burn_in=20)
        before = strategy.marginals.mean()
        assert before > 0.7
        compiled.weight_values[0] = -2.0
        result = strategy.update(set(range(10)), radius=0,
                                 num_samples=200, burn_in=20)
        assert result.marginals.mean() < 0.3

    def test_materialization_work_recorded(self):
        compiled = independent_graph(n=5)
        strategy = SamplingMaterialization(compiled, seed=0,
                                           num_samples=10, burn_in=5)
        assert strategy.materialization_work == 15 * 5


class TestVariationalMaterialization:
    def test_independent_graph_exact(self):
        compiled = independent_graph(n=20, bias=1.0)
        strategy = VariationalMaterialization(compiled)
        from repro.inference import sigmoid
        np.testing.assert_allclose(strategy.mu, sigmoid(1.0), atol=1e-3)

    def test_star_graph_reasonable(self):
        compiled = star_graph(spokes=4, coupling=0.8, bias=1.0)
        strategy = VariationalMaterialization(compiled)
        # positively biased hub plus positive coupling: everything > 0.5
        assert (strategy.mu > 0.5).all()

    def test_update_after_weight_flip(self):
        compiled = independent_graph(n=10, bias=1.5)
        strategy = VariationalMaterialization(compiled)
        compiled.weight_values[0] = -1.5
        result = strategy.update(set(range(10)))
        assert (result.marginals < 0.3).all()

    def test_evidence_respected(self):
        graph = FactorGraph()
        a = graph.variable("a")
        b = graph.variable("b")
        graph.add_factor(FactorFunction.EQUAL, [a, b], graph.weight("w", 2.0))
        graph.set_evidence("a", True)
        compiled = CompiledGraph(graph)
        strategy = VariationalMaterialization(compiled)
        assert strategy.mu[compiled.variable_index("a")] == 1.0
        assert strategy.mu[compiled.variable_index("b")] > 0.7

    def test_work_recorded(self):
        compiled = independent_graph(n=5)
        strategy = VariationalMaterialization(compiled)
        assert strategy.materialization_work > 0


class TestAgreement:
    def test_strategies_agree_on_weak_coupling(self):
        compiled = star_graph(spokes=4, coupling=0.4, bias=0.6)
        sampling = SamplingMaterialization(compiled, seed=0,
                                           num_samples=3000, burn_in=200)
        variational = VariationalMaterialization(compiled)
        np.testing.assert_allclose(sampling.marginals, variational.mu, atol=0.12)


class TestOptimizer:
    def test_few_changes_sparse_graph_prefers_sampling(self):
        compiled = independent_graph(n=2000)
        choice = choose_strategy(compiled, expected_updates=1,
                                 expected_change_size=5)
        assert choice.strategy == "sampling"

    def test_many_changes_prefer_variational(self):
        compiled = independent_graph(n=100)
        choice = choose_strategy(compiled, expected_updates=1000,
                                 expected_change_size=80)
        assert choice.strategy == "variational"

    def test_choice_records_inputs(self):
        compiled = star_graph()
        choice = choose_strategy(compiled, expected_updates=3,
                                 expected_change_size=2)
        assert choice.expected_updates == 3
        assert 0 <= choice.affected_fraction <= 1
