"""Error analysis with plain SQL (paper Section 3.4).

"To facilitate error analysis, users write standard SQL queries."  After a
spouse-app run, every intermediate product sits in relations; this example
pokes at them the way a DeepDive engineer would: candidate counts per
document, supervision coverage, which distant-supervision rules fired, and a
join from accepted extractions back to the sentences they came from.

Run:  python examples/sql_error_analysis.py
"""

from repro.apps import spouse
from repro.corpus import spouse as spouse_corpus
from repro.datastore.sql import execute
from repro.inference import LearningOptions


def main():
    corpus = spouse_corpus.generate(
        spouse_corpus.SpouseConfig(num_couples=12, num_distractor_pairs=12,
                                   num_sibling_pairs=4), seed=21)
    app = spouse.build(corpus, seed=0)
    result = app.run(threshold=0.8, holdout_fraction=0.1,
                     learning=LearningOptions(epochs=50, seed=0),
                     num_samples=200, burn_in=30,
                     compute_train_histogram=False)

    # load the inferred marginals back into a relation so SQL can see them --
    # "Each tuple is then reloaded into the database with its marginal
    # probability" (Section 3.3)
    app.db.create("Marginals", m1="text", m2="text", probability="float")
    for (m1, m2), p in result.relation_marginals("MarriedMentions").items():
        app.db["Marginals"].insert((m1, m2, p))

    queries = [
        ("person candidates per sentence (top 5)",
         """SELECT s, COUNT(*) AS mentions FROM PersonCandidate
            GROUP BY s ORDER BY mentions DESC LIMIT 5"""),
        ("how much of the candidate space is supervised",
         """SELECT label, COUNT(*) AS n FROM MarriedMentions_Ev
            GROUP BY label"""),
        ("probability distribution of the output",
         """SELECT COUNT(*) AS n, MIN(probability) AS lo,
                   AVG(probability) AS mean, MAX(probability) AS hi
            FROM Marginals"""),
        ("low-confidence extractions worth a look",
         """SELECT m1, m2, probability FROM Marginals
            WHERE probability > 0.4 AND probability < 0.6
            ORDER BY probability DESC LIMIT 5"""),
        ("accepted pairs joined back to their sentence text",
         """SELECT g.probability, s.content
            FROM Marginals g
            JOIN PersonCandidate p ON g.m1 = p.m
            JOIN SpouseSentence s ON p.s = s.s
            WHERE g.probability >= 0.8
            ORDER BY g.probability DESC LIMIT 5"""),
    ]

    for title, sql in queries:
        print("=" * 70)
        print(title)
        print(execute(app.db, sql).pretty())
        print()


if __name__ == "__main__":
    main()
