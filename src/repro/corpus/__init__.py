"""Synthetic corpus generators with ground truth, one per application."""

from repro.corpus.base import GeneratedCorpus, NoiseConfig

__all__ = ["GeneratedCorpus", "NoiseConfig"]
