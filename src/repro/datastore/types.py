"""Column types for the relational datastore.

DeepDive stores everything -- documents, sentences, candidates, features,
evidence labels, and inferred marginals -- in relations.  The datastore is
deliberately small: typed columns, tuple rows, and enough relational algebra
to ground DDlog rules.  This module defines the column type vocabulary and
the validation helpers used by :mod:`repro.datastore.schema`.
"""

from __future__ import annotations

import enum
from typing import Any


class ColumnType(enum.Enum):
    """The value domain of a relation column."""

    TEXT = "text"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    # JSON-ish payloads (token lists, POS tag lists).  Stored as tuples so
    # rows remain hashable; see :func:`coerce`.
    ARRAY = "array"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_PYTHON_TYPES = {
    ColumnType.TEXT: str,
    ColumnType.INT: int,
    ColumnType.FLOAT: float,
    ColumnType.BOOL: bool,
    ColumnType.ARRAY: tuple,
}


class TypeError_(TypeError):
    """Raised when a value cannot be coerced to its declared column type."""


def coerce(value: Any, column_type: ColumnType) -> Any:
    """Coerce ``value`` to ``column_type``, raising :class:`TypeError_` on failure.

    ``None`` is allowed in every column (SQL-style NULL).  Lists are coerced
    to tuples for ``ARRAY`` columns so that whole rows stay hashable, which
    the join and distinct operators rely on.
    """
    if value is None:
        return None
    if column_type is ColumnType.ARRAY:
        if isinstance(value, tuple):
            return value
        if isinstance(value, list):
            return tuple(value)
        raise TypeError_(f"expected list/tuple for ARRAY column, got {type(value).__name__}")
    if column_type is ColumnType.FLOAT and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if column_type is ColumnType.BOOL and not isinstance(value, bool):
        raise TypeError_(f"expected bool, got {type(value).__name__}")
    expected = _PYTHON_TYPES[column_type]
    if isinstance(value, bool) and column_type is ColumnType.INT:
        raise TypeError_("bool is not a valid INT value")
    if not isinstance(value, expected):
        raise TypeError_(f"expected {expected.__name__} for {column_type} column, got {type(value).__name__}")
    return value
