"""The DeepDive application core: pipeline phases, run results, extractors,
the Section-5.3 feature library, and the Section-2.5 execution history."""

from repro.core.app import DeepDive
from repro.core.extractors import CandidateExtractor, run_extractors
from repro.core.featurelib import (STANDARD_TEMPLATES, FeatureLibrary,
                                   FeatureTemplate)
from repro.core.history import RunDiff, RunHistory, RunSnapshot
from repro.core.report import run_report
from repro.core.result import RunResult

__all__ = [
    "CandidateExtractor",
    "DeepDive",
    "FeatureLibrary",
    "FeatureTemplate",
    "RunDiff",
    "RunHistory",
    "RunResult",
    "RunSnapshot",
    "STANDARD_TEMPLATES",
    "run_extractors",
    "run_report",
]
