"""End-to-end tests of the DeepDive application object on a tiny inline
spouse-extraction task."""

import pytest

from repro import DeepDive, Document
from repro.eval import CAUSE_MISSING_CANDIDATE
from repro.inference import LearningOptions
from repro.nlp import Span, phrase_between

PROGRAM = """
Sentences(s text, content text).
PersonCandidate(s text, m text, token text).
MarriedCandidate(m1 text, m2 text).
PairInSentence(s text, m1 text, m2 text, t1 text, t2 text).
MarriedMentions?(m1 text, m2 text).
EL(m text, e text).
Married(e1 text, e2 text).

MarriedCandidate(m1, m2) :-
    PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), [m1 < m2].

PairInSentence(s, m1, m2, t1, t2) :-
    PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), [m1 < m2].

MarriedMentions(m1, m2) :-
    PairInSentence(s, m1, m2, t1, t2), Sentences(s, content)
    weight = phrase(t1, t2, content).

MarriedMentions_Ev(m1, m2, true) :-
    MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
"""

# Simple corpus: "X and his wife Y ..." are married; "X visited Y" are not.
MARRIED_PAIRS = [("alan", "beth"), ("carl", "dora"), ("evan", "fay"),
                 ("glen", "hope"), ("ivan", "jane"), ("kurt", "lena")]
VISITED_PAIRS = [("mike", "nora"), ("oren", "page"), ("quin", "ruth"),
                 ("seth", "tina"), ("umar", "vera"), ("walt", "xena")]

NAMES = {name for pair in MARRIED_PAIRS + VISITED_PAIRS for name in pair}


def person_extractor(sentence):
    rows = []
    for index, token in enumerate(sentence.tokens):
        if token.lower() in NAMES:
            span = Span(sentence.key, index, index + 1)
            rows.append((sentence.key, span.mention_id, token.lower()))
    return rows


def build_app(seed=0):
    app = DeepDive(PROGRAM, seed=seed)

    @app.udf("phrase")
    def phrase(t1, t2, content):
        tokens = content.lower().split()
        if t1 in tokens and t2 in tokens:
            i, j = tokens.index(t1), tokens.index(t2)
            if i > j:
                i, j = j, i
            return "phrase:" + " ".join(tokens[i + 1:j])
        return None

    app.add_extractor("PersonCandidate", person_extractor)

    # The DDlog program reads sentences through a simplified 2-column view,
    # filled by an extractor alongside candidate generation.
    app.add_extractor("Sentences", lambda s: [(s.key, s.text)])
    return app


def corpus():
    docs = []
    for i, (a, b) in enumerate(MARRIED_PAIRS):
        docs.append(Document(f"m{i}", f"{a} and his wife {b} attended."))
    for i, (a, b) in enumerate(VISITED_PAIRS):
        docs.append(Document(f"v{i}", f"{a} visited {b} yesterday."))
    return docs


def kb_rows():
    # supervise with a *subset* of the married pairs (distant supervision)
    el, married = [], []
    for a, b in MARRIED_PAIRS[:4]:
        el += [(f_mention(a), f"E_{a}"), (f_mention(b), f"E_{b}")]
        married += [(f"E_{a}", f"E_{b}"), (f"E_{b}", f"E_{a}")]
    # negative supervision: visited pairs known to be unmarried via disjoint KB
    return el, married


def f_mention(name):
    """Mention ids are sentence-position dependent; supervise via EL over all
    mentions of the name -- here we cheat by linking name text, so we instead
    produce EL rows after candidates exist.  See build_el()."""
    return name


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def run(self):
        app = build_app()
        app.load_documents(corpus())
        # entity-link every person mention by its token text
        el_rows = [(mention_id, f"E_{token}")
                   for (s, mention_id, token) in app.db["PersonCandidate"]]
        app.add_rows("EL", el_rows)
        married_rows = []
        for a, b in MARRIED_PAIRS[:4]:
            married_rows += [(f"E_{a}", f"E_{b}"), (f"E_{b}", f"E_{a}")]
        # negatives: distant supervision via a disjoint 'visited' list would
        # be a second _Ev rule; keep this app positive-only plus prior
        app.add_rows("Married", married_rows)
        result = app.run(threshold=0.8, holdout_fraction=0.0,
                         learning=LearningOptions(epochs=60, seed=0),
                         num_samples=200, burn_in=30,
                         compute_train_histogram=True)
        return app, result

    def test_candidates_generated(self, run):
        app, _ = run
        assert len(app.db["MarriedCandidate"]) == len(MARRIED_PAIRS + VISITED_PAIRS)

    def test_marginals_cover_all_candidates(self, run):
        _, result = run
        assert len(result.relation_marginals("MarriedMentions")) == 12

    def test_married_pairs_score_higher(self, run):
        app, result = run
        marginals = result.relation_marginals("MarriedMentions")
        by_token = {}
        for (s, m, t) in app.db["PersonCandidate"]:
            by_token[m] = t
        married_probs, visited_probs = [], []
        for (m1, m2), p in marginals.items():
            pair = tuple(sorted((by_token[m1], by_token[m2])))
            if pair in {tuple(sorted(x)) for x in MARRIED_PAIRS}:
                married_probs.append(p)
            else:
                visited_probs.append(p)
        assert min(married_probs) > max(visited_probs)

    def test_unsupervised_married_pairs_generalize(self, run):
        app, result = run
        # pairs 4 and 5 were never supervised but share the phrase feature
        marginals = result.relation_marginals("MarriedMentions")
        by_token = {m: t for (s, m, t) in app.db["PersonCandidate"]}
        for (m1, m2), p in marginals.items():
            tokens = {by_token[m1], by_token[m2]}
            if tokens == {"ivan", "jane"} or tokens == {"kurt", "lena"}:
                assert p > 0.6

    def test_phase_timings_recorded(self, run):
        _, result = run
        for phase in ("candidate_generation", "grounding", "learning", "inference"):
            assert phase in result.phase_timings
            assert result.phase_timings[phase] >= 0

    def test_train_histogram_present(self, run):
        _, result = run
        assert result.train_pairs
        histogram = result.train_histogram()
        assert histogram.bucket_counts.sum() == len(result.train_pairs)

    def test_summary_renders(self, run):
        _, result = run
        assert "candidates" in result.summary()

    def test_feature_stats_available(self, run):
        app, result = run
        assert any("his wife" in stat.key for stat in result.feature_stats)

    def test_error_analysis_document(self, run):
        app, result = run
        truth = set()
        by_token = {m: t for (s, m, t) in app.db["PersonCandidate"]}
        for (m1, m2) in result.relation_marginals("MarriedMentions"):
            pair = tuple(sorted((by_token[m1], by_token[m2])))
            if pair in {tuple(sorted(x)) for x in MARRIED_PAIRS}:
                truth.add((m1, m2))
        report = app.error_analysis(result, "MarriedMentions", truth)
        assert report.precision.precision > 0.9
        assert "ERROR ANALYSIS" in report.render()


class TestIncrementalFlow:
    def test_documents_after_run_flow_incrementally(self):
        app = build_app()
        app.load_documents(corpus()[:3])
        el_rows = [(m, f"E_{t}") for (s, m, t) in app.db["PersonCandidate"]]
        app.add_rows("EL", el_rows)
        app.add_rows("Married", [("E_alan", "E_beth"), ("E_beth", "E_alan")])
        first = app.run(holdout_fraction=0.0, num_samples=50, burn_in=10,
                        learning=LearningOptions(epochs=10),
                        compute_train_histogram=False)
        before = len(first.relation_marginals("MarriedMentions"))

        app.load_documents([Document("new1", "yuri and his wife zoe attended.")])
        # names outside NAMES are not extracted; use known names instead
        app.load_documents([Document("new2", "carl and his wife dora smiled.")])
        second = app.run(holdout_fraction=0.0, num_samples=50, burn_in=10,
                         learning=LearningOptions(epochs=10),
                         compute_train_histogram=False)
        after = len(second.relation_marginals("MarriedMentions"))
        assert after >= before

    def test_delete_before_ground_rejected(self):
        app = build_app()
        with pytest.raises(ValueError):
            app.remove_rows("Married", [("a", "b")])

    def test_feature_count(self):
        app = build_app()
        app.load_documents(corpus()[:1])
        app.grounder  # force grounding
        keys = [v.key for v in app.graph.variables.values()]
        assert keys
        assert app.feature_count(keys[0]) >= 1
        assert app.feature_count(("MarriedMentions", ("no", "pe"))) == 0
