"""The classified-ads corpus: structured attributes from Craigslist-style text.

Models the Section 6.4 dark-data setting structurally -- short, messy
classified ads with "very little structure, lots of extremely nonstandard
English" -- on neutral rental-listing content.  The aspirational schema is
``(ad_id, price)``, ``(ad_id, location)``, ``(ad_id, phone)``; distractor
numbers (deposits, square footage) and unmarked prices exercise the same
failure modes the paper describes for real ad corpora.  Forum posts that
repeat an ad's phone number support the paper's ad<->forum joining analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.base import GeneratedCorpus, NoiseConfig
from repro.nlp.pipeline import Document

CITIES = ["Fairview", "Riverton", "Lakewood", "Brookside", "Hillcrest",
          "Mapleton", "Ashford", "Greenfield", "Stonebridge", "Westvale"]

AD_TEMPLATES = [
    "Cozy studio in {city} . Rent ${price} per month . Call {phone} .",
    "{city} 2br apt , ${price}/mo , deposit ${deposit} . {phone}",
    "GREAT deal !! {city} room for ${price} monthly , {sqft} sqft . txt {phone}",
    "Apt available {city} area . asking ${price} . no fees . ph {phone}",
    "Sublet in {city} -- ${price} . utilities incl . reach me at {phone}",
]

FORUM_TEMPLATES = [
    "Viewed the {city} place from {phone} , landlord was friendly .",
    "Anyone rented via {phone} ? The {city} listing looks odd .",
    "I called {phone} about the {city} apartment , it was already taken .",
]


@dataclass(frozen=True)
class AdsConfig:
    """Size and noise parameters for the ads corpus."""

    num_ads: int = 40
    forum_posts_per_ad: float = 0.5
    noise: NoiseConfig = NoiseConfig()


def _phone(rng: np.random.Generator) -> str:
    return f"555-{int(rng.integers(0, 10000)):04d}"


def generate(config: AdsConfig = AdsConfig(), seed: int = 0) -> GeneratedCorpus:
    """Generate ads + forum posts with per-ad ground truth."""
    rng = np.random.default_rng(seed)
    documents: list[Document] = []
    price_truth: set[tuple] = set()
    location_truth: set[tuple] = set()
    phone_truth: set[tuple] = set()
    known_prices: list[tuple] = []
    known_locations: list[tuple] = []
    ad_phones: list[tuple[str, str, str]] = []   # (ad_id, phone, city)

    phones_seen: set[str] = set()
    for i in range(config.num_ads):
        ad_id = f"ad{i:04d}"
        city = CITIES[int(rng.integers(0, len(CITIES)))]
        price = int(rng.integers(4, 40)) * 50
        deposit = price + int(rng.integers(1, 5)) * 100
        sqft = int(rng.integers(300, 1500))
        phone = _phone(rng)
        while phone in phones_seen:
            phone = _phone(rng)
        phones_seen.add(phone)
        template = AD_TEMPLATES[int(rng.integers(0, len(AD_TEMPLATES)))]
        text = template.format(city=city, price=price, deposit=deposit,
                               sqft=sqft, phone=phone)
        documents.append(Document(ad_id, text))
        price_truth.add((ad_id, str(price)))
        location_truth.add((ad_id, city))
        phone_truth.add((ad_id, phone))
        ad_phones.append((ad_id, phone, city))
        # previously hand-annotated ads supervise a subset of the corpus
        if rng.random() < config.noise.kb_coverage:
            known_prices.append((ad_id, str(price)))
        if rng.random() < config.noise.kb_coverage:
            known_locations.append((ad_id, city))

    num_posts = int(config.num_ads * config.forum_posts_per_ad)
    for j in range(num_posts):
        ad_id, phone, city = ad_phones[int(rng.integers(0, len(ad_phones)))]
        template = FORUM_TEMPLATES[int(rng.integers(0, len(FORUM_TEMPLATES)))]
        documents.append(Document(f"forum{j:04d}",
                                  template.format(city=city, phone=phone)))

    return GeneratedCorpus(
        documents=documents,
        truth={"ad_price": price_truth, "ad_location": location_truth,
               "ad_phone": phone_truth},
        kb={"KnownPrice": known_prices, "KnownLocation": known_locations},
        metadata={"config": config, "cities": CITIES, "ad_phones": ad_phones},
    )
