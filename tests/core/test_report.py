"""Tests for the full run report."""

import pytest

from repro import DeepDive, Document
from repro.core import RunHistory, run_report
from repro.inference import LearningOptions

PROGRAM = """
Content(s text, content text).
Mention(s text, m text, token text, position int).
Fresh?(m text).
GoodList(token text).
BadList(token text).

Fresh(m) :- Mention(s, m, t, p), Content(s, content) weight = feats(t).
Fresh_Ev(m, true) :- Mention(s, m, t, p), GoodList(t).
Fresh_Ev(m, false) :- Mention(s, m, t, p), BadList(t).
"""


@pytest.fixture(scope="module")
def app_and_result():
    app = DeepDive(PROGRAM, seed=0)
    app.register_udf("feats", lambda t: [f"w:{t}"])
    app.add_extractor("Mention", lambda s: [
        (s.key, f"{s.key}:{i}", tok.lower(), i)
        for i, tok in enumerate(s.tokens) if tok.isalpha()])
    app.add_extractor("Content", lambda s: [(s.key, s.text)])
    app.load_documents([Document("d1", "apple rot pear mold fig")])
    app.add_rows("GoodList", [("apple",), ("pear",)])
    app.add_rows("BadList", [("rot",), ("mold",)])
    result = app.run(threshold=0.7, holdout_fraction=0.25,
                     learning=LearningOptions(epochs=30, seed=0),
                     num_samples=100, burn_in=15,
                     compute_train_histogram=False)
    return app, result


class TestRunReport:
    def test_contains_all_sections(self, app_and_result):
        app, result = app_and_result
        text = run_report(app, result)
        for section in ("DEEPDIVE RUN REPORT", "factor graph",
                        "output database", "top features",
                        "supervision overlap check"):
            assert section in text

    def test_calibration_included_with_holdout(self, app_and_result):
        app, result = app_and_result
        if result.holdout_pairs:
            assert "calibration" in run_report(app, result)

    def test_relation_filter(self, app_and_result):
        app, result = app_and_result
        text = run_report(app, result, relation="Fresh")
        assert "Fresh:" in text

    def test_history_diff_on_second_run(self, app_and_result):
        app, result = app_and_result
        history = RunHistory()
        first = run_report(app, result, history=history)
        assert "first recorded run" in first
        second = run_report(app, result, history=history)
        assert "change since previous run" in second
        assert len(history) == 2

    def test_clean_overlap_check(self, app_and_result):
        app, result = app_and_result
        assert "clean: no feature duplicates" in run_report(app, result)
