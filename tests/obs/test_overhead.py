"""Acceptance guard: instrumentation costs nothing when tracing is off.

Every probe site checks for an enabled collector first, so a run with the
:class:`~repro.obs.span.NoopCollector` installed (``enabled`` false) must
execute the same fast path as a run with nothing installed.  The guard
interleaves best-of-N measurements of a full ``DeepDive.run`` on a small
spouse corpus and holds the ratio to the 5% acceptance bound.
"""

import time

import pytest

from repro import obs
from repro.apps import spouse
from repro.corpus import spouse as spouse_corpus
from repro.inference import LearningOptions


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def build_app():
    corpus = spouse_corpus.generate(
        spouse_corpus.SpouseConfig(num_couples=16, num_distractor_pairs=16,
                                   num_sibling_pairs=5), seed=0)
    return spouse.build(corpus, seed=0)


def run_once(app) -> None:
    # sized so a single run takes long enough that scheduler jitter is small
    # relative to the 5% acceptance bound
    app.run(threshold=0.8, holdout_fraction=0.1,
            learning=LearningOptions(epochs=30, seed=0),
            num_samples=400, burn_in=40, compute_train_histogram=False)


def best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_noop_collector_within_5_percent():
    app = build_app()
    app.grounder                      # ground outside the measured region
    run_once(app)                     # warm every code path first

    noop = obs.NoopCollector()

    def plain():
        run_once(app)

    def with_noop():
        with obs.installed(noop):
            run_once(app)

    # interleave the variants so drift (thermal, scheduler) hits both
    rounds = 7
    plain_best = float("inf")
    noop_best = float("inf")
    for _ in range(rounds):
        plain_best = min(plain_best, best_of(1, plain))
        noop_best = min(noop_best, best_of(1, with_noop))

    overhead = noop_best / plain_best - 1.0
    assert overhead <= 0.05, (
        f"no-op collector overhead {overhead:.1%} exceeds the 5% bound "
        f"(plain {plain_best * 1000:.1f}ms, noop {noop_best * 1000:.1f}ms)")


def test_traced_run_actually_records():
    """Counter-check: the same pipeline traced produces a real profile."""
    from repro.obs import EngineConfig

    corpus = spouse_corpus.generate(
        spouse_corpus.SpouseConfig(num_couples=6, num_distractor_pairs=6,
                                   num_sibling_pairs=2), seed=0)
    app = spouse.build(corpus, seed=0, config=EngineConfig(trace=True))
    result = app.run(threshold=0.8, holdout_fraction=0.1,
                     learning=LearningOptions(epochs=5, seed=0),
                     num_samples=20, burn_in=5,
                     compute_train_histogram=False)
    profile = result.profile
    assert profile.find("grounding.define_views") is not None
    assert profile.find("inference.marginals") is not None
    assert profile.metrics["counters"].get("gibbs.sweeps", 0) > 0
