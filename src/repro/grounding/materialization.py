"""Incremental inference: sampling vs. variational materialization.

Paper, Section 4.2: "There are two popular classes of approximate inference
techniques: sampling-based materialization (inspired by sampling-based
probabilistic databases such as MCDB) and variational-based materialization
(inspired by techniques for approximating graphical models). ... these two
approaches are sensitive to changes in the size of the factor graph, the
sparsity of correlations, and the anticipated number of future changes.  The
performance varies by up to two orders of magnitude ... To automatically
choose the materialization strategy, we use a simple rule-based optimizer."

Both strategies answer the same question -- after a grounding delta, what are
the new marginals? -- with different cost profiles:

* **Sampling materialization** stores the chain state (a world + marginals).
  An update resamples only the variables within ``radius`` hops of the
  change, clamping the frontier to the stored world.  Cost scales with the
  *affected region*, so it wins on sparse graphs with few changes.
* **Variational materialization** stores mean-field parameters.  An update
  warm-starts fully-vectorized mean-field passes over the whole graph.  Cost
  per update is near-constant in the number of changed variables, so it wins
  when updates are large or frequent, at some accuracy cost on strongly
  coupled graphs.

Costs are reported in *work units* (variable-visits for sampling, edge-visits
per pass for mean field) so benchmarks can compare strategies independent of
interpreter noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.factorgraph.compiled import CompiledGraph
from repro.factorgraph.factor_functions import FactorFunction
from repro.inference.gibbs import GibbsSampler, sigmoid


@dataclass
class UpdateResult:
    """Marginals after an incremental update, plus the work spent."""

    marginals: np.ndarray
    work: float


class SamplingMaterialization:
    """Materialize the Gibbs chain; updates resample a neighbourhood."""

    def __init__(self, compiled: CompiledGraph, seed: int = 0,
                 num_samples: int = 100, burn_in: int = 20) -> None:
        self.compiled = compiled
        self.sampler = GibbsSampler(compiled, seed=seed)
        self.world = self.sampler.initial_assignment()
        result = self.sampler.marginals(num_samples=num_samples, burn_in=burn_in,
                                        assignment=self.world)
        self.marginals = result.marginals
        # materialization cost: full chain
        self.materialization_work = float(
            (num_samples + burn_in) * compiled.num_variables)

    @classmethod
    def from_state(cls, compiled: CompiledGraph, world: np.ndarray,
                   marginals: np.ndarray, seed: int = 0,
                   ) -> "SamplingMaterialization":
        """Adopt an existing chain state instead of materializing afresh.

        Used when a previous full inference run already produced a world and
        marginals for (a superset of) this graph's variables.
        """
        strategy = cls.__new__(cls)
        strategy.compiled = compiled
        strategy.sampler = GibbsSampler(compiled, seed=seed)
        strategy.world = world.copy()
        strategy.world[compiled.is_evidence] = compiled.evidence_values[
            compiled.is_evidence]
        strategy.marginals = marginals.copy()
        strategy.materialization_work = 0.0
        return strategy

    def neighbourhood(self, changed: set[int], radius: int = 1) -> np.ndarray:
        """Variables within ``radius`` general-factor hops of ``changed``."""
        compiled = self.compiled
        frontier = set(changed)
        region = set(changed)
        for _ in range(radius):
            next_frontier: set[int] = set()
            for var in frontier:
                for slot in range(compiled.vf_indptr[var], compiled.vf_indptr[var + 1]):
                    fi = compiled.vf_factors[slot]
                    lo, hi = compiled.fv_indptr[fi], compiled.fv_indptr[fi + 1]
                    for other in compiled.fv_vars[lo:hi]:
                        if other not in region:
                            next_frontier.add(int(other))
            region |= next_frontier
            frontier = next_frontier
        mask = np.zeros(compiled.num_variables, dtype=bool)
        mask[list(region)] = True
        return mask

    def update(self, changed: set[int], radius: int = 1,
               num_samples: int = 40, burn_in: int = 10) -> UpdateResult:
        """Resample the changed neighbourhood, frontier clamped to the world."""
        compiled = self.compiled
        region = self.neighbourhood(changed, radius)
        region &= ~compiled.is_evidence
        self.sampler.refresh_weights()
        unary = self.sampler._unary_deltas
        rng = self.sampler.rng
        active = np.nonzero(region)[0]
        totals = np.zeros(len(active), dtype=np.float64)
        work = 0.0
        for sweep in range(burn_in + num_samples):
            uniforms = rng.random(len(active))
            for i, var in enumerate(active):
                delta = unary[var] + compiled.general_delta(var, self.world)
                self.world[var] = uniforms[i] < sigmoid(delta)
            work += len(active)
            if sweep >= burn_in:
                totals += self.world[active]
        if num_samples:
            self.marginals[active] = totals / num_samples
        clamped = compiled.is_evidence
        self.marginals[clamped] = compiled.evidence_values[clamped]
        return UpdateResult(self.marginals.copy(), work)


class VariationalMaterialization:
    """Materialize mean-field parameters; updates warm-start full passes."""

    def __init__(self, compiled: CompiledGraph, max_passes: int = 100,
                 tolerance: float = 1e-3) -> None:
        self.compiled = compiled
        self.max_passes = max_passes
        self.tolerance = tolerance
        self.mu = np.full(compiled.num_variables, 0.5)
        self.mu[compiled.is_evidence] = compiled.evidence_values[
            compiled.is_evidence].astype(float)
        self.materialization_work = self._converge()

    @classmethod
    def from_state(cls, compiled: CompiledGraph, mu: np.ndarray,
                   max_passes: int = 100, tolerance: float = 1e-3,
                   ) -> "VariationalMaterialization":
        """Adopt persisted mean-field parameters without converging afresh.

        The serving layer checkpoints ``mu`` between ingest batches; warm
        starting from it keeps update cost at the few-pass level the
        strategy optimizer assumes, instead of paying the full
        materialization each time a service restarts.
        """
        strategy = cls.__new__(cls)
        strategy.compiled = compiled
        strategy.max_passes = max_passes
        strategy.tolerance = tolerance
        strategy.mu = mu.copy()
        strategy.mu[compiled.is_evidence] = compiled.evidence_values[
            compiled.is_evidence].astype(float)
        strategy.materialization_work = 0.0
        return strategy

    def _converge(self) -> float:
        """Run damped mean-field passes to convergence; returns work units."""
        compiled = self.compiled
        free = ~compiled.is_evidence
        work = 0.0
        edges = compiled.num_unary + len(compiled.fv_vars)
        unary = compiled.unary_deltas()
        for _ in range(self.max_passes):
            new_mu = self.mu.copy()
            for var in np.nonzero(free)[0]:
                delta = unary[var] + self._signed_expected_delta(int(var))
                new_mu[var] = float(sigmoid(delta))
            work += edges
            shift = float(np.max(np.abs(new_mu - self.mu))) if len(self.mu) else 0.0
            # light damping: enough to stabilize coupled graphs, cheap enough
            # that warm-started updates converge in a handful of passes
            self.mu = 0.2 * self.mu + 0.8 * new_mu
            if shift < self.tolerance:
                break
        return work

    def _signed_expected_delta(self, var: int) -> float:
        """Expected general-factor delta for raising P(var=1)."""
        compiled = self.compiled
        total = 0.0
        for slot in range(compiled.vf_indptr[var], compiled.vf_indptr[var + 1]):
            fi = compiled.vf_factors[slot]
            lo, hi = compiled.fv_indptr[fi], compiled.fv_indptr[fi + 1]
            members = compiled.fv_vars[lo:hi]
            negs = compiled.fv_negated[lo:hi]
            weight = compiled.weight_values[compiled.general_weight[fi]]
            mus = np.where(negs, 1.0 - self.mu[members], self.mu[members])
            position = int(np.nonzero(members == var)[0][0])
            delta = _literal_delta(compiled.general_function[fi], mus, position)
            if negs[position]:
                delta = -delta
            total += weight * delta
        return total

    def update(self, changed: set[int]) -> UpdateResult:
        """Warm-start mean-field passes after weights/structure changed."""
        clamped = self.compiled.is_evidence
        self.mu[clamped] = self.compiled.evidence_values[clamped].astype(float)
        work = self._converge()
        return UpdateResult(self.mu.copy(), work)


def _literal_delta(function: int, mus: np.ndarray, position: int) -> float:
    """E[f | literal_position = 1] - E[f | literal_position = 0], with the
    other literals independent Bernoulli(mus)."""
    others = np.delete(mus, position)
    if function == FactorFunction.AND:
        return float(np.prod(others))
    if function == FactorFunction.OR:
        return float(np.prod(1.0 - others))
    if function == FactorFunction.EQUAL:
        other = float(others[0])
        return 2.0 * other - 1.0
    if function == FactorFunction.IMPLY:
        if position == len(mus) - 1:                 # the head literal
            return float(np.prod(others))            # body all-true probability
        body_others = np.delete(mus, [position, len(mus) - 1])
        head = float(mus[-1])
        # raising a body literal can only violate the implication
        return -float(np.prod(body_others)) * (1.0 - head)
    raise ValueError(f"unexpected factor function {function}")


@dataclass(frozen=True)
class MaterializationChoice:
    """The optimizer's decision plus its reasoning inputs."""

    strategy: str                 # "sampling" or "variational"
    affected_fraction: float
    expected_updates: int
    correlation_density: float


def choose_strategy(compiled: CompiledGraph, expected_updates: int,
                    expected_change_size: int) -> MaterializationChoice:
    """The paper's 'simple rule-based optimizer'.

    Sampling wins when updates touch a small part of a sparse graph;
    variational wins for dense correlations or many anticipated updates,
    where its constant-cost full passes amortize better.
    """
    n = max(compiled.num_variables, 1)
    edges = compiled.num_unary + len(compiled.fv_vars)
    correlation_density = len(compiled.fv_vars) / n
    affected_fraction = min(1.0, expected_change_size * (1 + correlation_density) / n)
    # Expected total work: sampling ~ updates x affected-region x sweeps
    # (~25 incremental sweeps); variational ~ updates x warm-start passes
    # (~15) over all edges.
    sampling_cost = expected_updates * affected_fraction * n * 25
    variational_cost = expected_updates * 15 * edges
    strategy = ("sampling"
                if sampling_cost <= variational_cost and affected_fraction < 0.5
                else "variational")
    return MaterializationChoice(strategy, affected_fraction, expected_updates,
                                 correlation_density)
