"""A live knowledge base: ingest, query, crash, recover (repro.serve).

The batch pipeline answers "run this program over this corpus once"; the
serving layer keeps the KB *alive*.  This demo walks the full story
through :class:`~repro.serve.KBClient`, the one sanctioned surface over
both serving backends:

1. bootstrap a service over a small mention-extraction program;
2. stream in documents and supervision updates while querying between
   batches (readers see immutable versioned snapshots);
3. hot-add a DDlog rule (the full re-extraction regime);
4. simulate a crash right after a write-ahead-log append — the worst
   moment — and recover to bit-identical marginals from checkpoint + WAL;
5. rebuild the same KB sharded two ways and show the client surface
   (snapshot, query, lsn_vector, tenants) is identical either way;
6. turn on a compliance policy and watch publish-time scrubbing hide PII
   from readers while ``scan()`` still audits the raw store underneath.

Run:  python examples/serving_loop.py
"""

import shutil
import tempfile

from repro.compliance import CompliancePolicy
from repro.core.app import DeepDive
from repro.inference import LearningOptions
from repro.serve import (AddRules, KBClient, ServeConfig, ServiceFailed,
                         add_documents, add_rows, remove_rows)

PROGRAM = """
Content(s text, content text).
NameMention(s text, m text, token text, position int).
GoodName?(m text).
GoodList(token text).
BadList(token text).

GoodName(m) :-
    NameMention(s, m, t, p), Content(s, content)
    weight = name_features(t, content).

GoodName_Ev(m, true) :- NameMention(s, m, t, p), GoodList(t).
GoodName_Ev(m, false) :- NameMention(s, m, t, p), BadList(t).
"""

GOOD = ["apple", "plum", "pear", "fig", "grape", "melon"]
BAD = ["rust", "mold", "rot", "slime", "blight", "decay"]


def extractor(sentence):
    rows = []
    for position, token in enumerate(sentence.tokens):
        lower = token.lower()
        if lower in GOOD + BAD:
            rows.append((sentence.key, f"{sentence.key}:{position}",
                         lower, position))
    return rows


def app_factory(extra_rules=""):
    """The serve contract: a fresh app per call, rule deltas appended."""
    source = PROGRAM + ("\n" + extra_rules if extra_rules else "")
    app = DeepDive(source, seed=0)
    app.register_udf("name_features",
                     lambda t, content: [f"word:{t}",
                                         "fresh" if t in GOOD else "spoiled"])
    app.add_extractor("NameMention", extractor)
    app.add_extractor("Content", lambda s: [(s.key, s.text)])
    return app


RUN_KWARGS = dict(threshold=0.7, learning=LearningOptions(epochs=40, seed=0),
                  num_samples=120, burn_in=20)


def describe(tag, snapshot):
    accepted = sorted(snapshot.output_tuples("GoodName"))
    print(f"  {tag}: version {snapshot.version} (lsn {snapshot.lsn}, "
          f"refresh={snapshot.refresh}) — {len(snapshot)} variables, "
          f"{len(accepted)} accepted")


def main():
    directory = tempfile.mkdtemp(prefix="repro-serve-")
    config = ServeConfig(checkpoint_every=2, refresh_samples=60,
                         refresh_burn_in=15)
    bootstrap = [
        add_documents([(f"d{i}", f"the {g} and the {b} sat there .")
                       for i, (g, b) in enumerate(zip(GOOD[:3], BAD[:3]))]),
        add_rows("GoodList", [(g,) for g in GOOD[:3]]),
        add_rows("BadList", [(b,) for b in BAD[:3]]),
    ]

    print("== bootstrap (full learn + inference, checkpoint 0)")
    client = KBClient.create(directory, app_factory, bootstrap,
                             config=config, run_kwargs=RUN_KWARGS)
    describe("v0", client.snapshot())

    print("\n== streaming ingest (incremental grounding + refresh)")
    snapshot = client.ingest(
        [add_documents([("n0", "the grape and the blight sat there .")])])
    describe("new doc", snapshot)
    snapshot = client.ingest([remove_rows("GoodList", [("apple",)])])
    describe("retract supervision", snapshot)

    print("\n== rule delta (full re-extraction regime)")
    snapshot = client.ingest(
        [AddRules("ExtraGood(token text).\n"
                  "GoodName_Ev(m, true) :- "
                  "NameMention(s, m, t, p), ExtraGood(t).")])
    describe("new rule", snapshot)
    snapshot = client.ingest([add_rows("ExtraGood", [("grape",)])])
    describe("supervise via new rule", snapshot)
    expected = dict(snapshot.marginals)

    print("\n== crash: die right after the WAL append of the next batch")
    # admin/fault surfaces live on the backend; .service is the escape hatch
    client.service.fault_hooks["after_wal_append"] = lambda lsn, batch: (
        (_ for _ in ()).throw(RuntimeError(f"power loss at lsn {lsn}")))
    try:
        client.ingest([add_documents([("n1", "the melon sat there .")])])
    except ServiceFailed as failure:
        print(f"  ingest failed as expected: {failure}")
    client.service.wal.close()

    print("\n== recover: newest checkpoint + WAL tail replay")
    with KBClient.open(directory, app_factory, config=config,
                       run_kwargs=RUN_KWARGS) as recovered:
        snapshot = recovered.snapshot()
        describe("recovered", snapshot)
        survivors = {key: value for key, value in snapshot.marginals.items()
                     if key in expected}
        identical = survivors == {key: expected[key] for key in survivors}
        print(f"  pre-crash marginals bit-identical after recovery: "
              f"{identical}")
        print(f"  the torn batch (durable in the WAL) was replayed too: "
              f"lsn {snapshot.lsn}")
    shutil.rmtree(directory)

    print("\n== the same KB, sharded: identical client surface")
    directory = tempfile.mkdtemp(prefix="repro-serve-sharded-")
    sharded_config = config.with_options(shards=2, checkpoint_every=0)
    with KBClient.create(directory, app_factory, bootstrap,
                         config=sharded_config,
                         run_kwargs=RUN_KWARGS) as client:
        print(f"  backend: {client!r}")
        client.service.register_tenant("ingest-team", quota=64)
        merged = client.ingest(
            [add_documents([("n0", "the grape and the blight sat there .")])],
            tenant="ingest-team")
        accepted = sorted(client.query("GoodName"))
        print(f"  lsn vector {merged.lsn_vector} "
              f"(one component per shard), {len(accepted)} accepted")
        # versioned cross-shard read: the vector pins every shard at once
        pinned = client.snapshot_at(merged.lsn_vector)
        print(f"  snapshot_at(vector) re-reads the same view: "
              f"{dict(pinned.marginals) == dict(merged.marginals)}")
    shutil.rmtree(directory)

    print("\n== compliance: scrubbed published views over a raw store")
    directory = tempfile.mkdtemp(prefix="repro-serve-compliance-")
    policy = CompliancePolicy(enabled=True, default_action="anonymize",
                              min_confidence=0.5)
    with KBClient.create(directory, app_factory, bootstrap,
                         config=config.with_options(compliance=policy,
                                                    checkpoint_every=0),
                         run_kwargs=RUN_KWARGS) as client:
        # a lead whose document key is an email address, with a phone
        # number in the content — exactly the dark data the paper mines
        snapshot = client.ingest([add_documents(
            [("ann@leads.example", "call 555-0187 , the plum sat there .")])])
        keys = [str(values) for _rel, values in snapshot.marginals]
        leaked = [key for key in keys if "ann@leads.example" in key]
        surrogates = [key for key in keys if "redacted.example" in key]
        print(f"  published keys leaking the raw email: {len(leaked)}; "
              f"stable surrogates instead: {len(surrogates)}")
        manifest = client.compliance_manifest()
        print(f"  snapshot manifest: "
              f"{sorted(manifest.detected_columns())} -> anonymize")
        # the raw store is untouched — the audit scan still sees the
        # phone number sitting in the raw document content
        audit = client.scan()
        found = sorted({report.detector for report in audit if report.hits})
        print(f"  scan() over the raw store ({audit.rows_scanned} rows) "
              f"finds: {found}")
    shutil.rmtree(directory)


if __name__ == "__main__":
    main()
