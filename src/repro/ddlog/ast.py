"""Abstract syntax for the DDlog-like rule language.

The language covers the constructs of the paper's Section 3:

* relation declarations, with ``?`` marking *variable relations* whose tuples
  are Boolean random variables (``MarriedMentions?(m1 text, m2 text).``);
* candidate mappings -- plain datalog derivation rules (R1 in the paper);
* feature rules -- a variable-relation head plus ``weight = udf(...)``,
  grounding one ``IS_TRUE`` factor per feature value (FE1);
* supervision rules -- derivation rules whose head is an ``_Ev`` evidence
  relation with a boolean label column (S1);
* inference rules -- multiple variable-relation head atoms joined by a
  logical connective, grounding correlation factors (Markov-logic style).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Union


# --------------------------------------------------------------------- terms
@dataclass(frozen=True)
class Var:
    """A datalog variable, e.g. ``m1``."""

    name: str


@dataclass(frozen=True)
class Const:
    """A literal constant term (string, number, or boolean)."""

    value: Any


Term = Union[Var, Const]


# --------------------------------------------------------------------- atoms
@dataclass(frozen=True)
class RelationAtom:
    """``Name(t1, t2, ...)`` in a rule body or head."""

    relation: str
    terms: tuple[Term, ...]
    negated: bool = False       # only meaningful in heads of inference rules

    def variables(self) -> list[str]:
        return [t.name for t in self.terms if isinstance(t, Var)]


@dataclass(frozen=True)
class Comparison:
    """A bracketed condition ``[x < y]`` / ``[m1 != m2]``."""

    op: str                     # one of == != < <= > >=
    left: Term
    right: Term


@dataclass(frozen=True)
class UdfCondition:
    """A bracketed boolean UDF filter ``[is_title_case(m)]``."""

    udf: str
    args: tuple[Term, ...]
    negated: bool = False


@dataclass(frozen=True)
class UdfBinding:
    """A body computation ``z = f(x, y)`` binding ``z`` per row."""

    target: str
    udf: str
    args: tuple[Term, ...]


BodyItem = Union[RelationAtom, Comparison, UdfCondition, UdfBinding]


# ------------------------------------------------------------------- weights
@dataclass(frozen=True)
class FixedWeight:
    """``weight = 5.0`` -- an untrained weight shared by all groundings."""

    value: float


@dataclass(frozen=True)
class UdfWeight:
    """``weight = phrase(m1, m2, sent)`` -- ties weights by the UDF's value.

    The UDF may return ``None`` (no factor), one key, or an iterable of keys
    (one factor per key) -- DeepDive's multi-feature extractors.
    """

    udf: str
    args: tuple[Term, ...]


@dataclass(frozen=True)
class VarWeight:
    """``weight = phrasetext`` -- ties weights by a bound variable's value."""

    var: str


@dataclass(frozen=True)
class PerRuleWeight:
    """``weight = ?`` -- one learned weight for the whole rule."""


WeightSpec = Union[FixedWeight, UdfWeight, VarWeight, PerRuleWeight]


# --------------------------------------------------------------------- rules
class HeadConnective(enum.Enum):
    """Connective joining multiple head atoms of an inference rule."""

    IMPLY = "=>"
    AND = "&"
    OR = "|"
    EQUAL = "="


class RuleKind(enum.Enum):
    DERIVATION = "derivation"       # candidate mapping / plain view
    FEATURE = "feature"             # IS_TRUE factor per grounding
    SUPERVISION = "supervision"     # populates an _Ev evidence relation
    INFERENCE = "inference"         # correlation factor over >= 2 atoms


@dataclass(frozen=True)
class Rule:
    """One DDlog rule, already classified by the parser."""

    kind: RuleKind
    heads: tuple[RelationAtom, ...]
    connective: HeadConnective | None
    body: tuple[BodyItem, ...]
    weight: WeightSpec | None
    text: str = ""                  # original source, for error analysis

    @property
    def head(self) -> RelationAtom:
        return self.heads[0]


# ------------------------------------------------------------------- program
@dataclass(frozen=True)
class Declaration:
    """A relation declaration with typed columns."""

    name: str
    columns: tuple[tuple[str, str], ...]    # (column name, type name)
    is_variable: bool = False               # declared with '?'

    @property
    def arity(self) -> int:
        return len(self.columns)


@dataclass
class ProgramAst:
    """The parsed program: declarations plus rules in source order."""

    declarations: list[Declaration] = field(default_factory=list)
    rules: list[Rule] = field(default_factory=list)

    def declaration(self, name: str) -> Declaration | None:
        for decl in self.declarations:
            if decl.name == name:
                return decl
        return None
