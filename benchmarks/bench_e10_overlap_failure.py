"""E10 -- Section 8: the supervision/feature overlap failure mode.

Paper artifact: "if the distant supervision rule is identical to or extremely
similar to a feature function, standard statistical training procedures will
fail badly...  the training procedure will build a model that places all
weight on the single feature that overlaps with the supervision rule.  The
trained statistical model will -- reasonably enough -- have little
effectiveness in the real world."

We build the spouse app twice: once normally, once with an extra feature
that fires exactly when the supervision rule fires (mention pair found in the
KB).  Shape checks: the poisoned model concentrates weight on the duplicate
feature, held-out quality collapses relative to the clean model, and the
overlap detector flags the culprit.
"""

from __future__ import annotations

from conftest import once

from repro.apps import spouse
from repro.core.app import DeepDive
from repro.corpus import spouse as spouse_corpus
from repro.inference import LearningOptions
from repro.supervision import detect_supervision_overlap

RUN_KWARGS = dict(threshold=0.8, holdout_fraction=0.0,
                  learning=LearningOptions(epochs=60, seed=0),
                  num_samples=250, burn_in=40, compute_train_histogram=False)


def build_poisoned(corpus, seed=0) -> DeepDive:
    """The spouse app with a feature that duplicates the DS rule."""
    app = DeepDive(spouse.PROGRAM, seed=seed)

    # which (sorted) mention-token pairs the Married KB covers
    kb_entities = {frozenset(pair) for pair in corpus.kb["Married"]}
    name_of = corpus.metadata["name_of"]
    kb_name_pairs = {frozenset((name_of[a].lower(), name_of[b].lower()))
                     for a, b in corpus.kb["Married"]}

    from repro.apps.common import pair_features
    from repro.nlp.tokenize import token_texts

    def poisoned_features(p1, p2, content):
        features = pair_features(p1, p2, content)
        tokens = [t.lower() for t in token_texts(content)]
        pair = frozenset((tokens[p1], tokens[p2]))
        if pair in kb_name_pairs:
            # identical in extension to the distant supervision rule
            features.append("in_marriage_kb")
        return features

    app.register_udf("spouse_features", poisoned_features)
    known_names = {name.lower() for name, _ in corpus.kb["NameEL"]}
    app.add_extractor("PersonCandidate",
                      spouse.person_extractor_factory(known_names))
    app.add_extractor("SpouseSentence", lambda s: [(s.key, s.text)])
    app.load_documents(corpus.documents)
    name_entities = {}
    for name, entity in corpus.kb["NameEL"]:
        name_entities.setdefault(name.lower(), []).append(entity)
    el_rows = []
    for (_, mention_id, token, _) in app.db["PersonCandidate"].distinct_rows():
        for entity in name_entities.get(token, ()):
            el_rows.append((mention_id, entity))
    app.add_rows("EL", el_rows)
    app.add_rows("Married", corpus.kb["Married"])
    app.add_rows("Sibling", corpus.kb["Sibling"])
    acquainted = []
    for a, b in corpus.metadata["distractors"][::2]:
        acquainted += [(a, b), (b, a)]
    app.add_rows("Acquainted", acquainted)
    return app


def heldout_recall(app, result, corpus):
    """Recall restricted to couples the KB does NOT cover -- the 'real
    world' the poisoned model fails in."""
    kb_entities = {frozenset(pair) for pair in corpus.kb["Married"]}
    name_of = corpus.metadata["name_of"]
    token_of = {m: t for (_, m, t, _)
                in app.db["PersonCandidate"].distinct_rows()}
    gold = spouse.gold_mention_pairs(app, corpus)
    unsupervised_gold = set()
    entity_of = {}
    for a, b in corpus.metadata["couples"]:
        entity_of[name_of[a].lower()] = a
        entity_of[name_of[b].lower()] = b
    for m1, m2 in gold:
        e1 = entity_of.get(token_of[m1])
        e2 = entity_of.get(token_of[m2])
        if e1 and e2 and frozenset((e1, e2)) not in kb_entities:
            unsupervised_gold.add((m1, m2))
    if not unsupervised_gold:
        return float("nan")
    accepted = result.output_tuples("MarriedMentions")
    return len(unsupervised_gold & accepted) / len(unsupervised_gold)


def test_e10_overlap_failure(benchmark, reporter):
    corpus = spouse_corpus.generate(
        spouse_corpus.SpouseConfig(num_couples=40, num_distractor_pairs=30,
                                   num_sibling_pairs=10,
                                   sentences_per_pair=3), seed=41)
    outcome = {}

    def experiment():
        clean = spouse.build(corpus, seed=0)
        clean_result = clean.run(**RUN_KWARGS)
        outcome["clean_recall"] = heldout_recall(clean, clean_result, corpus)
        outcome["clean_warnings"] = detect_supervision_overlap(clean.graph)

        poisoned = build_poisoned(corpus, seed=0)
        poisoned_result = poisoned.run(**RUN_KWARGS)
        outcome["poisoned_recall"] = heldout_recall(poisoned, poisoned_result,
                                                    corpus)
        outcome["poisoned_warnings"] = detect_supervision_overlap(poisoned.graph)
        weights = {s.key: (s.weight, s.observations)
                   for s in poisoned_result.feature_stats}
        dup_key = next(k for k in weights if "in_marriage_kb" in k)
        dup_weight = abs(weights[dup_key][0])
        other = max(abs(w) for k, (w, _) in weights.items()
                    if "in_marriage_kb" not in k and "between:" in k)
        outcome["dup_weight"] = dup_weight
        outcome["max_phrase_weight"] = other
        return outcome

    once(benchmark, experiment)

    reporter.line("E10 / Sec 8 -- supervision/feature overlap failure")
    reporter.line("paper: a feature identical to the DS rule absorbs the")
    reporter.line("training signal and the model stops generalizing")
    reporter.line()
    reporter.table(
        ["model", "held-out (non-KB) recall", "overlap warnings"],
        [["clean", f"{outcome['clean_recall']:.3f}",
          len(outcome["clean_warnings"])],
         ["poisoned", f"{outcome['poisoned_recall']:.3f}",
          len(outcome["poisoned_warnings"])]])
    reporter.line()
    reporter.line(f"|weight| of duplicate feature: {outcome['dup_weight']:.2f}; "
                  f"max |weight| of any phrase feature: "
                  f"{outcome['max_phrase_weight']:.2f}")
    if outcome["poisoned_warnings"]:
        reporter.line("detector: " + outcome["poisoned_warnings"][0].describe())

    # the duplicate feature soaks up the signal...
    assert outcome["dup_weight"] > outcome["max_phrase_weight"]
    # ...generalization to non-KB couples degrades...
    assert outcome["poisoned_recall"] < outcome["clean_recall"] - 0.1
    # ...and the detector catches it while the clean app stays silent
    assert any("in_marriage_kb" in w.weight_key
               for w in outcome["poisoned_warnings"])
    assert not outcome["clean_warnings"]
