"""The books-vs-movies corpus for the integrated-processing argument (E8).

Section 2.4's thought experiment: build a book catalog ``(bookTitle, author,
price)`` from review pages with a 98%-precision extractor whose residual
errors are *movies* misparsed as books.  A siloed extract-then-integrate
pipeline cannot repair those errors; an integrated system simply uses a
freely available movie dictionary as one more feature/filter.

Review pages name a title, a creator (author or director), and a price.
Movie reviews use wording close enough to book reviews that a surface
extractor confuses a controlled fraction of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.base import GeneratedCorpus, NoiseConfig, synthetic_names
from repro.nlp.pipeline import Document

BOOK_TEMPLATES = [
    "Review of {title} by {creator} . A gripping novel . Price $ {price} .",
    "{title} by {creator} is this month's book pick . Buy for $ {price} .",
    "Paperback {title} , written by {creator} , now $ {price} .",
]

MOVIE_TEMPLATES = [
    # 'by <director>' phrasing makes these look like book reviews
    "Review of {title} by {creator} . A stunning film . Tickets $ {price} .",
    "{title} by {creator} screens this week . Admission $ {price} .",
]

MOVIE_TEMPLATES_CLEAR = [
    "The movie {title} , directed by {creator} , opens Friday . Tickets $ {price} .",
]


@dataclass(frozen=True)
class BooksConfig:
    """Size parameters; ``confusable_movie_fraction`` controls how many movie
    reviews read like book reviews (the 2% extractor error class, scaled up
    so the effect is measurable)."""

    num_books: int = 40
    num_movies: int = 20
    confusable_movie_fraction: float = 0.6
    catalog_coverage: float = 0.5
    noise: NoiseConfig = NoiseConfig()


def generate(config: BooksConfig = BooksConfig(), seed: int = 0) -> GeneratedCorpus:
    """Generate review pages, the partial book catalog, and a movie dictionary."""
    rng = np.random.default_rng(seed)
    book_titles = [f"The {w}" for w in synthetic_names(config.num_books, rng, length=6)]
    movie_titles = [f"The {w}" for w in synthetic_names(config.num_movies, rng,
                                                        prefix="", length=7)]
    creators = synthetic_names(config.num_books + config.num_movies, rng, length=5)

    documents: list[Document] = []
    truth: set[tuple] = set()
    catalog: list[tuple] = []

    for i, title in enumerate(book_titles):
        creator = creators[i]
        price = f"{int(rng.integers(8, 40))}.99"
        template = BOOK_TEMPLATES[int(rng.integers(0, len(BOOK_TEMPLATES)))]
        documents.append(Document(
            f"b{i:04d}", template.format(title=title, creator=creator, price=price)))
        truth.add((title, price))
        if rng.random() < config.catalog_coverage:
            catalog.append((title, creator))

    for j, title in enumerate(movie_titles):
        creator = creators[config.num_books + j]
        price = f"{int(rng.integers(8, 20))}.50"
        if rng.random() < config.confusable_movie_fraction:
            pool = MOVIE_TEMPLATES
        else:
            pool = MOVIE_TEMPLATES_CLEAR
        template = pool[int(rng.integers(0, len(pool)))]
        documents.append(Document(
            f"m{j:04d}", template.format(title=title, creator=creator, price=price)))

    return GeneratedCorpus(
        documents=documents,
        truth={"book_price": truth},
        kb={"Catalog": catalog, "MovieDict": [(t,) for t in movie_titles]},
        metadata={"config": config, "book_titles": book_titles,
                  "movie_titles": movie_titles},
    )
