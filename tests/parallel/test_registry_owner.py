"""Owner-partitioned pool registry: private pools, pins, shard sizing."""

import pytest

from repro.parallel import (acquire_pool, effective_cpus, get_pool, pool_pins,
                            release_pool, shutdown_pools)
from repro.parallel.registry import _POOLS


@pytest.fixture(autouse=True)
def clean_registry():
    shutdown_pools()
    yield
    shutdown_pools()


class TestOwnerPartition:
    def test_same_owner_shares_one_pool(self):
        first = get_pool(2, owner="shard-00")
        second = get_pool(2, owner="shard-00")
        assert first is not None and first is second

    def test_distinct_owners_get_distinct_pools(self):
        """The PR-6 registry keyed pools on (workers, mode) only, so two
        shards asking for the same shape silently shared workers — and
        serialized both shards' fan-outs through one set of processes."""
        shared = get_pool(2)
        a = get_pool(2, owner="shard-00")
        b = get_pool(2, owner="shard-01")
        assert a is not None and b is not None
        assert a is not b
        assert shared is not a and shared is not b

    def test_anonymous_callers_share_the_default_partition(self):
        assert get_pool(2) is get_pool(2, owner=None)

    def test_owner_pools_are_rebuilt_after_close(self):
        pool = get_pool(2, owner="shard-00")
        pool.close()
        fresh = get_pool(2, owner="shard-00")
        assert fresh is not pool and not fresh.closed


class TestPins:
    def test_acquire_release_counts_per_owner(self):
        pool = acquire_pool(2, owner="shard-00")
        assert pool_pins(pool) == 1
        assert acquire_pool(2, owner="shard-00") is pool
        assert pool_pins(pool) == 2
        release_pool(pool)
        release_pool(pool)
        assert pool_pins(pool) == 0
        assert not pool.closed                   # stays warm for the next pin

    def test_pins_do_not_leak_across_owners(self):
        mine = acquire_pool(2, owner="shard-00")
        other = get_pool(2, owner="shard-01")
        assert pool_pins(mine) == 1
        assert pool_pins(other) == 0

    def test_release_is_idempotent_and_none_safe(self):
        release_pool(None)
        pool = acquire_pool(2, owner="shard-00")
        release_pool(pool)
        release_pool(pool)                       # extra release: clamped at 0
        assert pool_pins(pool) == 0

    def test_shutdown_clears_every_partition(self):
        get_pool(2)
        get_pool(2, owner="shard-00")
        assert len(_POOLS) == 2
        shutdown_pools()
        assert len(_POOLS) == 0


class TestEffectiveCpus:
    def test_positive(self):
        assert effective_cpus() >= 1

    def test_shard_cap_formula_never_zero(self):
        cpus = effective_cpus()
        for shards in (1, 2, 4, 64):
            assert max(1, min(8, cpus // shards)) >= 1
