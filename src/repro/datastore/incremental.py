"""Stateful incremental plan evaluation: true delta-time view maintenance.

The textbook delta rules in :mod:`repro.datastore.plan` are correct but
re-evaluate join siblings from scratch, making "incremental" maintenance as
expensive as full recomputation.  This module implements the production
version: every Join node materializes hash indexes of both children's
current outputs (keyed on the join columns), so absorbing a delta costs
O(|delta| x match fan-out) hash probes -- the actual DRed economics of paper
Section 4.1.

Space/time trade-off: join inputs are materialized once per join node.  For
DeepDive-style rule bodies (small dimension tables joined to large candidate
relations) this is the same trade PostgreSQL's matviews make.
"""

from __future__ import annotations

from collections import Counter

from repro.datastore.ivm import SignedDelta
from repro.datastore.plan import (Extend, Join, Plan, Project, Rename, Scan,
                                  Select, Union)
from repro.datastore.relation import Row
from repro.datastore.schema import Schema


class IncrementalEvaluator:
    """Maintains one plan's output incrementally from base-relation deltas.

    Construction evaluates the plan once (initial load) and builds join
    indexes bottom-up.  :meth:`apply` consumes a dict of base-relation
    signed deltas and returns the signed delta of the plan output, updating
    all internal state.
    """

    def __init__(self, plan: Plan, db) -> None:
        self.plan = plan
        self.schema = plan.schema(db)
        self._root = _build(plan, db)

    def current(self) -> Counter:
        """The plan's current output as a row -> count bag (copy)."""
        return Counter(self._root.output())

    def apply(self, deltas: dict[str, SignedDelta]) -> SignedDelta:
        """Absorb base deltas; return the output delta."""
        return self._root.apply(deltas)


# --------------------------------------------------------------------- nodes
class _Node:
    schema: Schema

    def output(self) -> Counter:
        raise NotImplementedError

    def apply(self, deltas: dict[str, SignedDelta]) -> SignedDelta:
        raise NotImplementedError

    def touches(self, relations: set[str]) -> bool:
        raise NotImplementedError


class _ScanNode(_Node):
    """Reads a base relation; mirrors its contents as local state so later
    deltas do not depend on when the caller mutates the base relation."""

    def __init__(self, plan: Scan, db) -> None:
        self.relation = plan.relation
        self.schema = db[plan.relation].schema
        self._rows: Counter[Row] = Counter()
        for row, count in db[plan.relation].counted_rows():
            self._rows[row] += count

    def output(self) -> Counter:
        return self._rows

    def touches(self, relations: set[str]) -> bool:
        return self.relation in relations

    def apply(self, deltas: dict[str, SignedDelta]) -> SignedDelta:
        delta = deltas.get(self.relation)
        out = SignedDelta(self.schema)
        if delta is None:
            return out
        for row, count in delta.items():
            new = self._rows[row] + count
            if new < 0:
                raise ValueError(
                    f"negative multiplicity for {row!r} in {self.relation}")
            if new == 0:
                del self._rows[row]
            else:
                self._rows[row] = new
            out.add(row, count)
        return out


class _MapNode(_Node):
    """Stateless row-wise nodes: Select / Project / Rename / Extend."""

    def __init__(self, plan: Plan, db, child: _Node) -> None:
        self.child = child
        self.schema = plan.schema(db)
        if isinstance(plan, Select):
            predicate = plan.predicate
            child_schema = child.schema

            def transform(row: Row) -> Row | None:
                return row if predicate(child_schema.row_dict(row)) else None
        elif isinstance(plan, Project):
            positions = [child.schema.position(c) for c in plan.columns]

            def transform(row: Row) -> Row | None:
                return tuple(row[i] for i in positions)
        elif isinstance(plan, Rename):
            def transform(row: Row) -> Row | None:
                return row
        elif isinstance(plan, Extend):
            fn = plan.fn
            child_schema = child.schema
            out_schema = self.schema

            def transform(row: Row) -> Row | None:
                return out_schema.validate_row(
                    row + (fn(child_schema.row_dict(row)),))
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unsupported map node {type(plan).__name__}")
        self._transform = transform

    def output(self) -> Counter:
        result: Counter = Counter()
        for row, count in self.child.output().items():
            mapped = self._transform(row)
            if mapped is not None:
                result[mapped] += count
        return result

    def touches(self, relations: set[str]) -> bool:
        return self.child.touches(relations)

    def apply(self, deltas: dict[str, SignedDelta]) -> SignedDelta:
        child_delta = self.child.apply(deltas)
        out = SignedDelta(self.schema)
        for row, count in child_delta.items():
            mapped = self._transform(row)
            if mapped is not None:
                out.add(mapped, count)
        return out


class _JoinNode(_Node):
    """Equi-join with materialized hash indexes of both children."""

    def __init__(self, plan: Join, db, left: _Node, right: _Node) -> None:
        self.left = left
        self.right = right
        self.schema = plan.schema(db)
        self._left_positions = [left.schema.position(a) for a, _ in plan.on]
        self._right_positions = [right.schema.position(b) for _, b in plan.on]
        right_keys = {b for _, b in plan.on}
        self._keep_positions = [right.schema.position(c)
                                for c in right.schema.names
                                if c not in right_keys]
        self._left_index: dict[tuple, Counter[Row]] = {}
        self._right_index: dict[tuple, Counter[Row]] = {}
        for row, count in left.output().items():
            self._bump(self._left_index, self._left_key(row), row, count)
        for row, count in right.output().items():
            self._bump(self._right_index, self._right_key(row), row, count)

    def _left_key(self, row: Row) -> tuple:
        return tuple(row[i] for i in self._left_positions)

    def _right_key(self, row: Row) -> tuple:
        return tuple(row[i] for i in self._right_positions)

    @staticmethod
    def _bump(index: dict[tuple, Counter[Row]], key: tuple, row: Row,
              count: int) -> None:
        bucket = index.setdefault(key, Counter())
        new = bucket[row] + count
        if new == 0:
            del bucket[row]
            if not bucket:
                del index[key]
        else:
            bucket[row] = new

    def _combine(self, left_row: Row, right_row: Row) -> Row:
        return left_row + tuple(right_row[i] for i in self._keep_positions)

    def output(self) -> Counter:
        result: Counter = Counter()
        for key, left_bucket in self._left_index.items():
            right_bucket = self._right_index.get(key)
            if not right_bucket:
                continue
            for left_row, left_count in left_bucket.items():
                for right_row, right_count in right_bucket.items():
                    result[self._combine(left_row, right_row)] += \
                        left_count * right_count
        return result

    def touches(self, relations: set[str]) -> bool:
        return self.left.touches(relations) or self.right.touches(relations)

    def apply(self, deltas: dict[str, SignedDelta]) -> SignedDelta:
        left_delta = self.left.apply(deltas)
        right_delta = self.right.apply(deltas)
        out = SignedDelta(self.schema)

        # d(L >< R) = dL >< R_before  +  L_after >< dR
        for row, count in left_delta.items():
            bucket = self._right_index.get(self._left_key(row))
            if bucket:
                for right_row, right_count in bucket.items():
                    out.add(self._combine(row, right_row), count * right_count)
        for row, count in left_delta.items():
            self._bump(self._left_index, self._left_key(row), row, count)

        for row, count in right_delta.items():
            bucket = self._left_index.get(self._right_key(row))
            if bucket:
                for left_row, left_count in bucket.items():
                    out.add(self._combine(left_row, row), count * left_count)
        for row, count in right_delta.items():
            self._bump(self._right_index, self._right_key(row), row, count)
        return out


class _UnionNode(_Node):
    def __init__(self, plan: Union, db, children: list[_Node]) -> None:
        self.children = children
        self.schema = plan.schema(db)

    def output(self) -> Counter:
        result: Counter = Counter()
        for child in self.children:
            result.update(child.output())
        return result

    def touches(self, relations: set[str]) -> bool:
        return any(child.touches(relations) for child in self.children)

    def apply(self, deltas: dict[str, SignedDelta]) -> SignedDelta:
        out = SignedDelta(self.schema)
        for child in self.children:
            for row, count in child.apply(deltas).items():
                out.add(row, count)
        return out


def _build(plan: Plan, db) -> _Node:
    if isinstance(plan, Scan):
        return _ScanNode(plan, db)
    if isinstance(plan, (Select, Project, Rename, Extend)):
        return _MapNode(plan, db, _build(plan.child, db))
    if isinstance(plan, Join):
        return _JoinNode(plan, db, _build(plan.left, db), _build(plan.right, db))
    if isinstance(plan, Union):
        return _UnionNode(plan, db, [_build(c, db) for c in plan.children])
    raise TypeError(f"cannot incrementally evaluate {type(plan).__name__}")
