"""Tests for app-level incremental inference (Section 4.2, end to end)."""

import pytest

from repro import DeepDive, Document
from repro.inference import LearningOptions

PROGRAM = """
Content(s text, content text).
NameMention(s text, m text, token text, position int).
GoodName?(m text).
GoodList(token text).
BadList(token text).

GoodName(m) :-
    NameMention(s, m, t, p), Content(s, content)
    weight = name_features(t, content).

GoodName_Ev(m, true) :- NameMention(s, m, t, p), GoodList(t).
GoodName_Ev(m, false) :- NameMention(s, m, t, p), BadList(t).
"""

GOOD = ["apple", "plum", "pear", "fig", "grape", "melon"]
BAD = ["rust", "mold", "rot", "slime", "blight", "decay"]


def extractor(sentence):
    rows = []
    for position, token in enumerate(sentence.tokens):
        lower = token.lower()
        if lower in GOOD + BAD:
            rows.append((sentence.key, f"{sentence.key}:{position}",
                         lower, position))
    return rows


def build_app():
    app = DeepDive(PROGRAM, seed=0)
    app.register_udf("name_features",
                     lambda t, content: [f"word:{t}",
                                         "fresh" if t in GOOD else "spoiled"])
    app.add_extractor("NameMention", extractor)
    app.add_extractor("Content", lambda s: [(s.key, s.text)])
    docs = [Document(f"d{i}", f"the {g} and the {b} sat there .")
            for i, (g, b) in enumerate(zip(GOOD[:4], BAD[:4]))]
    app.load_documents(docs)
    app.add_rows("GoodList", [(g,) for g in GOOD[:3]])
    app.add_rows("BadList", [(b,) for b in BAD[:3]])
    return app


RUN_KWARGS = dict(threshold=0.7, holdout_fraction=0.0,
                  learning=LearningOptions(epochs=50, seed=0),
                  num_samples=200, burn_in=30, compute_train_histogram=False)


class TestRunIncremental:
    def test_falls_back_to_full_run_without_state(self):
        app = build_app()
        result = app.run_incremental(threshold=0.7)
        assert result.marginals  # a full run happened

    def test_new_document_updates_only_locally(self):
        app = build_app()
        first = app.run(**RUN_KWARGS)
        before = dict(first.marginals)

        app.load_documents([Document("new", "the grape and the blight sat there .")])
        second = app.run_incremental(threshold=0.7)

        # new variables got probabilities
        new_keys = set(second.marginals) - set(before)
        assert len(new_keys) == 2
        # the new 'grape' mention shares the learned 'fresh' feature
        grape = next(k for k in new_keys if "grape" in str(
            _token_of(app, k[1][0])))
        assert second.marginals[grape] > 0.6
        blight = next(k for k in new_keys if "blight" in str(
            _token_of(app, k[1][0])))
        assert second.marginals[blight] < 0.4

    def test_untouched_marginals_preserved(self):
        app = build_app()
        first = app.run(**RUN_KWARGS)
        app.load_documents([Document("new", "the melon sat there .")])
        second = app.run_incremental(threshold=0.7)
        for key, probability in first.marginals.items():
            assert abs(second.marginals[key] - probability) < 1e-9

    def test_evidence_change_resamples_neighbourhood(self):
        app = build_app()
        app.run(**RUN_KWARGS)
        # retract a supervision entry: 'apple' is no longer known-good
        app.remove_rows("GoodList", [("apple",)])
        second = app.run_incremental(threshold=0.7)
        apple_keys = [k for k in second.marginals
                      if "apple" in str(_token_of(app, k[1][0]))]
        assert apple_keys
        # no longer clamped to 1.0, but the learned feature keeps it high-ish
        for key in apple_keys:
            assert second.marginals[key] < 1.0

    def test_incremental_timing_recorded(self):
        app = build_app()
        app.run(**RUN_KWARGS)
        app.load_documents([Document("new", "the fig sat there .")])
        result = app.run_incremental(threshold=0.7)
        assert "incremental_inference" in result.phase_timings

    def test_repeated_incremental_runs(self):
        app = build_app()
        app.run(**RUN_KWARGS)
        for i, token in enumerate(("grape", "melon")):
            app.load_documents([Document(f"n{i}", f"the {token} sat there .")])
            result = app.run_incremental(threshold=0.7)
        assert len(result.marginals) == 8 + 2


def _token_of(app, mention_id):
    for (_, m, token, _) in app.db["NameMention"].distinct_rows():
        if m == mention_id:
            return token
    return ""
