"""Relational algebra over :class:`~repro.datastore.relation.Relation`.

Grounding compiles DDlog rule bodies into joins over these operators, so the
operator set mirrors what DeepDive executes as SQL: selection, projection,
renaming, equi-join (hash join), union/difference under bag semantics,
distinct, and group-by aggregation.

All operators return *new* relations and never mutate their inputs.

Two execution backends implement every operator:

* the **row engine** (the ``_*_rows`` functions below) -- tuple-at-a-time
  over dict-keyed counts; the reference implementation, and the fast path
  for tiny inputs where kernel launch overhead would dominate;
* the **columnar engine** (:mod:`repro.datastore.columnar`) -- vectorized
  kernels over dictionary-encoded numpy columns.

Each public operator dispatches between them: an explicit ``backend=``
argument wins, then a :func:`use_backend` override, then the operator's
``config`` (an :class:`~repro.obs.config.EngineConfig`, normally the owning
database's), then the process default config; in ``auto`` mode the planner
picks the columnar engine when an input relation reaches the config's
``columnar_threshold`` distinct rows, falling back to the row engine for
small deltas.  The default config is built once at import by
``EngineConfig.from_env()`` -- this module never touches the environment
itself, and mutating it afterwards has no effect on dispatch.  The two
backends are bag-equivalent (see ``tests/property/test_query_backends.py``).

When an enabled :mod:`repro.obs` collector is installed, every dispatch
records the backend chosen and the input/output cardinalities
(``datastore.<op>`` counters, ``datastore.rows_in``/``rows_out``
histograms).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Sequence

from repro import obs
from repro.datastore.relation import Relation, Row
from repro.datastore.schema import Column, Schema, SchemaError
from repro.datastore.types import ColumnType
from repro.obs.config import VALID_BACKENDS as _VALID_BACKENDS
from repro.obs.config import EngineConfig

Predicate = Callable[[dict[str, Any]], bool]

#: Process default, frozen at import time; the env fallback is read exactly
#: once, inside ``EngineConfig.from_env`` (see ``repro/obs/config.py``).
_default_config: EngineConfig = EngineConfig.from_env()

_forced_backend: str | None = None


def active_config() -> EngineConfig:
    """The process-default :class:`EngineConfig` for unconfigured callers."""
    return _default_config


def set_default_config(config: EngineConfig | None) -> None:
    """Replace the process default (``None`` restores the import-time one)."""
    global _default_config
    if config is None:
        config = EngineConfig.from_env()
    _default_config = config


def current_backend(config: EngineConfig | None = None) -> str:
    """The effective backend mode: ``auto``, ``row``, or ``columnar``.

    A :func:`use_backend` / :func:`set_backend` override wins; otherwise the
    mode comes from ``config`` (falling back to the process default).
    """
    if _forced_backend is not None:
        return _forced_backend
    return (config or _default_config).datastore_backend


def columnar_threshold(config: EngineConfig | None = None) -> int:
    """Distinct-row count at which ``auto`` mode goes columnar."""
    return (config or _default_config).columnar_threshold


def set_backend(mode: str | None) -> None:
    """Force a backend for the whole process (``None`` removes the force)."""
    global _forced_backend
    if mode is not None and mode not in _VALID_BACKENDS:
        raise ValueError(f"unknown backend {mode!r}; want one of {_VALID_BACKENDS}")
    _forced_backend = mode


@contextmanager
def use_backend(mode: str):
    """Scope a forced backend (debugging / benchmarking aid)."""
    previous = _forced_backend
    set_backend(mode)
    try:
        yield
    finally:
        set_backend(previous)


def _pick(backend: str | None, *relations: Relation,
          config: EngineConfig | None = None) -> str:
    mode = backend or current_backend(config)
    if mode == "auto":
        largest = max((r.distinct_count for r in relations), default=0)
        return ("columnar" if largest >= columnar_threshold(config)
                else "row")
    return mode


def _memory_budget(config: EngineConfig | None) -> int | None:
    """The effective spill budget in bytes (``None`` = never spill)."""
    return (config or _default_config).memory_budget


def _record(op: str, engine: str, inputs: tuple[Relation, ...],
            result: Relation) -> Relation:
    """Note one dispatch decision on the active metrics registry."""
    obs.count(f"datastore.{op}", engine=engine)
    obs.observe("datastore.rows_in",
                sum(r.distinct_count for r in inputs), op=op)
    obs.observe("datastore.rows_out", result.distinct_count, op=op)
    return result


# ============================================================== public ops
def select(relation: Relation, predicate: Predicate, name: str | None = None,
           condition: tuple | None = None, backend: str | None = None,
           config: EngineConfig | None = None) -> Relation:
    """Rows of ``relation`` whose dict form satisfies ``predicate``.

    ``condition`` optionally carries the predicate in structured form
    ``(op, operand, operand)`` (operands ``("col", name)`` / ``("const", v)``)
    so the columnar backend can evaluate it as a vectorized mask.
    """
    out_name = name or f"select({relation.name})"
    engine = _pick(backend, relation, config=config)
    if engine == "columnar":
        from repro.datastore import columnar as C
        out = C.select(relation.columnar(), predicate,
                       condition).to_relation(out_name)
    else:
        out = _select_rows(relation, predicate, out_name)
    if obs.enabled():
        _record("select", engine, (relation,), out)
    return out


def project(relation: Relation, columns: Sequence[str], name: str | None = None,
            distinct: bool = False, backend: str | None = None,
            config: EngineConfig | None = None) -> Relation:
    """Project ``relation`` onto ``columns`` (bag semantics unless ``distinct``)."""
    out_name = name or f"project({relation.name})"
    engine = _pick(backend, relation, config=config)
    if engine == "columnar":
        from repro.datastore import columnar as C
        out = C.project(relation.columnar(), columns,
                        distinct=distinct).to_relation(out_name)
    else:
        out = _project_rows(relation, columns, out_name, distinct)
    if obs.enabled():
        _record("project", engine, (relation,), out)
    return out


def rename(relation: Relation, mapping: dict[str, str],
           name: str | None = None, backend: str | None = None,
           config: EngineConfig | None = None) -> Relation:
    """Rename columns of ``relation`` per ``mapping``."""
    out = Relation.from_counts(name or relation.name,
                               relation.schema.rename(mapping),
                               relation.counted_rows(), validate=False)
    return out


def extend(relation: Relation, column: str, column_type: str,
           fn: Callable[[dict[str, Any]], Any], name: str | None = None,
           backend: str | None = None,
           config: EngineConfig | None = None) -> Relation:
    """Append a computed column ``column`` = ``fn(row_dict)`` to every row."""
    new_schema = Schema(relation.schema.columns
                        + (Column(column, ColumnType(column_type)),))
    out = Relation(name or relation.name, new_schema)
    for row, count in relation.counted_rows():
        out.insert(row + (fn(relation.schema.row_dict(row)),), count)
    return out


def join(left: Relation, right: Relation, on: Sequence[tuple[str, str]] | None = None,
         name: str | None = None, backend: str | None = None,
         config: EngineConfig | None = None) -> Relation:
    """Equi-join ``left`` and ``right``.

    ``on`` is a list of ``(left_column, right_column)`` pairs; if ``None``,
    a natural join on shared column names is performed.  The output schema is
    the concatenation of both schemas with right-side join columns dropped
    (natural-join style) and remaining right-side conflicts prefixed ``r_``.
    """
    if on is None:
        shared = [c for c in left.schema.names if c in right.schema]
        on = [(c, c) for c in shared]
    for column in (pair[0] for pair in on):
        left.schema.position(column)
    for column in (pair[1] for pair in on):
        right.schema.position(column)
    out_name = name or f"join({left.name},{right.name})"

    engine = _pick(backend, left, right, config=config)
    out = None
    if engine == "columnar":
        from repro.datastore import columnar as C
        if C.columnar_supported(left.schema, right.schema, on):
            left_store, right_store = left.columnar(), right.columnar()
            budget = _memory_budget(config)
            from repro.datastore import spill
            if spill.should_spill(budget, left_store, right_store):
                out = spill.spill_join(left_store, right_store, on,
                                       budget, out_name)
                engine = "columnar-spill"
            else:
                out = C.join(left_store, right_store,
                             on).to_relation(out_name)
        else:
            engine = "row"
    if out is None:
        out = _join_rows(left, right, on, out_name)
    if obs.enabled():
        _record("join", engine, (left, right), out)
    return out


def union(left: Relation, right: Relation, name: str | None = None,
          backend: str | None = None,
          config: EngineConfig | None = None) -> Relation:
    """Bag union (counts add); schemas must match positionally by type."""
    _require_compatible(left, right)
    out_name = name or f"union({left.name},{right.name})"
    engine = _pick(backend, left, right, config=config)
    if engine == "columnar":
        from repro.datastore import columnar as C
        out = C.union(left.columnar(), right.columnar()).to_relation(out_name)
    else:
        out = left.copy(out_name)
        for row, count in right.counted_rows():
            out.insert(row, count)
    if obs.enabled():
        _record("union", engine, (left, right), out)
    return out


def difference(left: Relation, right: Relation, name: str | None = None,
               backend: str | None = None,
               config: EngineConfig | None = None) -> Relation:
    """Bag difference (counts subtract, floored at zero)."""
    _require_compatible(left, right)
    out_name = name or f"diff({left.name},{right.name})"
    engine = _pick(backend, left, right, config=config)
    if engine == "columnar":
        from repro.datastore import columnar as C
        out = C.difference(left.columnar(),
                           right.columnar()).to_relation(out_name)
    else:
        counts = {}
        for row, count in left.counted_rows():
            remaining = count - right.count(row)
            if remaining > 0:
                counts[row] = remaining
        out = Relation.from_counts(out_name, left.schema, counts,
                                   validate=False)
    if obs.enabled():
        _record("difference", engine, (left, right), out)
    return out


def distinct(relation: Relation, name: str | None = None,
             backend: str | None = None,
             config: EngineConfig | None = None) -> Relation:
    """Set-semantics version of ``relation`` (every count becomes 1)."""
    out_name = name or f"distinct({relation.name})"
    engine = _pick(backend, relation, config=config)
    if engine == "columnar":
        from repro.datastore import columnar as C
        store = relation.columnar()
        budget = _memory_budget(config)
        from repro.datastore import spill
        if spill.should_spill(budget, store):
            out = spill.spill_distinct(store, budget, out_name)
            engine = "columnar-spill"
        else:
            out = C.distinct(store).to_relation(out_name)
    else:
        out = Relation.from_counts(
            out_name, relation.schema,
            dict.fromkeys(relation.distinct_rows(), 1), validate=False)
    if obs.enabled():
        _record("distinct", engine, (relation,), out)
    return out


def aggregate(relation: Relation, group_by: Sequence[str],
              aggregates: dict[str, tuple[str, str]],
              name: str | None = None, backend: str | None = None,
              config: EngineConfig | None = None) -> Relation:
    """Group-by aggregation.

    ``aggregates`` maps output column name to ``(function, input_column)``
    where function is one of ``count``, ``sum``, ``min``, ``max``, ``avg``.
    For ``count`` the input column is ignored (``'*'`` by convention).
    Output columns are the group-by columns followed by the aggregates.
    """
    schema, agg_specs = _aggregate_schema(relation.schema, group_by, aggregates)
    out_name = name or f"agg({relation.name})"
    engine = _pick(backend, relation, config=config)
    if engine == "columnar":
        from repro.datastore import columnar as C
        store = relation.columnar()
        budget = _memory_budget(config)
        from repro.datastore import spill
        if spill.should_spill(budget, store):
            out = spill.spill_aggregate(store, group_by, aggregates,
                                        schema, budget, out_name)
            engine = "columnar-spill"
        else:
            out = C.aggregate(store, group_by, aggregates,
                              schema).to_relation(out_name)
    else:
        out = _aggregate_rows(relation, group_by, agg_specs, schema, out_name)
    if obs.enabled():
        _record("aggregate", engine, (relation,), out)
    return out


# ===================================================== row-engine reference
def _select_rows(relation: Relation, predicate: Predicate, name: str) -> Relation:
    counts = {}
    row_dict = relation.schema.row_dict
    for row, count in relation.counted_rows():
        if predicate(row_dict(row)):
            counts[row] = count
    return Relation.from_counts(name, relation.schema, counts, validate=False)


def _project_rows(relation: Relation, columns: Sequence[str], name: str,
                  distinct: bool) -> Relation:
    schema = relation.schema.project(columns)
    positions = [relation.schema.position(c) for c in columns]
    counts: dict[Row, int] = {}
    for row, count in relation.counted_rows():
        projected = tuple(row[i] for i in positions)
        counts[projected] = counts.get(projected, 0) + count
    if distinct:
        counts = dict.fromkeys(counts, 1)
    return Relation.from_counts(name, schema, counts, validate=False)


def _join_rows(left: Relation, right: Relation,
               on: Sequence[tuple[str, str]], name: str) -> Relation:
    left_keys = [pair[0] for pair in on]
    right_keys = [pair[1] for pair in on]
    keep_right = [c for c in right.schema.names if c not in right_keys]
    schema = left.schema.concat(right.schema.project(keep_right))
    keep_positions = [right.schema.position(c) for c in keep_right]
    counts: dict[Row, int] = {}

    # Build on the smaller relation to keep the hash table small.
    build, probe, build_keys, probe_keys, build_is_left = (
        (left, right, left_keys, right_keys, True)
        if left.distinct_count <= right.distinct_count
        else (right, left, right_keys, left_keys, False)
    )
    build_positions = [build.schema.position(c) for c in build_keys]
    probe_positions = [probe.schema.position(c) for c in probe_keys]
    table: dict[tuple[Any, ...], list[tuple[Row, int]]] = {}
    for row, count in build.counted_rows():
        table.setdefault(tuple(row[i] for i in build_positions), []).append((row, count))
    for probe_row, probe_count in probe.counted_rows():
        matches = table.get(tuple(probe_row[i] for i in probe_positions))
        if not matches:
            continue
        for build_row, build_count in matches:
            left_row, right_row = (build_row, probe_row) if build_is_left else (probe_row, build_row)
            combined = left_row + tuple(right_row[i] for i in keep_positions)
            counts[combined] = counts.get(combined, 0) + probe_count * build_count
    return Relation.from_counts(name, schema, counts, validate=False)


def _aggregate_schema(schema: Schema, group_by: Sequence[str],
                      aggregates: dict[str, tuple[str, str]],
                      ) -> tuple[Schema, list[tuple[str, str, int | None]]]:
    """Shared output-schema/spec computation so both backends agree."""
    agg_specs: list[tuple[str, str, int | None]] = []
    out_columns = list(schema.project(group_by).columns)
    for out_name, (fn, input_column) in aggregates.items():
        if fn not in ("count", "sum", "min", "max", "avg"):
            raise SchemaError(f"unknown aggregate function {fn!r}")
        position = None if fn == "count" else schema.position(input_column)
        if fn in ("sum", "avg") and schema.columns[position].type in (
                ColumnType.TEXT, ColumnType.ARRAY):
            raise SchemaError(
                f"aggregate {fn!r} is not defined for "
                f"{schema.columns[position].type} column {input_column!r}")
        agg_specs.append((out_name, fn, position))
        if fn == "count":
            ctype = ColumnType.INT
        elif fn == "avg":
            ctype = ColumnType.FLOAT
        else:
            ctype = schema.columns[position].type
        out_columns.append(Column(out_name, ctype))
    return Schema(tuple(out_columns)), agg_specs


def _aggregate_rows(relation: Relation, group_by: Sequence[str],
                    agg_specs: list[tuple[str, str, int | None]],
                    schema: Schema, name: str) -> Relation:
    """Count-weighted row-engine aggregation.

    Bag multiplicities contribute directly to count/sum/avg accumulators --
    no ``range(count)`` expansion, so cost is O(distinct rows), not
    O(total multiplicity).
    """
    group_positions = [relation.schema.position(c) for c in group_by]

    # per group: [count_total, then per agg (sum_acc, weight) or (extreme,)]
    groups: dict[tuple[Any, ...], list] = {}
    for row, count in relation.counted_rows():
        key = tuple(row[i] for i in group_positions)
        state = groups.get(key)
        if state is None:
            state = groups[key] = [0] + [[None, 0] for _ in agg_specs]
        state[0] += count
        for slot, (_, fn, position) in enumerate(agg_specs, start=1):
            if fn == "count":
                continue
            value = row[position]
            if value is None:
                continue
            acc = state[slot]
            if fn in ("sum", "avg"):
                acc[0] = value * count if acc[0] is None else acc[0] + value * count
                acc[1] += count
            elif fn == "min":
                acc[0] = value if acc[0] is None else min(acc[0], value)
            else:  # max
                acc[0] = value if acc[0] is None else max(acc[0], value)

    counts: dict[Row, int] = {}
    for key, state in groups.items():
        values: list[Any] = []
        for slot, (_, fn, _position) in enumerate(agg_specs, start=1):
            if fn == "count":
                values.append(state[0])
            elif fn == "avg":
                total, weight = state[slot]
                values.append(None if weight == 0 else total / weight)
            else:
                values.append(state[slot][0])
        counts[schema.validate_row(key + tuple(values))] = 1
    return Relation.from_counts(name, schema, counts, validate=False)


def _require_compatible(left: Relation, right: Relation) -> None:
    left_types = tuple(c.type for c in left.schema.columns)
    right_types = tuple(c.type for c in right.schema.columns)
    if left_types != right_types:
        raise SchemaError(
            f"incompatible schemas for set operation: {left.schema.names} vs {right.schema.names}")
