"""Spans, collectors, sinks, and the fast path when nothing is installed."""

import io
import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


class TestFastPath:
    def test_span_without_collector_is_null(self):
        with obs.span("layer.op", rows=3) as sp:
            assert sp is obs.NULL_SPAN
            sp.set(more=1)          # no-op, never raises
        assert obs.active() is None

    def test_noop_collector_keeps_fast_path(self):
        with obs.installed(obs.NoopCollector()):
            assert not obs.enabled()
            with obs.span("layer.op") as sp:
                assert sp is obs.NULL_SPAN
            obs.count("x")
            obs.observe("y", 1.0)
            obs.gauge("z", 2.0)
        assert obs.active() is None

    def test_metric_helpers_without_collector(self):
        obs.count("x")
        obs.gauge("y", 1.0)
        obs.observe("z", 2.0)       # all silently dropped


class TestCollection:
    def test_single_span(self):
        collector = obs.Collector()
        with obs.installed(collector):
            with obs.span("a.b", rows=7) as sp:
                sp.set(backend="row")
        assert [s.name for s in collector.roots] == ["a.b"]
        root = collector.roots[0]
        assert root.attributes == {"rows": 7, "backend": "row"}
        assert root.duration >= 0.0

    def test_nesting(self):
        collector = obs.Collector()
        with obs.installed(collector):
            with obs.span("outer"):
                with obs.span("mid"):
                    with obs.span("inner"):
                        pass
                with obs.span("sibling"):
                    pass
        (outer,) = collector.roots
        assert [c.name for c in outer.children] == ["mid", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["inner"]
        # inclusive durations nest
        assert outer.duration >= outer.children[0].duration
        assert outer.exclusive >= 0.0

    def test_span_closed_on_exception(self):
        collector = obs.Collector()
        with obs.installed(collector):
            with pytest.raises(RuntimeError):
                with obs.span("outer"):
                    with obs.span("inner"):
                        raise RuntimeError("boom")
        (outer,) = collector.roots
        assert [c.name for c in outer.children] == ["inner"]
        assert not collector._stack

    def test_installed_restores_previous(self):
        first = obs.Collector()
        second = obs.Collector()
        with obs.installed(first):
            with obs.installed(second):
                assert obs.active() is second
            assert obs.active() is first
        assert obs.active() is None

    def test_walk_and_find(self):
        collector = obs.Collector()
        with obs.installed(collector):
            with obs.span("a"):
                with obs.span("b"):
                    pass
        root = collector.roots[0]
        assert [s.name for s in root.walk()] == ["a", "b"]
        assert root.find("b").name == "b"
        assert root.find("zzz") is None

    def test_instrumented_decorator(self):
        @obs.instrumented("math.double", kind="test")
        def double(x):
            return 2 * x

        assert double(4) == 8           # fast path, no collector
        collector = obs.Collector()
        with obs.installed(collector):
            assert double(5) == 10
        (root,) = collector.roots
        assert root.name == "math.double"
        assert root.attributes == {"kind": "test"}

    def test_instrumented_default_name(self):
        @obs.instrumented()
        def helper():
            return 1

        collector = obs.Collector()
        with obs.installed(collector):
            helper()
        assert "helper" in collector.roots[0].name

    def test_metrics_through_module_helpers(self):
        collector = obs.Collector()
        with obs.installed(collector):
            obs.count("ops", 2, kind="join")
            obs.count("ops", 3, kind="join")
            obs.gauge("depth", 4)
            obs.observe("latency", 0.5)
        metrics = collector.metrics
        assert metrics.counter_value("ops", kind="join") == 5
        assert metrics.gauges["depth"] == 4
        assert metrics.histogram("latency").count == 1


class TestSinks:
    def test_in_memory_sink_sees_roots_only(self):
        sink = obs.InMemorySink()
        with obs.installed(obs.Collector(sinks=[sink])):
            with obs.span("root"):
                with obs.span("child"):
                    pass
        assert [s.name for s in sink.spans] == ["root"]

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = obs.JsonlSink(path)
        with obs.installed(obs.Collector(sinks=[sink])):
            with obs.span("a", rows=1):
                pass
            with obs.span("b"):
                pass
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "a"
        assert first["attributes"] == {"rows": 1}

    def test_tree_printer_sink(self):
        stream = io.StringIO()
        sink = obs.TreePrinterSink(stream)
        with obs.installed(obs.Collector(sinks=[sink])):
            with obs.span("root", backend="row"):
                with obs.span("child"):
                    pass
        text = stream.getvalue()
        assert "root" in text and "child" in text and "backend=row" in text

    def test_render(self):
        collector = obs.Collector()
        with obs.installed(collector):
            with obs.span("root", rows=2):
                with obs.span("child"):
                    pass
        text = collector.roots[0].render()
        assert text.splitlines()[0].startswith("root")
        assert "  child" in text
        shallow = collector.roots[0].render(max_depth=0)
        assert "child" not in shallow
