"""Corpus fan-out: parallel document preprocessing over the worker pool.

The NLP chain (HTML strip, sentence split, tokenize, POS-tag) is pure
Python and embarrassingly parallel per document, so
:func:`parallel_preprocess` fans :func:`~repro.nlp.pipeline.
preprocess_document` out across worker processes with a chunked,
order-preserving merge: the result is exactly
``[preprocess_document(d) for d in documents]`` -- same sentences, same
order -- or ``None`` when the pool fails, in which case the caller runs
the sequential path (so ``load_corpus`` output is byte-identical either
way).
"""

from __future__ import annotations

from typing import Sequence

from repro.parallel.pool import DEFAULT_TIMEOUT, fanout_map


def parallel_preprocess(documents: Sequence, *, workers: int,
                        mode: str = "auto",
                        timeout: float = DEFAULT_TIMEOUT) -> list | None:
    """Per-document sentence lists, computed across ``workers`` processes.

    Returns ``None`` if the fan-out fails; callers fall back to the
    sequential loop.  Worker metrics (``nlp.documents`` etc.) and chunk
    spans merge into the parent's profile when tracing is enabled.
    """
    from repro.nlp.pipeline import preprocess_document

    return fanout_map(preprocess_document, documents, workers=workers,
                      mode=mode, timeout=timeout)
