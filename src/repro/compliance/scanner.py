"""Column-by-column PII scanning over relations, databases, and snapshots.

The scanner is the audit half of the compliance subsystem: it runs every
detector over every (sampled) value of every column and aggregates the hits
into a :class:`~repro.compliance.manifest.ComplianceManifest`.  Three
sources matter to the serving layer:

* **relations / databases** — the offline sweep behind
  ``KBClient.scan()``: raw extracted relations, candidate tables, and base
  KB tables, column-named from their schemas;
* **marginal mappings** — what snapshot publish scrubs: variable keys are
  ``(relation, values_tuple)``, column names resolved from the relation
  schemas the engine passes alongside;
* **snapshots** — a published (possibly already scrubbed) view, for
  verifying that a redaction policy actually left nothing behind.

Scans are deterministic: rows are visited in relation iteration order,
sampling (``CompliancePolicy.sample_rows``) takes a prefix rather than a
random draw, and detectors are pure — so two scans of the same store always
produce the same manifest (hypothesis-tested).
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Mapping, Sequence

from repro import obs
from repro.compliance.detectors import (DEFAULT_DETECTORS, Detection,
                                        Detector, mask)
from repro.compliance.manifest import ColumnReport, ComplianceManifest
from repro.compliance.policy import CompliancePolicy


class _ColumnAccumulator:
    """Streaming per-column aggregation: hit counts, confidence sums, and
    masked examples per detector — cell values are never retained, so a
    scan's memory footprint is O(columns × detectors), not O(rows)."""

    __slots__ = ("max_examples", "hits", "confidence", "examples")

    def __init__(self, max_examples: int) -> None:
        self.max_examples = max_examples
        self.hits: dict[str, int] = {}
        self.confidence: dict[str, float] = {}
        self.examples: dict[str, list[str]] = {}

    def add(self, detections: Iterable[Detection]) -> None:
        """Fold one cell's detections in."""
        for detection in detections:
            name = detection.detector
            self.hits[name] = self.hits.get(name, 0) + 1
            self.confidence[name] = self.confidence.get(name, 0.0) \
                + detection.confidence
            examples = self.examples.setdefault(name, [])
            if len(examples) < self.max_examples:
                masked = mask(detection.value)
                if masked not in examples:
                    examples.append(masked)

    def reports(self, relation: str, column: str,
                detectors: Sequence[Detector],
                rows_scanned: int) -> list[ColumnReport]:
        """One report per detector that hit, in battery order."""
        out: list[ColumnReport] = []
        for detector in detectors:
            hits = self.hits.get(detector.name, 0)
            if not hits:
                continue
            out.append(ColumnReport(
                relation=relation, column=column, detector=detector.name,
                rows_scanned=rows_scanned, hits=hits,
                confidence=self.confidence[detector.name] / hits,
                examples=tuple(self.examples.get(detector.name, ()))))
        return out


class Scanner:
    """Detector battery + aggregation policy for one compliance sweep."""

    def __init__(self, policy: CompliancePolicy | None = None,
                 detectors: Sequence[Detector] = DEFAULT_DETECTORS) -> None:
        self.policy = policy if policy is not None else CompliancePolicy()
        self.detectors = tuple(detectors)

    # ------------------------------------------------------------ primitives
    def detect_value(self, value) -> list[Detection]:
        """Every detector's findings over one cell value (non-strings are
        stringified; numbers routinely hide phone/SSN shapes)."""
        text = value if isinstance(value, str) else str(value)
        found: list[Detection] = []
        for detector in self.detectors:
            found.extend(detector.detect(text))
        return found

    def scan_column(self, relation: str, column: str,
                    values: Iterable) -> list[ColumnReport]:
        """Per-detector reports over one column (only detectors that hit)."""
        limit = self.policy.sample_rows
        accumulator = _ColumnAccumulator(self.policy.max_examples)
        scanned = 0
        for value in values:
            if limit and scanned >= limit:
                break
            scanned += 1
            accumulator.add(self.detect_value(value))
        return accumulator.reports(relation, column, self.detectors, scanned)

    # ------------------------------------------------------------- relations
    def scan_relation(self, relation, name: str | None = None,
                      ) -> tuple[list[ColumnReport], int]:
        """Scan one datastore relation column-by-column.

        Returns ``(reports, rows_scanned)``.  Streams ``iter_rows()`` once,
        feeding each cell straight into a per-column accumulator — no cell
        value is retained, so segmented (larger-than-memory) relations
        never materialize.
        """
        name = name if name is not None else relation.name
        columns = relation.schema.names
        limit = self.policy.sample_rows
        accumulators = [_ColumnAccumulator(self.policy.max_examples)
                        for _ in columns]
        scanned = 0
        for row in relation.iter_rows():
            if limit and scanned >= limit:
                break
            scanned += 1
            for index, value in enumerate(row):
                if index < len(accumulators):
                    accumulators[index].add(self.detect_value(value))
        reports: list[ColumnReport] = []
        for column, accumulator in zip(columns, accumulators):
            reports.extend(accumulator.reports(name, column,
                                               self.detectors, scanned))
        return reports, scanned

    def scan_database(self, db, relations: Sequence[str] | None = None,
                      ) -> ComplianceManifest:
        """Sweep ``db`` (every relation, or just ``relations``)."""
        names = list(relations) if relations is not None else db.names()
        started = perf_counter()
        reports: list[ColumnReport] = []
        total = 0
        with obs.span("compliance.scan", relations=len(names)) as sp:
            for name in names:
                relation_reports, scanned = self.scan_relation(db[name],
                                                               name=name)
                reports.extend(relation_reports)
                total += scanned
            sp.set(rows=total, findings=len(reports))
        if obs.enabled():
            obs.observe("compliance.scan.seconds", perf_counter() - started)
            obs.count("compliance.scan.rows", total)
            obs.count("compliance.scan.findings", len(reports))
        return ComplianceManifest(source="scan", reports=tuple(reports),
                                  rows_scanned=total)

    # ------------------------------------------------------------- marginals
    def scan_marginals(self, marginals: Mapping,
                       schemas: Mapping[str, Sequence[str]] | None = None,
                       source: str = "scan") -> ComplianceManifest:
        """Scan a marginal mapping (variable key -> probability).

        ``schemas`` maps relation names to column-name sequences; columns
        without a schema entry get positional ``col<N>`` names.
        """
        schemas = schemas or {}
        grouped: dict[str, list[tuple]] = {}
        for (relation, values) in marginals:
            grouped.setdefault(relation, []).append(values)
        reports: list[ColumnReport] = []
        total = 0
        for relation in sorted(grouped):
            rows = grouped[relation]
            total += len(rows)
            width = max(len(values) for values in rows)
            names = list(schemas.get(relation, ()))[:width]
            names += [f"col{i}" for i in range(len(names), width)]
            for index, column in enumerate(names):
                cells = [values[index] for values in rows
                         if len(values) > index]
                reports.extend(self.scan_column(relation, column, cells))
        return ComplianceManifest(source=source, reports=tuple(reports),
                                  rows_scanned=total)

    def scan_snapshot(self, snapshot,
                      schemas: Mapping[str, Sequence[str]] | None = None,
                      ) -> ComplianceManifest:
        """Scan a published :class:`~repro.serve.snapshot.Snapshot` (or
        merged) view — what a reader would actually see."""
        return self.scan_marginals(snapshot.marginals, schemas,
                                   source="snapshot")


# ------------------------------------------------------- module-level sugar
def scan_rows(relation: str, columns: Sequence[str], rows: Iterable,
              policy: CompliancePolicy | None = None) -> ComplianceManifest:
    """Scan bare rows (any iterable of tuples) under ``columns`` names,
    streaming — rows are consumed once and never retained."""
    scanner = Scanner(policy)
    limit = scanner.policy.sample_rows
    accumulators = [_ColumnAccumulator(scanner.policy.max_examples)
                    for _ in columns]
    scanned = 0
    for row in rows:
        if limit and scanned >= limit:
            break
        scanned += 1
        for index, value in enumerate(row):
            if index < len(accumulators):
                accumulators[index].add(scanner.detect_value(value))
    reports: list[ColumnReport] = []
    for column, accumulator in zip(columns, accumulators):
        reports.extend(accumulator.reports(relation, column,
                                           scanner.detectors, scanned))
    return ComplianceManifest(source="scan", reports=tuple(reports),
                              rows_scanned=scanned)


def scan_relation(relation, policy: CompliancePolicy | None = None,
                  ) -> ComplianceManifest:
    reports, scanned = Scanner(policy).scan_relation(relation)
    return ComplianceManifest(source="scan", reports=tuple(reports),
                              rows_scanned=scanned)


def scan_database(db, policy: CompliancePolicy | None = None,
                  relations: Sequence[str] | None = None,
                  ) -> ComplianceManifest:
    return Scanner(policy).scan_database(db, relations=relations)


def scan_marginals(marginals: Mapping,
                   schemas: Mapping[str, Sequence[str]] | None = None,
                   policy: CompliancePolicy | None = None,
                   ) -> ComplianceManifest:
    return Scanner(policy).scan_marginals(marginals, schemas)


def scan_snapshot(snapshot,
                  schemas: Mapping[str, Sequence[str]] | None = None,
                  policy: CompliancePolicy | None = None,
                  ) -> ComplianceManifest:
    return Scanner(policy).scan_snapshot(snapshot, schemas)
