"""Compliance invariants under hypothesis: the scrub transform is a pure,
deterministic, probability-preserving relabeling; surrogates are stable and
injective; scanning the same data twice yields the same manifest."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compliance import (Anonymizer, CompliancePolicy, scan_rows,
                              scrub_marginals)
from repro.compliance.detectors import DETECTOR_NAMES

# ------------------------------------------------------------------ strategies
plain_text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Zs")),
    min_size=0, max_size=20)

phones = st.builds("555-{:04d}".format, st.integers(0, 9999))
full_phones = st.builds("{:03d}-555-{:04d}".format,
                        st.integers(200, 799), st.integers(0, 9999))
emails = st.builds("u{}@host{}.example".format,
                   st.integers(0, 9999), st.integers(0, 99))
ssns = st.builds("{:03d}-{:02d}-{:04d}".format, st.integers(100, 699),
                 st.integers(10, 99), st.integers(1000, 9999))

cells = st.one_of(plain_text, phones, full_phones, emails, ssns,
                  st.integers(-1000, 1000))

rows2 = st.lists(st.tuples(plain_text, cells), min_size=0, max_size=12)

marginal_maps = st.dictionaries(
    keys=st.tuples(st.sampled_from(["R", "S"]),
                   st.tuples(plain_text, cells)),
    values=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=0, max_size=15)

ANON = CompliancePolicy(enabled=True, default_action="anonymize",
                        min_confidence=0.5)


# ------------------------------------------------------------------ surrogates
@settings(max_examples=80, deadline=None)
@given(detector=st.sampled_from(DETECTOR_NAMES + ("other",)),
       value=st.text(min_size=1, max_size=40))
def test_surrogates_are_stable(detector, value):
    assert Anonymizer("k").surrogate(detector, value) \
        == Anonymizer("k").surrogate(detector, value)


@settings(max_examples=50, deadline=None)
@given(detector=st.sampled_from(DETECTOR_NAMES),
       values=st.lists(st.text(min_size=1, max_size=30), min_size=2,
                       max_size=20, unique=True))
def test_surrogates_never_collide_across_distinct_raws(detector, values):
    anonymizer = Anonymizer()
    surrogates = [anonymizer.surrogate(detector, value) for value in values]
    assert len(set(surrogates)) == len(values)
    # raw values never survive into their own surrogate space verbatim
    for value, surrogate in zip(values, surrogates):
        assert surrogate != value


# --------------------------------------------------------------------- scanner
@settings(max_examples=50, deadline=None)
@given(rows=rows2)
def test_scanning_is_deterministic(rows):
    first = scan_rows("t", ("a", "b"), rows)
    second = scan_rows("t", ("a", "b"), rows)
    assert first == second
    assert first.rows_scanned == len(rows)


@settings(max_examples=50, deadline=None)
@given(rows=rows2)
def test_scan_examples_never_contain_detected_raw_values(rows):
    manifest = scan_rows("t", ("a", "b"), rows)
    for report in manifest:
        for example in report.examples:
            # masking keeps at most the first character of the raw value
            assert not any(example == str(cell)
                           for row in rows for cell in row
                           if len(str(cell)) > 1)


# ----------------------------------------------------------------- the scrub
@settings(max_examples=60, deadline=None)
@given(marginals=marginal_maps)
def test_scrub_preserves_probabilities_bit_identically(marginals):
    scrubbed, manifest = scrub_marginals(marginals, None, ANON)
    assert sorted(map(repr, scrubbed.values())) \
        == sorted(map(repr, marginals.values()))
    assert len(scrubbed) == len(marginals)       # anonymize is injective
    assert manifest.rows_scanned == len(marginals)


@settings(max_examples=60, deadline=None)
@given(marginals=marginal_maps)
def test_scrub_is_pure(marginals):
    once = scrub_marginals(marginals, None, ANON)
    twice = scrub_marginals(marginals, None, ANON)
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(marginals=marginal_maps)
def test_scrub_preserves_acceptance_decisions(marginals):
    """Acceptance at any threshold commutes with the scrub: accepting then
    scrubbing equals scrubbing then accepting, at every probability cut."""
    scrubbed, _ = scrub_marginals(marginals, None, ANON)
    key_map = dict(zip(marginals, scrubbed))     # order-preserving relabel
    for threshold in (0.0, 0.25, 0.5, 0.9):
        raw_accepted = {key for key, p in marginals.items()
                        if p >= threshold}
        scrub_accepted = {key for key, p in scrubbed.items()
                          if p >= threshold}
        assert scrub_accepted == {key_map[key] for key in raw_accepted}


@settings(max_examples=40, deadline=None)
@given(marginals=marginal_maps)
def test_disabled_policy_is_identity(marginals):
    scrubbed, manifest = scrub_marginals(marginals, None,
                                         CompliancePolicy(enabled=True))
    assert scrubbed == dict(marginals)
    assert manifest.actions() == {}
