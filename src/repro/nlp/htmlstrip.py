"""HTML stripping, the first step of DeepDive's document loading.

The paper: "DeepDive stores all documents in the database in one sentence per
row with markup produced by standard NLP pre-processing tools, including HTML
stripping, part-of-speech tagging, and linguistic parsing."  Web classified
ads and review pages arrive as HTML; this module reduces them to text while
dropping script/style payloads and decoding the common entities.
"""

from __future__ import annotations

import html
import re

_SCRIPT_STYLE = re.compile(r"<(script|style)\b[^>]*>.*?</\1\s*>", re.IGNORECASE | re.DOTALL)
_COMMENT = re.compile(r"<!--.*?-->", re.DOTALL)
# Block-level tags become newlines so sentence splitting sees boundaries.
_BLOCK_TAG = re.compile(
    r"</?(?:p|div|br|li|ul|ol|tr|td|th|table|h[1-6]|blockquote|section|article)\b[^>]*>",
    re.IGNORECASE)
_ANY_TAG = re.compile(r"<[^>]+>")
_BLANK_RUNS = re.compile(r"[ \t]+")
_NEWLINE_RUNS = re.compile(r"\n\s*\n+")


def strip_html(raw: str) -> str:
    """Return the visible text of an HTML document.

    Block-level tags are converted to newlines (paragraph boundaries), all
    other tags are removed, entities are decoded, and whitespace is
    normalized.  Plain-text input passes through unchanged apart from
    whitespace normalization, so the loader can apply this unconditionally.
    """
    text = _SCRIPT_STYLE.sub(" ", raw)
    text = _COMMENT.sub(" ", text)
    text = _BLOCK_TAG.sub("\n", text)
    text = _ANY_TAG.sub(" ", text)
    text = html.unescape(text)
    text = _BLANK_RUNS.sub(" ", text)
    text = _NEWLINE_RUNS.sub("\n", text)
    return "\n".join(line.strip() for line in text.split("\n")).strip()
