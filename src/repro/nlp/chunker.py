"""Shallow phrase chunking over POS tags.

DeepDive's candidate mappings commonly start from noun-phrase spans ("every
pair of candidate persons in the same sentence").  This chunker groups
consecutive tokens into flat NP / VP / other chunks using tag patterns --
the "linguistic parsing" level our pipeline needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Chunk:
    """A contiguous token span with a phrase label."""

    label: str          # "NP", "VP", or "O"
    start: int          # first token index (inclusive)
    end: int            # last token index (exclusive)

    def indices(self) -> range:
        return range(self.start, self.end)


_NP_TAGS = {"DT", "JJ", "NN", "NNP", "CD", "PRP"}
_VP_TAGS = {"VB", "MD", "RB"}


def chunk(tags: list[str]) -> list[Chunk]:
    """Group a tagged sentence into flat chunks.

    Maximal runs of noun-phrase tags become NP chunks, runs of verb tags
    become VP chunks, everything else is O.  Determiners and adjectives only
    start an NP if a noun follows within the run (so a dangling "the" at end
    of sentence stays O).
    """
    chunks: list[Chunk] = []
    i = 0
    n = len(tags)
    while i < n:
        if tags[i] in _NP_TAGS:
            j = i
            while j < n and tags[j] in _NP_TAGS:
                j += 1
            if any(tags[k] in ("NN", "NNP", "PRP", "CD") for k in range(i, j)):
                chunks.append(Chunk("NP", i, j))
            else:
                chunks.append(Chunk("O", i, j))
            i = j
        elif tags[i] in _VP_TAGS:
            j = i
            while j < n and tags[j] in _VP_TAGS:
                j += 1
            chunks.append(Chunk("VP", i, j))
            i = j
        else:
            j = i
            while j < n and tags[j] not in _NP_TAGS and tags[j] not in _VP_TAGS:
                j += 1
            chunks.append(Chunk("O", i, j))
            i = j
    return chunks


def noun_phrases(tags: list[str]) -> list[Chunk]:
    """Just the NP chunks of a tagged sentence."""
    return [c for c in chunk(tags) if c.label == "NP"]
