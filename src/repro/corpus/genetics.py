"""The medical-genetics corpus: gene-phenotype relations from "papers".

Models the paper's Section 6.1 application with Prof. Bejerano: extract
``(gene, phenotype, research-paper)`` triples from the literature, supervised
by an incomplete OMIM-style database.  Sentences either assert a causal
gene-phenotype link or merely co-mention the two (the hard distractor class:
"GENE was sequenced in patients with PHENOTYPE").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.base import GeneratedCorpus, NoiseConfig, apply_typo
from repro.nlp.pipeline import Document

CAUSAL_TEMPLATES = [
    "Mutations in {g} cause {p} .",
    "{g} variants are responsible for {p} .",
    "Loss of {g} function leads to {p} .",
    "{p} is caused by defects in {g} .",
    "Haploinsufficiency of {g} results in {p} .",
]

COMENTION_TEMPLATES = [
    "{g} was sequenced in patients with {p} .",
    "We measured {g} expression in the {p} cohort .",
    "The {p} study excluded carriers of {g} variants .",
    "{g} maps near a locus unrelated to {p} .",
]

PHENOTYPE_POOL = [
    "cardiomyopathy", "retinopathy", "neuropathy", "nephropathy", "myopathy",
    "deafness", "anemia", "ataxia", "epilepsy", "dystonia", "glaucoma",
    "scoliosis", "ichthyosis", "alopecia", "microcephaly", "macrocephaly",
    "hypotonia", "hypertension", "arrhythmia", "cataract",
]


@dataclass(frozen=True)
class GeneticsConfig:
    """Size and noise parameters for the genetics corpus."""

    num_causal_pairs: int = 30
    num_comention_pairs: int = 30
    sentences_per_pair: int = 2
    noise: NoiseConfig = NoiseConfig()


def _gene_names(count: int, rng: np.random.Generator) -> list[str]:
    """OMIM-style gene symbols: 3-4 letters + digit, e.g. 'BRCA1'-shaped."""
    names: list[str] = []
    seen: set[str] = set()
    letters = "ABCDEFGHKLMNPRSTWXYZ"
    while len(names) < count:
        size = int(rng.integers(3, 5))
        symbol = "".join(letters[int(rng.integers(0, len(letters)))]
                         for _ in range(size)) + str(int(rng.integers(1, 10)))
        if symbol not in seen:
            seen.add(symbol)
            names.append(symbol)
    return names


def generate(config: GeneticsConfig = GeneticsConfig(), seed: int = 0) -> GeneratedCorpus:
    """Generate the genetics corpus, truth, and OMIM-style supervision KB."""
    rng = np.random.default_rng(seed)
    genes = _gene_names(config.num_causal_pairs + config.num_comention_pairs, rng)
    phenotypes = [PHENOTYPE_POOL[int(rng.integers(0, len(PHENOTYPE_POOL)))]
                  for _ in genes]

    causal = list(zip(genes[:config.num_causal_pairs],
                      phenotypes[:config.num_causal_pairs]))
    comention = list(zip(genes[config.num_causal_pairs:],
                         phenotypes[config.num_causal_pairs:]))

    documents: list[Document] = []

    def emit(templates, g, p, tag, index):
        for k in range(config.sentences_per_pair):
            template = templates[int(rng.integers(0, len(templates)))]
            text = template.format(g=g, p=p)
            if rng.random() < config.noise.typo_rate:
                text = apply_typo(text, rng)
            documents.append(Document(f"{tag}{index:04d}_{k}", text))

    for i, (g, p) in enumerate(causal):
        emit(CAUSAL_TEMPLATES, g, p, "c", i)
    for i, (g, p) in enumerate(comention):
        emit(COMENTION_TEMPLATES, g, p, "x", i)

    omim = [(g, p) for g, p in causal if rng.random() < config.noise.kb_coverage]
    for g, p in comention:
        if rng.random() < config.noise.kb_error_rate:
            omim.append((g, p))

    return GeneratedCorpus(
        documents=documents,
        truth={"gene_phenotype": set(causal)},
        kb={"Omim": omim},
        metadata={"config": config, "causal": causal, "comention": comention,
                  "genes": set(genes), "phenotypes": set(PHENOTYPE_POOL)},
    )
