"""DDlog: the declarative rule language of DeepDive (paper Section 3).

Candidate mappings, feature-extraction rules with tied weights, distant
supervision rules, and correlation (inference) rules, compiled to datastore
query plans for (incremental) grounding.
"""

from repro.ddlog.ast import (Comparison, Const, Declaration, FixedWeight,
                             HeadConnective, PerRuleWeight, ProgramAst,
                             RelationAtom, Rule, RuleKind, UdfBinding,
                             UdfCondition, UdfWeight, Var, VarWeight)
from repro.ddlog.compiler import (CompileError, Udf, compile_body,
                                  head_projection, head_values_reader,
                                  program_schemas)
from repro.ddlog.lexer import DDlogSyntaxError, lex
from repro.ddlog.parser import EVIDENCE_SUFFIX, parse_program
from repro.ddlog.program import DDlogProgram
from repro.ddlog.validate import (DDlogValidationError, evidence_base,
                                  validate_program)

__all__ = [
    "CompileError",
    "Comparison",
    "Const",
    "DDlogProgram",
    "DDlogSyntaxError",
    "DDlogValidationError",
    "Declaration",
    "EVIDENCE_SUFFIX",
    "FixedWeight",
    "HeadConnective",
    "PerRuleWeight",
    "ProgramAst",
    "RelationAtom",
    "Rule",
    "RuleKind",
    "Udf",
    "UdfBinding",
    "UdfCondition",
    "UdfWeight",
    "Var",
    "VarWeight",
    "compile_body",
    "evidence_base",
    "head_projection",
    "head_values_reader",
    "lex",
    "parse_program",
    "program_schemas",
    "validate_program",
]
