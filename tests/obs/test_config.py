"""EngineConfig: validation, env fallback parsing, and immutability."""

import dataclasses
import os

import pytest

from repro.datastore import query as Q
from repro.obs import (ENV_VARS, VALID_BACKENDS, VALID_ENGINES,
                       VALID_PARALLEL_MODES, EngineConfig)


class TestDefaults:
    def test_default_fields(self):
        config = EngineConfig()
        assert config.datastore_backend == "auto"
        assert config.columnar_threshold == 48
        assert config.gibbs_engine == "chromatic"
        assert config.numa_sockets == 4
        assert config.trace is False
        assert config.workers == 0
        assert config.parallel_mode == "auto"

    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.datastore_backend = "row"

    def test_with_options(self):
        config = EngineConfig().with_options(datastore_backend="columnar",
                                             trace=True)
        assert config.datastore_backend == "columnar"
        assert config.trace is True
        # the original is untouched
        assert EngineConfig().datastore_backend == "auto"


class TestValidation:
    def test_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            EngineConfig(datastore_backend="gpu")

    def test_bad_engine(self):
        with pytest.raises(ValueError, match="engine"):
            EngineConfig(gibbs_engine="metropolis")

    def test_negative_threshold(self):
        with pytest.raises(ValueError):
            EngineConfig(columnar_threshold=-1)

    def test_zero_sockets(self):
        with pytest.raises(ValueError):
            EngineConfig(numa_sockets=0)

    def test_negative_workers(self):
        with pytest.raises(ValueError, match="workers"):
            EngineConfig(workers=-1)

    def test_bad_parallel_mode(self):
        with pytest.raises(ValueError, match="parallel"):
            EngineConfig(parallel_mode="threads")

    def test_valid_constants(self):
        assert set(VALID_BACKENDS) == {"auto", "row", "columnar"}
        assert set(VALID_ENGINES) == {"chromatic", "reference"}
        assert set(VALID_PARALLEL_MODES) == {"auto", "fork", "spawn"}


class TestFromEnv:
    def test_empty_environ_gives_defaults(self):
        assert EngineConfig.from_env({}) == EngineConfig()

    def test_all_vars_honoured(self):
        env = {
            ENV_VARS["datastore_backend"]: "columnar",
            ENV_VARS["columnar_threshold"]: "7",
            ENV_VARS["gibbs_engine"]: "reference",
            ENV_VARS["numa_sockets"]: "2",
            ENV_VARS["trace"]: "1",
            ENV_VARS["workers"]: "4",
            ENV_VARS["parallel_mode"]: "fork",
        }
        config = EngineConfig.from_env(env)
        assert config == EngineConfig(datastore_backend="columnar",
                                      columnar_threshold=7,
                                      gibbs_engine="reference",
                                      numa_sockets=2, trace=True,
                                      workers=4, parallel_mode="fork")

    @pytest.mark.parametrize("value", ["1", "true", "YES", "On"])
    def test_trace_truthy(self, value):
        assert EngineConfig.from_env({ENV_VARS["trace"]: value}).trace

    @pytest.mark.parametrize("value", ["0", "false", "", "off", "maybe"])
    def test_trace_falsy(self, value):
        assert not EngineConfig.from_env({ENV_VARS["trace"]: value}).trace

    def test_malformed_values_fall_back(self):
        env = {
            ENV_VARS["datastore_backend"]: "quantum",
            ENV_VARS["columnar_threshold"]: "not-a-number",
            ENV_VARS["gibbs_engine"]: "",
            ENV_VARS["numa_sockets"]: "-3",
            ENV_VARS["workers"]: "-2",
            ENV_VARS["parallel_mode"]: "threads",
        }
        assert EngineConfig.from_env(env) == EngineConfig()

    def test_workers_parsed(self):
        assert EngineConfig.from_env({ENV_VARS["workers"]: "2"}).workers == 2
        assert EngineConfig.from_env(
            {ENV_VARS["workers"]: "junk"}).workers == 0


class TestDispatchIsolation:
    """Satellite 3: backend dispatch never consults the environment."""

    def test_env_mutation_after_construction_has_no_effect(self, monkeypatch):
        config = EngineConfig(datastore_backend="row", columnar_threshold=5)
        monkeypatch.setitem(os.environ,
                            ENV_VARS["datastore_backend"], "columnar")
        monkeypatch.setitem(os.environ,
                            ENV_VARS["columnar_threshold"], "9999")
        assert Q.current_backend(config) == "row"
        assert Q.columnar_threshold(config) == 5

    def test_process_default_frozen_at_import(self, monkeypatch):
        before = Q.current_backend()
        monkeypatch.setitem(os.environ,
                            ENV_VARS["datastore_backend"], "columnar")
        monkeypatch.setitem(os.environ, ENV_VARS["trace"], "1")
        assert Q.current_backend() == before
        assert Q.active_config().trace is False

    def test_set_default_config_roundtrip(self):
        original = Q.active_config()
        try:
            Q.set_default_config(EngineConfig(datastore_backend="columnar"))
            assert Q.current_backend() == "columnar"
        finally:
            Q.set_default_config(original)
        assert Q.active_config() == original

    def test_forced_backend_beats_config(self):
        config = EngineConfig(datastore_backend="row")
        with Q.use_backend("columnar"):
            assert Q.current_backend(config) == "columnar"
        assert Q.current_backend(config) == "row"
