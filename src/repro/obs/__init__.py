"""repro.obs: zero-dependency tracing, metrics, and engine configuration.

The observability subsystem the engineering loop runs on (paper Sections
2.5 and 5: iteration speed is bounded by introspection).  Three pieces:

* **spans** -- hierarchical timed ``span("layer.op")`` context managers
  collected into trees by a process-local :class:`Collector`, with a
  ``@instrumented`` decorator and near-zero overhead when no collector is
  installed;
* **metrics** -- a :class:`MetricsRegistry` of counters/gauges/histograms
  recorded through the same collector, mergeable across NUMA replicas;
* **config** -- the frozen :class:`EngineConfig` that replaced the old
  ``REPRO_*`` env-var knobs (env vars survive only as fallbacks read once
  by :meth:`EngineConfig.from_env`, in :mod:`repro.obs.config` and nowhere
  else).

Typical use::

    from repro import obs

    collector = obs.Collector(sinks=[obs.JsonlSink("trace.jsonl")])
    with obs.installed(collector):
        with obs.span("grounding.initial_load", backend="columnar") as sp:
            ...
            sp.set(factors=graph.num_factors)
        obs.observe("dred.delta_rows", 17, view="rule::3")
    print(collector.roots[0].render())
"""

from repro.obs.config import (ENV_VARS, VALID_BACKENDS, VALID_ENGINES,
                              VALID_PARALLEL_MODES, EngineConfig)
from repro.obs.metrics import HistogramSummary, MetricsRegistry, metric_key
from repro.obs.profile import PhaseRecorder, Profile
from repro.obs.sinks import InMemorySink, JsonlSink, TreePrinterSink
from repro.obs.span import (NULL_SPAN, Collector, NoopCollector, Span,
                            active, adopt, count, enabled, gauge, install,
                            installed, instrumented, observe, span, uninstall)

__all__ = [
    "Collector",
    "ENV_VARS",
    "EngineConfig",
    "HistogramSummary",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "NoopCollector",
    "PhaseRecorder",
    "Profile",
    "Span",
    "TreePrinterSink",
    "VALID_BACKENDS",
    "VALID_ENGINES",
    "VALID_PARALLEL_MODES",
    "active",
    "adopt",
    "count",
    "enabled",
    "gauge",
    "install",
    "installed",
    "instrumented",
    "metric_key",
    "observe",
    "span",
    "uninstall",
]
