"""Tests for the compiled CSR graph and factor-function semantics."""

import numpy as np
import pytest

from repro.factorgraph import (CompiledGraph, FactorFunction, FactorGraph,
                               evaluate)


def simple_graph():
    graph = FactorGraph()
    a = graph.variable("a")
    b = graph.variable("b")
    c = graph.variable("c")
    w1 = graph.weight("w1", 2.0)
    w2 = graph.weight("w2", -1.0)
    graph.add_factor(FactorFunction.IS_TRUE, [a], w1)
    graph.add_factor(FactorFunction.IS_TRUE, [b], w1, negated=[True])
    graph.add_factor(FactorFunction.IMPLY, [a, c], w2)
    graph.add_factor(FactorFunction.EQUAL, [b, c], w2)
    return graph


class TestEvaluate:
    def test_is_true(self):
        assert evaluate(FactorFunction.IS_TRUE, np.array([True])) == 1
        assert evaluate(FactorFunction.IS_TRUE, np.array([False])) == 0

    def test_imply(self):
        # body=True head=False is the only violating world
        assert evaluate(FactorFunction.IMPLY, np.array([True, False])) == 0
        assert evaluate(FactorFunction.IMPLY, np.array([True, True])) == 1
        assert evaluate(FactorFunction.IMPLY, np.array([False, False])) == 1

    def test_imply_multi_body(self):
        assert evaluate(FactorFunction.IMPLY, np.array([True, True, False])) == 0
        assert evaluate(FactorFunction.IMPLY, np.array([True, False, False])) == 1

    def test_and_or(self):
        assert evaluate(FactorFunction.AND, np.array([True, True])) == 1
        assert evaluate(FactorFunction.AND, np.array([True, False])) == 0
        assert evaluate(FactorFunction.OR, np.array([False, True])) == 1
        assert evaluate(FactorFunction.OR, np.array([False, False])) == 0

    def test_equal(self):
        assert evaluate(FactorFunction.EQUAL, np.array([True, True])) == 1
        assert evaluate(FactorFunction.EQUAL, np.array([False, True])) == 0


class TestCompiledGraph:
    def test_sizes(self):
        compiled = CompiledGraph(simple_graph())
        assert compiled.num_variables == 3
        assert compiled.num_unary == 2
        assert compiled.num_general == 2
        assert compiled.num_factors == 4

    def test_unary_deltas(self):
        compiled = CompiledGraph(simple_graph())
        deltas = compiled.unary_deltas()
        # a: +w1 = +2; b: negated literal -> -w1 = -2; c: no unary factor
        assert deltas[compiled.variable_index("a")] == pytest.approx(2.0)
        assert deltas[compiled.variable_index("b")] == pytest.approx(-2.0)
        assert deltas[compiled.variable_index("c")] == pytest.approx(0.0)

    def test_general_factor_value(self):
        compiled = CompiledGraph(simple_graph())
        a = compiled.variable_index("a")
        c = compiled.variable_index("c")
        world = np.zeros(3, dtype=bool)
        world[a] = True  # a=1, c=0 violates IMPLY(a->c)
        imply_index = int(np.nonzero(
            compiled.general_function == FactorFunction.IMPLY)[0][0])
        assert compiled.general_factor_value(imply_index, world) == 0
        world[c] = True
        assert compiled.general_factor_value(imply_index, world) == 1

    def test_general_delta_matches_bruteforce(self):
        compiled = CompiledGraph(simple_graph())
        rng = np.random.default_rng(0)
        for _ in range(20):
            world = rng.random(3) < 0.5
            for var in range(3):
                w1 = world.copy()
                w1[var] = True
                w0 = world.copy()
                w0[var] = False
                expected = sum(
                    compiled.weight_values[compiled.general_weight[fi]]
                    * (compiled.general_factor_value(fi, w1)
                       - compiled.general_factor_value(fi, w0))
                    for fi in range(compiled.num_general))
                assert compiled.general_delta(var, world) == pytest.approx(expected)

    def test_unary_value_sums(self):
        compiled = CompiledGraph(simple_graph())
        a = compiled.variable_index("a")
        b = compiled.variable_index("b")
        world = np.zeros(3, dtype=bool)
        world[a] = True
        world[b] = False
        sums = compiled.unary_value_sums(world)
        # both unary factors tied to w1: IS_TRUE(a)=1, IS_TRUE(!b)=1
        w1 = compiled.weight_keys.index("w1")
        assert sums[w1] == pytest.approx(2.0)

    def test_evidence_copied(self):
        graph = simple_graph()
        graph.set_evidence("a", True)
        compiled = CompiledGraph(graph)
        a = compiled.variable_index("a")
        assert compiled.is_evidence[a]
        assert compiled.evidence_values[a]

    def test_export_weights_roundtrip(self):
        graph = simple_graph()
        compiled = CompiledGraph(graph)
        compiled.weight_values[:] = [7.0, 8.0]
        compiled.export_weights(graph)
        assert graph.weight_by_key("w1").value in (7.0, 8.0)
        assert {w.value for w in graph.weights.values()} == {7.0, 8.0}

    def test_column_row_csr_consistent(self):
        compiled = CompiledGraph(simple_graph())
        # every (factor, var) edge in row CSR appears in column CSR
        for fi in range(compiled.num_general):
            for v in compiled.fv_vars[compiled.fv_indptr[fi]:compiled.fv_indptr[fi + 1]]:
                factors = compiled.vf_factors[compiled.vf_indptr[v]:compiled.vf_indptr[v + 1]]
                assert fi in factors
