"""Tests for CSV and JSON persistence."""

import io

import pytest

from repro.datastore import Database, Relation, Schema
from repro.datastore.io import (database_from_dict, database_to_dict,
                                dump_database, load_database, read_csv,
                                relation_to_csv_text, write_csv)


def sample_relation():
    relation = Relation("mixed", Schema.of(
        name="text", age="int", score="float", active="bool", tags="array"))
    relation.insert(("alice", 30, 1.5, True, ("a", "b")))
    relation.insert(("bob", None, None, False, ()))
    relation.insert(("alice", 30, 1.5, True, ("a", "b")))  # duplicate
    return relation


class TestCsv:
    def test_roundtrip(self):
        relation = sample_relation()
        text = relation_to_csv_text(relation)
        restored = read_csv(io.StringIO(text), relation.schema)
        assert sorted(restored) == sorted(relation)

    def test_multiplicity_preserved(self):
        relation = sample_relation()
        restored = read_csv(io.StringIO(relation_to_csv_text(relation)),
                            relation.schema)
        assert restored.count(("alice", 30, 1.5, True, ("a", "b"))) == 2

    def test_header_written(self):
        text = relation_to_csv_text(sample_relation())
        assert text.splitlines()[0] == "name,age,score,active,tags"

    def test_header_mismatch_rejected(self):
        with pytest.raises(ValueError, match="header"):
            read_csv(io.StringIO("x,y\n1,2\n"), Schema.of(a="int", b="int"))

    def test_empty_stream(self):
        relation = read_csv(io.StringIO(""), Schema.of(a="int"))
        assert len(relation) == 0

    def test_write_returns_count(self):
        buffer = io.StringIO()
        assert write_csv(sample_relation(), buffer) == 3


class TestJsonDatabase:
    def make_db(self):
        db = Database()
        db.create("people", name="text", age="int")
        db.insert("people", [("alice", 30), ("bob", 25)])
        db.create("tags", item="text", labels="array")
        db.insert("tags", [("x", ("t1", "t2"))])
        return db

    def test_roundtrip(self):
        db = self.make_db()
        restored = database_from_dict(database_to_dict(db))
        assert restored.names() == db.names()
        for name in db.names():
            assert sorted(restored[name]) == sorted(db[name])
            assert restored[name].schema == db[name].schema

    def test_stream_roundtrip(self):
        db = self.make_db()
        buffer = io.StringIO()
        dump_database(db, buffer)
        buffer.seek(0)
        restored = load_database(buffer)
        assert sorted(restored["people"]) == sorted(db["people"])

    def test_subset_of_relations(self):
        db = self.make_db()
        data = database_to_dict(db, relations=["people"])
        assert set(data["relations"]) == {"people"}

    def test_version_checked(self):
        with pytest.raises(ValueError, match="version"):
            database_from_dict({"version": 99, "relations": {}})


class TestMutationVersionRoundTrip:
    """Dump/load preserves relation mutation counters so incremental
    machinery (DRed views, columnar caches) resumes correctly."""

    def test_counters_round_trip(self):
        db = Database()
        db.create("people", name="text", age="int")
        db.insert("people", [("alice", 30), ("bob", 25)])
        db["people"].delete(("bob", 25))
        before = db["people"].mutation_version
        assert before > 0
        restored = database_from_dict(database_to_dict(db))
        assert restored["people"].mutation_version == before

    def test_v1_payload_without_counters_loads(self):
        db = Database()
        db.create("people", name="text")
        db.insert("people", [("alice",)])
        data = database_to_dict(db, version=2)   # v1 = v2's rows, no counters
        data["version"] = 1
        for item in data["relations"].values():
            del item["mutation_version"]
        restored = database_from_dict(data)
        assert sorted(restored["people"]) == sorted(db["people"])

    def test_counter_cannot_rewind(self):
        relation = Relation("r", Schema.of(a="int"))
        relation.insert((1,))
        with pytest.raises(ValueError, match="rewind"):
            relation.restore_mutation_version(0)

    def test_restored_database_resumes_dred_deltas(self):
        """A DRed view defined over a restored database absorbs a delta and
        lands on the same state as the never-dumped original."""
        from repro.datastore.plan import Scan, Select

        def build(db):
            db.views.define(
                "adults", Select(Scan("people"), lambda row: row["age"] >= 18))

        original = Database()
        original.create("people", name="text", age="int")
        original.insert("people", [("alice", 30), ("kid", 7)])

        restored = database_from_dict(database_to_dict(original))
        build(original)
        build(restored)
        for db in (original, restored):
            db.views.apply_changes(inserts={"people": [("carol", 41)]},
                                   deletes={"people": [("alice", 30)]})
        assert sorted(restored.views["adults"].visible_rows()) == \
            sorted(original.views["adults"].visible_rows()) == [("carol", 41)]
        assert restored["people"].mutation_version == \
            original["people"].mutation_version
