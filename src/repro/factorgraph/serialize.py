"""Factor-graph serialization.

DeepDive passes grounded factor graphs between the grounder (in the
database) and the sampler (outside it); persisting the graph also lets the
engineer archive each iteration's model next to its error-analysis document.
The format is plain JSON-compatible dicts: keys are stringified, structure
is versioned, and a round-trip is exact for every supported key type
(strings, ints, and nested tuples thereof).
"""

from __future__ import annotations

import json
from typing import Any

from repro.factorgraph.factor_functions import FactorFunction
from repro.factorgraph.graph import FactorGraph

FORMAT_VERSION = 1


def _encode_key(key: Any) -> Any:
    """Encode a variable/weight key into JSON-safe structure."""
    if isinstance(key, tuple):
        return {"t": [_encode_key(k) for k in key]}
    if isinstance(key, (str, int, float, bool)) or key is None:
        return key
    raise TypeError(f"cannot serialize key of type {type(key).__name__}")


def _decode_key(data: Any) -> Any:
    if isinstance(data, dict) and set(data) == {"t"}:
        return tuple(_decode_key(k) for k in data["t"])
    return data


def to_dict(graph: FactorGraph) -> dict:
    """Serialize ``graph`` to a JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "variables": [
            {"id": v.var_id, "key": _encode_key(v.key),
             "evidence": v.evidence, "initial": v.initial}
            for v in graph.variables.values()
        ],
        "weights": [
            {"id": w.weight_id, "key": _encode_key(w.key), "value": w.value,
             "fixed": w.fixed}
            for w in graph.weights.values()
        ],
        "factors": [
            {"function": int(f.function), "vars": list(f.var_ids),
             "negated": list(f.negated), "weight": f.weight_id}
            for f in graph.factors.values()
        ],
    }


def from_dict(data: dict) -> FactorGraph:
    """Reconstruct a graph serialized by :func:`to_dict`."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported factor-graph format version "
                         f"{data.get('version')!r}")
    graph = FactorGraph()
    id_map: dict[int, int] = {}
    for item in data["variables"]:
        new_id = graph.variable(_decode_key(item["key"]),
                                initial=item["initial"])
        graph.variables[new_id].evidence = item["evidence"]
        id_map[item["id"]] = new_id
    weight_map: dict[int, int] = {}
    for item in data["weights"]:
        new_id = graph.weight(_decode_key(item["key"]),
                              initial_value=item["value"],
                              fixed=item["fixed"])
        weight_map[item["id"]] = new_id
    for item in data["factors"]:
        graph.add_factor(FactorFunction(item["function"]),
                         [id_map[v] for v in item["vars"]],
                         weight_map[item["weight"]],
                         negated=item["negated"])
    # add_factor increments observation counts; they now match the originals
    return graph


def dumps(graph: FactorGraph) -> str:
    """Serialize ``graph`` to a JSON string."""
    return json.dumps(to_dict(graph))


def loads(text: str) -> FactorGraph:
    """Inverse of :func:`dumps`."""
    return from_dict(json.loads(text))
