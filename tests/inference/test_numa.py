"""Tests for the simulated-NUMA execution layer."""

import numpy as np
import pytest

from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.inference import NumaConfig, NumaGibbs


def chain_graph(n=20, weight=1.0):
    graph = FactorGraph()
    prev = graph.variable("v0")
    graph.add_factor(FactorFunction.IS_TRUE, [prev], graph.weight("unary", 0.5))
    for i in range(1, n):
        cur = graph.variable(f"v{i}")
        graph.add_factor(FactorFunction.EQUAL, [prev, cur],
                         graph.weight("couple", weight))
        prev = cur
    return CompiledGraph(graph)


class TestNumaConfig:
    def test_invalid_sockets(self):
        with pytest.raises(ValueError):
            NumaConfig(sockets=0)

    def test_invalid_penalty(self):
        with pytest.raises(ValueError):
            NumaConfig(remote_penalty=0.5)

    def test_invalid_engine(self):
        with pytest.raises(ValueError, match="engine"):
            NumaConfig(engine="turbo")

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            NumaConfig(workers=-1)

    def test_invalid_parallel_mode(self):
        with pytest.raises(ValueError, match="parallel mode"):
            NumaConfig(parallel_mode="threads")

    def test_from_engine_config_threads_worker_knobs(self):
        from repro.obs import EngineConfig
        config = NumaConfig.from_engine_config(
            EngineConfig(numa_sockets=2, workers=3, parallel_mode="fork"))
        assert config.sockets == 2
        assert config.workers == 3
        assert config.parallel_mode == "fork"


class TestEngineThreading:
    def test_engines_produce_identical_runs(self):
        """Replica sweeps run the same chain under either engine, so the
        whole simulated run must agree bit for bit."""
        compiled = chain_graph(n=10)
        chromatic = NumaGibbs(compiled, NumaConfig(sockets=2, engine="chromatic"),
                              seed=3).run(num_samples=30, burn_in=5)
        reference = NumaGibbs(compiled, NumaConfig(sockets=2, engine="reference"),
                              seed=3).run(num_samples=30, burn_in=5)
        np.testing.assert_array_equal(chromatic.marginals, reference.marginals)
        assert chromatic.modeled_time == reference.modeled_time

    def test_per_socket_cost_reported(self):
        compiled = chain_graph()
        config = NumaConfig(sockets=4, sync_every=5)
        result = NumaGibbs(compiled, config).run(num_samples=10, burn_in=2)
        assert len(result.per_socket_cost) == 4
        assert all(c > 0 for c in result.per_socket_cost)
        # sockets work in parallel: the modeled time covers at least the
        # busiest socket (plus sync rounds)
        assert result.modeled_time >= max(result.per_socket_cost)

    def test_shared_mode_cost_split_across_sockets(self):
        """Non-aware mode runs ONE chain; per-socket cost is each socket's
        share of that chain's interleaved accesses, so the shares sum to
        the sweep part of the modeled time instead of ``sockets`` times it.
        """
        compiled = chain_graph()
        config = NumaConfig(sockets=4, numa_aware=False)
        result = NumaGibbs(compiled, config).run(num_samples=10, burn_in=2)
        assert len(result.per_socket_cost) == 4
        # no sync rounds in shared mode: modeled time is exactly the sweeps
        np.testing.assert_allclose(sum(result.per_socket_cost),
                                   result.modeled_time)


class TestCostModel:
    def test_aware_is_faster(self):
        compiled = chain_graph()
        aware = NumaGibbs(compiled, NumaConfig(sockets=4, numa_aware=True, sync_every=10))
        shared = NumaGibbs(compiled, NumaConfig(sockets=4, numa_aware=False))
        t_aware = aware.run(num_samples=20, burn_in=5).modeled_time
        t_shared = shared.run(num_samples=20, burn_in=5).modeled_time
        assert t_aware < t_shared

    def test_speedup_scales_with_penalty(self):
        compiled = chain_graph()
        result = {}
        for penalty in (2.0, 6.0):
            shared = NumaGibbs(compiled, NumaConfig(
                sockets=4, numa_aware=False, remote_penalty=penalty))
            result[penalty] = shared.run(num_samples=10, burn_in=2).modeled_time
        assert result[6.0] > result[2.0]

    def test_single_socket_no_sync_cost(self):
        compiled = chain_graph()
        single = NumaGibbs(compiled, NumaConfig(sockets=1, numa_aware=True))
        assert single._sync_cost() == 0.0

    def test_frequent_sync_costs_more(self):
        compiled = chain_graph()
        tight = NumaGibbs(compiled, NumaConfig(sockets=4, sync_every=1))
        loose = NumaGibbs(compiled, NumaConfig(sockets=4, sync_every=25))
        t_tight = tight.run(num_samples=25, burn_in=0).modeled_time
        t_loose = loose.run(num_samples=25, burn_in=0).modeled_time
        assert t_tight > t_loose


class TestStatisticalBehaviour:
    def test_replica_marginals_close_to_single_chain(self):
        compiled = chain_graph(n=8, weight=0.8)
        aware = NumaGibbs(compiled, NumaConfig(sockets=4, sync_every=5), seed=0)
        single = NumaGibbs(compiled, NumaConfig(sockets=1), seed=1)
        m_aware = aware.run(num_samples=800, burn_in=100).marginals
        m_single = single.run(num_samples=3000, burn_in=100).marginals
        np.testing.assert_allclose(m_aware, m_single, atol=0.08)

    def test_throughput_reported(self):
        compiled = chain_graph()
        result = NumaGibbs(compiled, NumaConfig(sockets=2)).run(num_samples=10, burn_in=2)
        assert result.samples_drawn > 0
        assert result.modeled_throughput > 0

    def test_evidence_clamped_in_output(self):
        graph = FactorGraph()
        a = graph.variable("a")
        graph.add_factor(FactorFunction.IS_TRUE, [a], graph.weight("w", -3.0))
        graph.set_evidence("a", True)
        compiled = CompiledGraph(graph)
        result = NumaGibbs(compiled, NumaConfig(sockets=2)).run(num_samples=20, burn_in=2)
        assert result.marginals[compiled.variable_index("a")] == 1.0
