"""Factor function semantics.

A factor graph here is the triple (V, F, w) of the paper's Section 3.3:
Boolean variables, hyperedge factors, and a weight function.  Each factor
evaluates to 0 or 1 for a possible world; its contribution to the log-weight
of the world is ``weight * value``.  Literals may be negated, so a factor
sees the vector of *literal* values (variable value XOR negation).

The function inventory mirrors DeepDive's grounded factor types:

* ``IS_TRUE``   -- unary: value of the single literal (the classifier factor
  produced by feature rules).
* ``IMPLY``     -- body literals imply the head literal (last position).
* ``AND`` / ``OR`` -- conjunction / disjunction of all literals.
* ``EQUAL``     -- binary: 1 iff both literals agree.
"""

from __future__ import annotations

import enum

import numpy as np


class FactorFunction(enum.IntEnum):
    """Grounded factor types (int-valued so they pack into numpy arrays)."""

    IS_TRUE = 0
    IMPLY = 1
    AND = 2
    OR = 3
    EQUAL = 4


def evaluate(function: FactorFunction, literals: np.ndarray) -> int:
    """Value of ``function`` over boolean ``literals`` (already de-negated)."""
    if function == FactorFunction.IS_TRUE:
        return int(literals[0])
    if function == FactorFunction.IMPLY:
        body = literals[:-1]
        head = literals[-1]
        return int((not bool(body.all())) or bool(head))
    if function == FactorFunction.AND:
        return int(bool(literals.all()))
    if function == FactorFunction.OR:
        return int(bool(literals.any()))
    if function == FactorFunction.EQUAL:
        return int(bool(literals[0]) == bool(literals[1]))
    raise ValueError(f"unknown factor function {function}")


def arity_constraint(function: FactorFunction) -> tuple[int, int | None]:
    """(min_arity, max_arity) for ``function``; ``None`` means unbounded."""
    if function == FactorFunction.IS_TRUE:
        return (1, 1)
    if function == FactorFunction.EQUAL:
        return (2, 2)
    if function == FactorFunction.IMPLY:
        return (2, None)
    return (1, None)
