"""Entity linking: mention strings -> knowledge-base entities.

"The relation EL is for 'entity linking' that maps mentions to their
candidate entities" (Section 3.2).  Real deployments link through alias
tables (name variants, abbreviations) with fuzzy matching; this module
implements that substrate:

* :class:`AliasTable` -- entity -> alias strings, indexed for lookup;
* :class:`EntityLinker` -- scores candidate entities for a mention via
  exact, normalized, and token-overlap matching;
* :func:`link_mentions` -- bulk-link a mention relation into an ``EL``
  relation, the form DeepDive supervision rules consume.

Ambiguity is preserved on purpose: a mention matching several entities
yields several EL rows, and the downstream majority-vote evidence resolution
(see :mod:`repro.grounding.grounder`) handles the resulting label conflicts
-- the behaviour E10/E11's corpora exercise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

_NON_ALNUM = re.compile(r"[^a-z0-9 ]+")


def normalize(text: str) -> str:
    """Lowercase, strip punctuation, collapse whitespace."""
    lowered = _NON_ALNUM.sub(" ", text.lower())
    return " ".join(lowered.split())


@dataclass(frozen=True)
class LinkCandidate:
    """One scored entity candidate for a mention."""

    entity: str
    score: float
    method: str         # "exact" | "normalized" | "overlap"


class AliasTable:
    """Entity -> alias strings, with normalized lookup indexes."""

    def __init__(self) -> None:
        self._aliases: dict[str, set[str]] = {}
        self._exact: dict[str, set[str]] = {}
        self._normalized: dict[str, set[str]] = {}
        self._token_index: dict[str, set[str]] = {}

    def add(self, entity: str, alias: str) -> None:
        """Register ``alias`` as a name of ``entity``."""
        self._aliases.setdefault(entity, set()).add(alias)
        self._exact.setdefault(alias, set()).add(entity)
        normalized_alias = normalize(alias)
        self._normalized.setdefault(normalized_alias, set()).add(entity)
        for token in normalized_alias.split():
            self._token_index.setdefault(token, set()).add(entity)

    def add_many(self, pairs: Iterable[tuple[str, str]]) -> None:
        """Bulk form of :meth:`add` over (entity, alias) pairs."""
        for entity, alias in pairs:
            self.add(entity, alias)

    def aliases_of(self, entity: str) -> set[str]:
        return set(self._aliases.get(entity, ()))

    @property
    def num_entities(self) -> int:
        return len(self._aliases)

    # used by the linker
    def exact(self, text: str) -> set[str]:
        return set(self._exact.get(text, ()))

    def normalized_match(self, text: str) -> set[str]:
        return set(self._normalized.get(normalize(text), ()))

    def token_candidates(self, text: str) -> set[str]:
        entities: set[str] = set()
        for token in normalize(text).split():
            entities |= self._token_index.get(token, set())
        return entities


class EntityLinker:
    """Score entity candidates for mention strings against an alias table."""

    def __init__(self, aliases: AliasTable, min_overlap: float = 0.5) -> None:
        self.aliases = aliases
        self.min_overlap = min_overlap

    def link(self, mention_text: str, top: int | None = None) -> list[LinkCandidate]:
        """Ranked entity candidates for ``mention_text``.

        Exact alias matches score 1.0; case/punctuation-normalized matches
        0.9; token-overlap (Jaccard over normalized tokens) matches score
        ``0.8 * jaccard`` when above ``min_overlap``.
        """
        results: dict[str, LinkCandidate] = {}
        for entity in self.aliases.exact(mention_text):
            results[entity] = LinkCandidate(entity, 1.0, "exact")
        for entity in self.aliases.normalized_match(mention_text):
            if entity not in results:
                results[entity] = LinkCandidate(entity, 0.9, "normalized")
        mention_tokens = set(normalize(mention_text).split())
        if mention_tokens:
            for entity in self.aliases.token_candidates(mention_text):
                if entity in results:
                    continue
                best = 0.0
                for alias in self.aliases.aliases_of(entity):
                    alias_tokens = set(normalize(alias).split())
                    union = mention_tokens | alias_tokens
                    if not union:
                        continue
                    jaccard = len(mention_tokens & alias_tokens) / len(union)
                    best = max(best, jaccard)
                if best >= self.min_overlap:
                    results[entity] = LinkCandidate(entity, 0.8 * best, "overlap")
        ranked = sorted(results.values(), key=lambda c: (-c.score, c.entity))
        return ranked[:top] if top is not None else ranked


def link_mentions(mentions: Iterable[tuple[str, str]], linker: EntityLinker,
                  min_score: float = 0.4, top: int | None = None,
                  ) -> list[tuple[str, str]]:
    """Bulk linking: (mention_id, text) pairs -> EL rows (mention_id, entity).

    Mentions with several strong candidates produce several rows (entity
    ambiguity is downstream's problem, by design).
    """
    rows: list[tuple[str, str]] = []
    for mention_id, text in mentions:
        for candidate in linker.link(text, top=top):
            if candidate.score >= min_score:
                rows.append((mention_id, candidate.entity))
    return rows
