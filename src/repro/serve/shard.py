"""Sharded multi-tenant serving: N single-writer services behind one router.

:class:`ShardedKBService` scales the serving layer horizontally: documents
are routed by ``doc_id`` over a consistent-hash ring onto ``N``
:class:`~repro.serve.service.KBService` shards, each with its own WAL,
checkpoint directory, apply loop, and private worker-pool partition
(``EngineConfig.pool_owner``).  Knowledge-base rows and rule deltas are
*broadcast* — every shard grounds the same KB and program, so a candidate
lands on exactly one shard but is supervised identically wherever it lands.

**Consistency model.**  Readers see a :class:`MergedSnapshot`: one immutable
per-shard snapshot per component, identified by its *LSN vector*.  The
router's reaper thread is the sole publisher and advances the vector only
after **every** shard of a commit group has committed, in group submission
order — so a reader can never observe half of a multi-shard batch (a torn
read).  Two mechanisms make that airtight:

* the router serializes group fan-out under one lock, so every shard's
  queue sees groups in the same global order; and
* routed batches are submitted with ``coalesce=False``, so a shard can
  never fold two groups into one commit (which would leak a later group's
  ops into an earlier group's snapshot).

Reads never block on ingest: ``snapshot()`` is one atomic reference load,
exactly like the single-shard service.  ``snapshot_at(lsn_vector)``
reconstructs any retained published vector for repeatable cross-shard
reads.

**Multi-tenancy.**  Tenants are admission-control principals: each has an
op quota (defaulting to ``ServeConfig.tenant_quota``; ``0`` = unlimited)
counted over ops admitted but not yet committed, enforced *before* the
fan-out so a throttled tenant never occupies shard queue capacity.  A
tenant may register its own DDlog rules; rule programs are broadcast, so
every shard serves the union program (the knowledge base is shared — quotas
isolate load, not data).

**Failure model.**  A shard commit failure inside a group fail-stops the
router (like the single service's apply loop): the merged view is never
advanced past the broken group, and recovery is :meth:`open`, which
restores each shard from its own checkpoint + WAL tail.  Because every
shard's recovery is bit-identical, the recovered router republishes the
same (version, LSN) vector and the same marginals the crashed one served.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import pathlib
import queue
import threading
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping, Sequence

from repro import obs
from repro.serve.config import ServeConfig
from repro.serve.engine import AppFactory, base_relation_names
from repro.serve.ops import (AddDocuments, AddRows, AddRules, IngestOp,
                             RemoveDocuments)
from repro.serve.service import (IngestRejected, KBService, PendingCommit,
                                 ServiceFailed)
from repro.serve.snapshot import Snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compliance.manifest import ComplianceManifest
    from repro.compliance.policy import CompliancePolicy

#: The router's on-disk manifest: how many shards live under a directory.
MANIFEST_NAME = "shards.json"
MANIFEST_FORMAT = 1
DEFAULT_VNODES = 64


class QuotaExceeded(IngestRejected):
    """Raised when a tenant's admitted-but-uncommitted ops exceed its quota."""


# --------------------------------------------------------------------- routing
class HashRing:
    """Consistent hashing of document keys onto shard indices.

    Each shard owns ``vnodes`` points on a 64-bit ring (SHA-256 of
    ``"shard-{index}#{vnode}"``); a key belongs to the shard owning the
    first point at or after the key's own hash.  Routing is therefore a
    pure function of ``(key, shards, vnodes)`` — stable across restarts and
    across processes, which is what lets :meth:`ShardedKBService.open`
    resume routing without persisting any assignment table.
    """

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if vnodes < 1:
            raise ValueError(f"need at least one vnode, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        points = sorted(
            (self._point(f"shard-{index}#{vnode}"), index)
            for index in range(shards) for vnode in range(vnodes))
        self._points = [point for point, _ in points]
        self._owners = [index for _, index in points]

    @staticmethod
    def _point(label: str) -> int:
        digest = hashlib.sha256(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def shard_of(self, key) -> int:
        """The shard index owning ``key`` (hashed as ``str(key)``)."""
        if self.shards == 1:
            return 0
        where = bisect.bisect_left(self._points, self._point(str(key)))
        return self._owners[where % len(self._owners)]


def route_ops(ops: Sequence[IngestOp],
              ring: HashRing) -> dict[int, list[IngestOp]]:
    """Split ``ops`` into per-shard batches.

    Document operations are partitioned by ``doc_id`` over the ring
    (preserving relative document order within each shard); row and rule
    operations are broadcast to every shard, so all shards ground the same
    knowledge base and program.
    """
    routed: dict[int, list[IngestOp]] = {}
    for op in ops:
        if isinstance(op, AddDocuments):
            groups: dict[int, list] = {}
            for doc_id, content in op.documents:
                groups.setdefault(ring.shard_of(doc_id),
                                  []).append((doc_id, content))
            for index, docs in groups.items():
                routed.setdefault(index, []).append(AddDocuments(tuple(docs)))
        elif isinstance(op, RemoveDocuments):
            groups = {}
            for doc_id in op.doc_ids:
                groups.setdefault(ring.shard_of(doc_id), []).append(doc_id)
            for index, ids in groups.items():
                routed.setdefault(index, []).append(RemoveDocuments(tuple(ids)))
        else:                                    # rows / rules: broadcast
            for index in range(ring.shards):
                routed.setdefault(index, []).append(op)
    return routed


# --------------------------------------------------------------------- reading
class MergedSnapshot:
    """A :class:`~repro.serve.snapshot.Snapshot`-compatible view over one
    immutable snapshot per shard.

    Identified by its :attr:`lsn_vector` (one WAL position per shard); the
    query surface (``marginal`` / ``output_tuples`` / ``top`` /
    ``relations`` / ``len``) matches ``Snapshot`` exactly, so
    :class:`~repro.serve.client.KBClient` code is backend-agnostic.  The
    merged marginal dict is built lazily on first query and cached — the
    parts are immutable, so the merge is too.

    Document-derived variable keys are disjoint across shards by
    construction (a document lives on exactly one shard).  Should a
    program produce the same variable key on several shards, the
    highest-indexed shard's marginal wins — deterministically.
    """

    __slots__ = ("parts", "_merged")

    def __init__(self, parts: Iterable[Snapshot]) -> None:
        self.parts = tuple(parts)
        if not self.parts:
            raise ValueError("a merged snapshot needs at least one part")
        self._merged: dict | None = None

    # ---------------------------------------------------------- identifiers
    @property
    def lsn_vector(self) -> tuple[int, ...]:
        return tuple(part.lsn for part in self.parts)

    @property
    def version_vector(self) -> tuple[int, ...]:
        return tuple(part.version for part in self.parts)

    @property
    def threshold(self) -> float:
        return self.parts[0].threshold

    @property
    def marginals(self) -> Mapping:
        merged = self._merged
        if merged is None:                       # benign race: idempotent
            merged = {}
            for part in self.parts:
                merged.update(part.marginals)
            self._merged = merged
        return merged

    @property
    def manifest(self) -> "ComplianceManifest | None":
        """The merged compliance manifest over the scrubbed parts, or
        ``None`` when no part carried one (compliance disabled)."""
        from repro.compliance.manifest import ComplianceManifest
        return ComplianceManifest.merge_all(
            part.manifest for part in self.parts)

    # ------------------------------------------------------------ query API
    def marginal(self, key: Hashable, default: float | None = None) -> float:
        value = self.marginals.get(key)
        if value is None:
            if default is not None:
                return default
            raise KeyError(f"no variable {key!r} in merged snapshot "
                           f"lsn_vector={self.lsn_vector}")
        return value

    def output_tuples(self, relation: str,
                      threshold: float | None = None) -> set[tuple]:
        cut = self.threshold if threshold is None else threshold
        return {values for (name, values), probability
                in self.marginals.items()
                if name == relation and probability >= cut}

    def top(self, relation: str, k: int = 10) -> list[tuple[tuple, float]]:
        entries = [(values, probability)
                   for (name, values), probability in self.marginals.items()
                   if name == relation]
        entries.sort(key=lambda item: (-item[1], item[0]))
        return entries[:k]

    def relations(self) -> list[str]:
        return sorted({name for (name, _values) in self.marginals})

    def __len__(self) -> int:
        return len(self.marginals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MergedSnapshot(shards={len(self.parts)}, "
                f"lsn_vector={self.lsn_vector})")


class _CommitGroup:
    """One routed ingest: per-shard pending commits awaited by the reaper."""

    __slots__ = ("pending", "publish", "tenant", "nops", "done", "error",
                 "snapshot")

    def __init__(self, pending: dict[int, PendingCommit],
                 publish: bool = True, tenant: str | None = None,
                 nops: int = 0) -> None:
        self.pending = pending
        self.publish = publish
        self.tenant = tenant
        self.nops = nops
        self.done = threading.Event()
        self.error: BaseException | None = None
        self.snapshot: MergedSnapshot | None = None

    def wait(self, timeout: float | None = None) -> MergedSnapshot:
        """Block until every shard committed; the published merged view."""
        if not self.done.wait(timeout):
            raise TimeoutError(f"group not committed within {timeout}s")
        if self.error is not None:
            raise ServiceFailed(
                f"sharded commit failed: {self.error}") from self.error
        return self.snapshot


# ---------------------------------------------------------------------- router
class ShardedKBService:
    """N knowledge-base shards behind one ingest router and merged view.

    Construct with :meth:`create` (bootstrap a new layout) or :meth:`open`
    (recover an existing one); the number of shards comes from
    ``ServeConfig.shards`` (or its env fallback) or the on-disk
    manifest.  Prefer holding a :class:`~repro.serve.client.KBClient`
    (via :meth:`client`): its surface is identical over single and
    sharded backends.
    """

    def __init__(self, directory: str | pathlib.Path,
                 shards: Sequence[KBService], ring: HashRing,
                 config: ServeConfig) -> None:
        if len(shards) != ring.shards:
            raise ValueError(f"{len(shards)} services for a "
                             f"{ring.shards}-shard ring")
        self.directory = pathlib.Path(directory)
        self.shards = list(shards)
        self.ring = ring
        self.config = config
        # the merged view: replaced (never mutated) by the reaper, read by
        # anyone — one atomic reference load, exactly like KBService
        self._view = MergedSnapshot(
            [shard._read_snapshot() for shard in self.shards])
        # serializes fan-out so every shard queue sees groups in the same
        # global order (see module docstring: torn-read prevention)
        self._route_lock = threading.Lock()
        self._groups: queue.Queue = queue.Queue()
        self._tenant_lock = threading.Lock()
        self._tenants: dict[str, dict] = {}
        self._facade = None                      # lazy KBClient
        self._failure: BaseException | None = None
        self._closed = False
        self._reaper = threading.Thread(target=self._reap_loop,
                                        name="repro-serve-reaper",
                                        daemon=True)
        self._reaper.start()

    # ------------------------------------------------------------ constructors
    @classmethod
    def create(cls, directory: str | pathlib.Path, app_factory: AppFactory,
               bootstrap_ops: Sequence[IngestOp],
               config: ServeConfig | None = None,
               run_kwargs: dict | None = None, start: bool = True,
               shards: int | None = None,
               vnodes: int = DEFAULT_VNODES) -> "ShardedKBService":
        """Bootstrap a new sharded layout under ``directory``.

        Bootstrap operations are routed exactly like live ingest (documents
        partitioned, KB rows broadcast); each shard bootstraps, learns, and
        checkpoints independently — an empty shard (no documents hashed to
        it yet) is valid and publishes an empty version 0.
        """
        directory = pathlib.Path(directory)
        config = config if config is not None else ServeConfig()
        count = shards if shards is not None else config.shards
        ring = HashRing(count, vnodes)
        directory.mkdir(parents=True, exist_ok=True)
        routed = route_ops(list(bootstrap_ops), ring)
        services = []
        for index in range(count):
            shard_dir = directory / cls._shard_dirname(index)
            services.append(KBService.create(
                shard_dir,
                cls._shard_factory(app_factory, str(shard_dir), count),
                routed.get(index, []), config=config,
                run_kwargs=run_kwargs, start=start))
        cls._write_manifest(directory, count, vnodes)
        return cls(directory, services, ring, config)

    @classmethod
    def open(cls, directory: str | pathlib.Path, app_factory: AppFactory,
             config: ServeConfig | None = None,
             run_kwargs: dict | None = None,
             start: bool = True) -> "ShardedKBService":
        """Recover a sharded service: every shard from its own checkpoint
        plus WAL tail (deterministic replay ⇒ the reopened router publishes
        the same (version, LSN) vector and marginals as before the crash).
        """
        directory = pathlib.Path(directory)
        manifest = cls.read_manifest(directory)
        if manifest is None:
            raise ServiceFailed(
                f"no {MANIFEST_NAME} under {directory}; not a sharded "
                f"service directory (use KBService.open for single-shard)")
        config = config if config is not None else ServeConfig()
        count = manifest["shards"]
        ring = HashRing(count, manifest.get("vnodes", DEFAULT_VNODES))
        services = []
        for index in range(count):
            shard_dir = directory / cls._shard_dirname(index)
            services.append(KBService.open(
                shard_dir,
                cls._shard_factory(app_factory, str(shard_dir), count),
                config=config, run_kwargs=run_kwargs, start=start))
        return cls(directory, services, ring, config)

    @classmethod
    def rebalance(cls, directory: str | pathlib.Path,
                  new_directory: str | pathlib.Path,
                  app_factory: AppFactory, new_shards: int,
                  config: ServeConfig | None = None,
                  run_kwargs: dict | None = None,
                  derived_relations: Sequence[str] = (),
                  start: bool = True) -> "ShardedKBService":
        """Re-shard ``directory`` into ``new_shards`` under ``new_directory``.

        Opens the old layout cold (apply loops never started), collects its
        ingested state — all documents (sorted by ``doc_id``) plus the
        broadcast base relations, which are identical on every shard so
        shard 0 is the source of truth — and bootstraps the new layout from
        those, re-routing every document over the new ring.  Extraction
        products (``sentences``, candidate-extractor targets) are *not*
        carried: bootstrap re-derives them on whichever shard each document
        now lives.  Relations filled by document extractors are not
        statically knowable — name them in ``derived_relations`` to exclude
        them too.  Accumulated rule deltas are re-applied to the new layout
        as one ``AddRules`` batch.
        """
        old = cls.open(directory, app_factory, config=config,
                       run_kwargs=run_kwargs, start=False)
        try:
            docs: list[tuple] = []
            for shard in old.shards:
                db = shard.engine.app.db
                if "documents" in db:
                    docs.extend(tuple(row)
                                for row in db["documents"].iter_rows())
            docs.sort(key=lambda row: row[0])
            app0 = old.shards[0].engine.app
            skip = {"documents", "sentences"}
            skip.update(ex.relation
                        for ex in getattr(app0, "_extractors", ()))
            skip.update(derived_relations)
            ops: list[IngestOp] = []
            if docs:
                ops.append(AddDocuments(tuple(
                    (doc_id, content) for doc_id, content in docs)))
            for name in base_relation_names(app0.program, app0.db.names()):
                if name in skip:
                    continue
                rows = tuple(tuple(row)
                             for row in app0.db[name].iter_rows())
                if rows:
                    ops.append(AddRows(name, rows))
            rule_deltas = list(old.shards[0].engine.rule_deltas)
        finally:
            old.stop()
        rebalanced = cls.create(new_directory, app_factory, ops,
                                config=config, run_kwargs=run_kwargs,
                                start=True, shards=new_shards)
        if rule_deltas:
            rebalanced.ingest([AddRules("\n".join(rule_deltas))], wait=True)
        if not start:
            rebalanced.stop()
        return rebalanced

    # ------------------------------------------------------- layout plumbing
    @staticmethod
    def _shard_dirname(index: int) -> str:
        return f"shard-{index:02d}"

    @staticmethod
    def _shard_factory(app_factory: AppFactory, owner_token: str,
                       shards: int) -> AppFactory:
        """Wrap ``app_factory`` with per-shard parallel-layer placement.

        Each shard gets a *private* worker-pool partition (its directory
        path as the ``pool_owner`` token, unique per layout) and a worker
        count capped to its fair share of the visible CPUs — N shards on a
        C-CPU box get ``max(1, min(workers, C // N))`` workers each instead
        of N pools of C workers apiece.
        """
        from repro.parallel import effective_cpus

        def factory(extra_rules: str):
            app = app_factory(extra_rules)
            workers = app.config.workers
            if workers > 0 and shards > 1:
                workers = max(1, min(workers, effective_cpus() // shards))
            app.config = app.config.with_options(workers=workers,
                                                 pool_owner=owner_token)
            app.db.config = app.config
            return app

        return factory

    @staticmethod
    def _write_manifest(directory: pathlib.Path, shards: int,
                        vnodes: int) -> None:
        payload = {"format": MANIFEST_FORMAT, "shards": shards,
                   "vnodes": vnodes}
        path = directory / MANIFEST_NAME
        temp = path.with_suffix(".json.tmp")
        temp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(temp, path)

    @staticmethod
    def read_manifest(directory: str | os.PathLike) -> dict | None:
        """The shard manifest under ``directory``, or None if absent.

        ``KBClient.open`` sniffs this to pick the backend class.
        """
        path = pathlib.Path(directory) / MANIFEST_NAME
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as error:
            raise ServiceFailed(
                f"unreadable shard manifest {path}: {error}") from None
        if payload.get("format") != MANIFEST_FORMAT:
            raise ServiceFailed(
                f"unsupported shard manifest format "
                f"{payload.get('format')!r} in {path}")
        return payload

    # ---------------------------------------------------------------- tenants
    def register_tenant(self, name: str, quota: int | None = None,
                        rules: str = "", timeout: float | None = None):
        """Register (or update) a tenant.

        ``quota`` overrides ``ServeConfig.tenant_quota`` for this tenant
        (0 = unlimited).  ``rules`` is DDlog source appended to the shared
        program — broadcast to every shard, committed before this returns.
        Returns the merged snapshot including the rule delta, or None when
        no rules were given.
        """
        with self._tenant_lock:
            state = self._tenants.setdefault(
                name, {"quota": self.config.tenant_quota, "pending": 0,
                       "rules": []})
            if quota is not None:
                state["quota"] = quota
            if rules:
                state["rules"].append(rules)
        if rules:
            return self.ingest([AddRules(rules)], wait=True,
                               timeout=timeout, tenant=name)
        return None

    def tenants(self) -> dict[str, dict]:
        """A point-in-time copy of tenant state (quota, pending, rules)."""
        with self._tenant_lock:
            return {name: {"quota": state["quota"],
                           "pending": state["pending"],
                           "rules": list(state["rules"])}
                    for name, state in self._tenants.items()}

    def _admit(self, tenant: str | None, nops: int) -> None:
        if tenant is None:
            return
        with self._tenant_lock:
            state = self._tenants.setdefault(
                tenant, {"quota": self.config.tenant_quota, "pending": 0,
                         "rules": []})
            quota = state["quota"]
            if quota and state["pending"] + nops > quota:
                if obs.enabled():
                    obs.count("serve.shard.quota_rejected")
                raise QuotaExceeded(
                    f"tenant {tenant!r} has {state['pending']} admitted ops "
                    f"pending against a quota of {quota}")
            state["pending"] += nops

    def _release(self, tenant: str | None, nops: int) -> None:
        if tenant is None:
            return
        with self._tenant_lock:
            state = self._tenants.get(tenant)
            if state is not None:
                state["pending"] = max(0, state["pending"] - nops)

    # ----------------------------------------------------------------- ingest
    def ingest(self, ops: Iterable[IngestOp], wait: bool = True,
               timeout: float | None = None,
               tenant: str | None = None) -> MergedSnapshot | _CommitGroup:
        """Route one logical batch across the shards it touches.

        The batch commits atomically *with respect to readers*: its group's
        merged view is published only once every touched shard has
        committed.  With ``wait=True`` blocks for that publication and
        returns the merged snapshot; otherwise returns the commit-group
        handle (``.wait()`` / ``.done``).  ``tenant`` applies that tenant's
        admission quota before any shard queue is touched.
        """
        batch = list(ops)
        self._check_alive()
        self._admit(tenant, len(batch))
        try:
            with self._route_lock:
                routed = route_ops(batch, self.ring)
                pending = {
                    index: self.shards[index].ingest(
                        shard_ops, wait=False, timeout=timeout,
                        coalesce=False)
                    for index, shard_ops in sorted(routed.items())}
                group = _CommitGroup(pending, tenant=tenant,
                                     nops=len(batch))
                self._groups.put(group)
        except BaseException:
            self._release(tenant, len(batch))
            raise
        if obs.enabled():
            obs.count("serve.shard.groups")
            obs.count("serve.shard.fanout", len(pending))
        if wait:
            return group.wait(timeout)
        return group

    def flush(self, timeout: float | None = None) -> MergedSnapshot:
        """Wait until everything routed so far is committed *and published*;
        returns the merged view current at that point."""
        self._check_alive()
        with self._route_lock:
            pending = {index: shard.ingest((), wait=False, timeout=timeout,
                                           coalesce=False)
                       for index, shard in enumerate(self.shards)}
            group = _CommitGroup(pending, publish=False)
            self._groups.put(group)
        group.wait(timeout)
        return self._read_snapshot()

    def checkpoint(self, timeout: float | None = None) -> list:
        """Flush, then checkpoint every shard; per-shard infos in order."""
        self.flush(timeout)
        return [shard.checkpoint(timeout) for shard in self.shards]

    def scan(self, policy: "CompliancePolicy | None" = None,
             timeout: float | None = None) -> "ComplianceManifest":
        """Audit every shard's raw store and merge the manifests.

        Fans a :meth:`KBService.scan` to each shard (each rides its own
        apply loop, so each component is internally consistent) and merges
        the per-shard manifests column-wise — broadcast relations are
        counted once per shard, document-routed relations partition
        naturally.  Like the single-shard scan this reads the *raw* store,
        not the scrubbed published view.
        """
        from repro.compliance.manifest import ComplianceManifest
        self._check_alive()
        merged = ComplianceManifest.merge_all(
            shard.scan(policy, timeout=timeout) for shard in self.shards)
        assert merged is not None                # every shard returns one
        return merged

    # ------------------------------------------------------------------ reads
    def _read_snapshot(self) -> MergedSnapshot:
        """The current published merged view (never blocks on ingest)."""
        current = self._view                     # one atomic reference load
        if obs.enabled():
            obs.count("serve.reads")
        return current

    def snapshot_at(self, lsn_vector: Sequence[int]) -> MergedSnapshot:
        """The retained merged view at exactly ``lsn_vector``.

        Each component resolves against that shard's snapshot history;
        raises :class:`KeyError` if any component has aged out.
        """
        vector = tuple(lsn_vector)
        if len(vector) != len(self.shards):
            raise ValueError(
                f"lsn vector has {len(vector)} components for "
                f"{len(self.shards)} shards")
        return MergedSnapshot([shard.snapshot_at(lsn) for shard, lsn
                               in zip(self.shards, vector)])

    def lsn_vector(self) -> tuple[int, ...]:
        """The published per-shard WAL positions (one component per shard)."""
        return self._read_snapshot().lsn_vector

    def client(self) -> "KBClient":
        """The read/write facade over this router (cached)."""
        if self._facade is None:
            from repro.serve.client import KBClient
            self._facade = KBClient(self)
        return self._facade

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        for shard in self.shards:
            shard.start()

    def stop(self, timeout: float | None = 30.0,
             checkpoint: bool = False) -> None:
        """Drain pending groups, optionally checkpoint, stop every shard."""
        if checkpoint and not self._closed and self._failure is None:
            self.checkpoint(timeout)
        self._closed = True
        self._groups.put(None)                   # sentinel after the drain
        if self._reaper.is_alive():
            self._reaper.join(timeout)
        for shard in self.shards:
            shard.stop(timeout)

    def __enter__(self) -> "ShardedKBService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _check_alive(self) -> None:
        if self._failure is not None:
            raise ServiceFailed(
                f"sharded commit failed: {self._failure}") from self._failure
        if self._closed:
            raise ServiceFailed("service is stopped")

    # ----------------------------------------------------------------- reaper
    def _reap_loop(self) -> None:
        """The sole publisher: waits each group (FIFO = submission order)
        and advances the merged view componentwise, so the view is always
        a *prefix* of the group sequence — never a torn batch."""
        while True:
            group = self._groups.get()
            if group is None:
                return
            committed: dict[int, Snapshot] = {}
            error: BaseException | None = None
            for index, handle in group.pending.items():
                try:
                    result = handle.wait()
                except BaseException as failure:
                    error = failure
                    break
                if isinstance(result, (Snapshot,)):
                    committed[index] = result
            if error is not None:
                # fail-stop: the view never advances past a broken group;
                # recovery is open(), which replays every shard's WAL
                group.error = error
                self._failure = error
                self._release(group.tenant, group.nops)
                group.done.set()
                self._drain_failed(error)
                return
            if group.publish and committed:
                parts = list(self._view.parts)
                for index, snapshot in committed.items():
                    parts[index] = snapshot
                self._view = MergedSnapshot(parts)   # the publish
                if obs.enabled():
                    obs.count("serve.shard.published")
            group.snapshot = self._view
            self._release(group.tenant, group.nops)
            group.done.set()

    def _drain_failed(self, error: BaseException) -> None:
        """Fail every queued group instead of stranding its waiters."""
        while True:
            try:
                group = self._groups.get_nowait()
            except queue.Empty:
                return
            if group is None:
                continue
            group.error = error
            self._release(group.tenant, group.nops)
            group.done.set()
