"""Compliance policy: what the serving layer does about detected PII.

A :class:`CompliancePolicy` is a frozen dataclass selecting a per-relation /
per-column action:

``allow``
    Publish the raw value (the default — compliance is opt-in).
``redact``
    Replace detected spans with ``[REDACTED:<detector>]`` markers.  Hides
    the value *and* the join key — two ads redacted to the same marker can
    no longer be linked.
``anonymize``
    Replace detected spans with keyed deterministic surrogates
    (:class:`repro.compliance.anonymizer.Anonymizer`): the value is hidden
    but joins, dedup, and therefore inference survive bit-identically.
``drop``
    Remove the variable from the published snapshot entirely.

Explicit ``rules`` (``("AdPhone.phone", "anonymize")``; ``*`` wildcards per
segment) apply unconditionally to their columns.  Columns without an
explicit rule fall back to *detection*: when a scan finds PII at or above
``min_confidence``, ``default_action`` applies.  So
``CompliancePolicy(enabled=True, default_action="anonymize")`` is the
"scrub everything that looks like PII" posture, and rules carve out
exceptions in either direction.

Environment fallbacks (:data:`repro.obs.config.COMPLIANCE_ENV_VARS`)
are parsed by
:func:`repro.obs.config.compliance_env_overrides` — the observability module
stays the engine's single environment reader — and applied here once at
:meth:`CompliancePolicy.from_env`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.obs.config import compliance_env_overrides

VALID_ACTIONS = ("allow", "redact", "anonymize", "drop")


class PolicyError(ValueError):
    """Raised for malformed policies or rule patterns."""


def parse_rules(spec: str) -> tuple[tuple[str, str], ...]:
    """Parse ``"AdPhone.phone=anonymize,docs.*=drop"`` into rule pairs."""
    rules: list[tuple[str, str]] = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        pattern, _, action = clause.partition("=")
        pattern, action = pattern.strip(), action.strip()
        if not pattern or not action:
            raise PolicyError(f"malformed compliance rule {clause!r}; "
                              f"want 'relation.column=action'")
        rules.append((pattern, action))
    return tuple(rules)


def _pattern_matches(pattern: str, relation: str, column: str) -> bool:
    """``relation.column`` patterns; ``*`` wildcards either segment, a bare
    relation name covers all its columns."""
    rel_pat, dot, col_pat = pattern.partition(".")
    if not dot:
        col_pat = "*"
    return (rel_pat == "*" or rel_pat == relation) \
        and (col_pat == "*" or col_pat == column)


@dataclass(frozen=True)
class CompliancePolicy:
    """Frozen publish-time scrubbing policy.  See the module docstring.

    ``enabled``
        Master switch: when false the serving layer publishes raw
        snapshots and attaches no manifest (scans still work on demand).
    ``default_action``
        Applied to columns *detected* as PII (confidence ≥
        ``min_confidence``) that no explicit rule covers.
    ``min_confidence``
        Detection threshold for the default action; explicit rules ignore
        it (the operator said so).
    ``key``
        HMAC key for deterministic surrogates.  Keep it stable for the
        lifetime of a served KB — recovery republishes scrubbed snapshots
        by re-applying the policy, and a changed key changes every
        surrogate.
    ``rules``
        ``(pattern, action)`` pairs, first match wins; patterns are
        ``relation.column`` with per-segment ``*`` wildcards.
    ``sample_rows``
        Scanner sampling cap per column (0 = scan everything).
    ``max_examples``
        Masked example values retained per manifest report.
    """

    enabled: bool = False
    default_action: str = "allow"
    min_confidence: float = 0.5
    key: str = "repro-compliance"
    rules: tuple[tuple[str, str], ...] = ()
    sample_rows: int = 0
    max_examples: int = 3

    def __post_init__(self) -> None:
        if self.default_action not in VALID_ACTIONS:
            raise PolicyError(
                f"unknown default action {self.default_action!r}; "
                f"want one of {VALID_ACTIONS}")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise PolicyError("min_confidence must be in [0, 1]")
        if self.sample_rows < 0:
            raise PolicyError("sample_rows cannot be negative (0 = all)")
        if self.max_examples < 0:
            raise PolicyError("max_examples cannot be negative")
        if not self.key:
            raise PolicyError("anonymization key cannot be empty")
        normalized = []
        for pattern, action in self.rules:
            if action not in VALID_ACTIONS:
                raise PolicyError(
                    f"unknown action {action!r} for rule {pattern!r}; "
                    f"want one of {VALID_ACTIONS}")
            normalized.append((str(pattern), str(action)))
        object.__setattr__(self, "rules", tuple(normalized))

    # -------------------------------------------------------------- queries
    def action_for(self, relation: str, column: str) -> str | None:
        """The explicitly ruled action for ``relation.column``, or None when
        no rule matches (detection + ``default_action`` then decide)."""
        for pattern, action in self.rules:
            if _pattern_matches(pattern, relation, column):
                return action
        return None

    @property
    def active(self) -> bool:
        """True when an enabled policy can actually change a snapshot."""
        return self.enabled and (
            self.default_action != "allow"
            or any(action != "allow" for _pattern, action in self.rules))

    # ------------------------------------------------------------ plumbing
    def with_options(self, **changes) -> "CompliancePolicy":
        """A copy with ``changes`` applied (the policy itself is frozen)."""
        return replace(self, **changes)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None,
                 ) -> "CompliancePolicy":
        """Defaults overridden by any valid compliance env vars (see
        ``repro.obs.config.COMPLIANCE_ENV_VARS``, the single
        environment reader).

        Compliance must not fail open: a typo'd value (say an action env
        var set to ``anonimize``) silently falling back to ``allow`` would
        publish raw PII while the operator believes a policy is active.  Every discarded override therefore warns, and
        when the resulting policy would be *enabled* the discard is a hard
        :class:`PolicyError` instead — a misconfigured-but-enabled
        compliance environment refuses to serve rather than serving raw.
        """
        env_invalid: dict = {}
        overrides = compliance_env_overrides(environ, invalid=env_invalid)
        discarded: dict = {}
        raw_rules = overrides.pop("rules", None)
        if raw_rules is not None:
            try:
                overrides["rules"] = parse_rules(raw_rules)
            except PolicyError:
                discarded["rules"] = raw_rules
        try:
            policy = cls(**overrides)
        except PolicyError:
            sane = {}
            for key, value in overrides.items():
                try:
                    cls(**{key: value})
                except PolicyError:
                    discarded[key] = value
                    continue
                sane[key] = value
            policy = cls(**sane)
        if env_invalid or discarded:
            both = {**env_invalid, **discarded}
            detail = ", ".join(f"{key}={value!r}"
                               for key, value in sorted(both.items()))
            if policy.enabled:
                raise PolicyError(
                    f"invalid compliance override(s) [{detail}] while the "
                    f"policy is enabled via the environment; refusing to "
                    f"construct an enabled policy from a partially-invalid "
                    f"environment (fix or unset the variable)")
            if discarded:        # env-layer discards already warned above
                warnings.warn(
                    "discarded invalid compliance override(s): "
                    + ", ".join(f"{key}={value!r}" for key, value
                                in sorted(discarded.items())),
                    RuntimeWarning, stacklevel=2)
        return policy
