"""Fault injection against the warm worker pool.

The warm pool's contract under fire: a worker killed or hung mid-round
makes the *call* fail over to the sequential path (warning, ``None``,
bit-identical results from the fallback) while the *pool* self-heals by
respawning the dead slot on the next dispatch.  Shutdown during a dispatch
unblocks the dispatcher instead of hanging it, and ``close()`` is
idempotent.
"""

import threading
import warnings

import numpy as np
import pytest

from repro.inference import NumaConfig, NumaGibbs
from repro.parallel import WorkerPool, get_pool
from tests.parallel.test_parallel_replicas import chain_graph


def _boom(item):
    raise RuntimeError("kaboom")


def reference_outcome(compiled, sockets=4, seed=3, total_sweeps=25,
                      burn_in=5):
    sampler = NumaGibbs(compiled, NumaConfig(sockets=sockets, sync_every=5),
                        seed=seed)
    return sampler._run_replicas_sequential(total_sweeps, burn_in)


class TestWorkerDeathMidRound:
    def test_kill_returns_none_with_warning_then_pool_recovers(self):
        compiled = chain_graph()
        reference = reference_outcome(compiled)
        with WorkerPool(2) as pool:
            pool.inject_fault(1, at_sync=1, action="exit")
            with pytest.warns(RuntimeWarning, match="falling back"):
                outcome = pool.run_replicas(
                    compiled, sockets=4, seed=3, engine="chromatic",
                    total_sweeps=25, burn_in=5, sync_every=5)
            assert outcome is None
            assert pool.stats["failures"] == 1
            # next dispatch respawns the dead/dirty slots and succeeds
            outcome = pool.run_replicas(
                compiled, sockets=4, seed=3, engine="chromatic",
                total_sweeps=25, burn_in=5, sync_every=5)
            assert outcome is not None
            assert pool.stats["restarts"] >= 1
            assert np.array_equal(outcome.totals, reference.totals)
            assert outcome.socket_samples == reference.socket_samples

    def test_numa_gibbs_results_bit_identical_through_fault(self):
        """Satellite: a mid-round worker death never changes marginals."""
        compiled = chain_graph()
        sequential = NumaGibbs(
            compiled, NumaConfig(sockets=4, sync_every=5, workers=0),
            seed=3).run(num_samples=20, burn_in=5)
        config = NumaConfig(sockets=4, sync_every=5, workers=2,
                            pool_min_work=0)
        pool = get_pool(2)
        pool.inject_fault(0, at_sync=1, action="exit")
        with pytest.warns(RuntimeWarning, match="falling back"):
            faulted = NumaGibbs(compiled, config, seed=3).run(
                num_samples=20, burn_in=5)
        assert np.array_equal(sequential.marginals, faulted.marginals)
        assert faulted.samples_drawn == sequential.samples_drawn
        # and the shared pool keeps serving bit-identically afterwards
        healed = NumaGibbs(compiled, config, seed=3).run(
            num_samples=20, burn_in=5)
        assert np.array_equal(sequential.marginals, healed.marginals)
        assert pool.stats["restarts"] >= 1

    def test_map_worker_death_falls_back(self):
        compiled = chain_graph(n=6)
        with WorkerPool(2) as pool:
            # a run_replicas fault leaves dirty slots; map must heal too
            pool.inject_fault(0, at_sync=1, action="exit")
            with pytest.warns(RuntimeWarning, match="falling back"):
                assert pool.run_replicas(
                    compiled, sockets=2, seed=0, engine="chromatic",
                    total_sweeps=10, burn_in=2, sync_every=2) is None
            assert pool.map(len, ["ab", "cde", "f", "gh"]) == [2, 3, 1, 2]


class TestShutdownWhileDispatching:
    def test_close_unblocks_a_hung_dispatch(self):
        """A hung worker + close() from another thread: None, never a hang."""
        compiled = chain_graph(n=10)
        pool = WorkerPool(2)
        pool.inject_fault(0, at_sync=1, action="hang")
        result = {}

        def dispatch():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                result["outcome"] = pool.run_replicas(
                    compiled, sockets=2, seed=0, engine="chromatic",
                    total_sweeps=50, burn_in=5, sync_every=5,
                    timeout=60.0)
            result["finished"] = True

        thread = threading.Thread(target=dispatch, daemon=True)
        thread.start()
        # let the dispatch reach the hung rendezvous, then pull the plug
        import time
        time.sleep(0.5)
        pool.close()
        thread.join(timeout=20.0)
        assert result.get("finished") is True
        assert result.get("outcome") is None
        assert pool.closed

    def test_dispatch_after_close_returns_none(self):
        compiled = chain_graph(n=6)
        pool = WorkerPool(2)
        pool.close()
        assert pool.run_replicas(compiled, sockets=2, seed=0,
                                 engine="chromatic", total_sweeps=4,
                                 burn_in=1) is None
        assert pool.map(len, ["ab"]) is None


class TestCloseIdempotence:
    def test_double_close(self):
        pool = WorkerPool(2)
        assert pool.warm()
        pool.close()
        pool.close()                             # second close: no-op
        assert pool.closed

    def test_close_without_ever_dispatching(self):
        pool = WorkerPool(3)
        pool.close()
        pool.close()
        assert pool.closed


class TestWorkerExceptionPath:
    def test_bad_engine_warns_and_heals(self):
        compiled = chain_graph(n=8)
        with WorkerPool(2) as pool:
            with pytest.warns(RuntimeWarning, match="falling back"):
                assert pool.run_replicas(
                    compiled, sockets=2, seed=0, engine="no-such-engine",
                    total_sweeps=4, burn_in=1) is None
            outcome = pool.run_replicas(
                compiled, sockets=2, seed=0, engine="chromatic",
                total_sweeps=4, burn_in=1)
            assert outcome is not None

    def test_map_exception_warns_and_falls_back(self):
        with WorkerPool(2) as pool:
            with pytest.warns(RuntimeWarning, match="falling back"):
                assert pool.map(_boom, [1, 2, 3]) is None

    def test_unpicklable_fn_warns_and_falls_back(self):
        """Pipe commands pickle the callable even under fork; a local
        closure must fail over, not raise out of map()."""
        def local_fn(item):
            return item

        with WorkerPool(2) as pool:
            with pytest.warns(RuntimeWarning, match="falling back"):
                assert pool.map(local_fn, [1, 2, 3]) is None

    def test_deadline_warns_and_returns_none(self):
        compiled = chain_graph(n=8)
        with WorkerPool(2) as pool:
            with pytest.warns(RuntimeWarning, match="falling back"):
                assert pool.run_replicas(
                    compiled, sockets=2, seed=0, engine="chromatic",
                    total_sweeps=4, burn_in=1, timeout=1e-6) is None
