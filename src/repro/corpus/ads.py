"""The classified-ads corpus: structured attributes from Craigslist-style text.

Models the Section 6.4 dark-data setting structurally -- short, messy
classified ads with "very little structure, lots of extremely nonstandard
English" -- on neutral rental-listing content.  The aspirational schema is
``(ad_id, price)``, ``(ad_id, location)``, ``(ad_id, phone)``; distractor
numbers (deposits, square footage) and unmarked prices exercise the same
failure modes the paper describes for real ad corpora.  Forum posts that
repeat an ad's phone number support the paper's ad<->forum joining analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.base import GeneratedCorpus, NoiseConfig
from repro.nlp.pipeline import Document

CITIES = ["Fairview", "Riverton", "Lakewood", "Brookside", "Hillcrest",
          "Mapleton", "Ashford", "Greenfield", "Stonebridge", "Westvale"]

AD_TEMPLATES = [
    "Cozy studio in {city} . Rent ${price} per month . Call {phone} .",
    "{city} 2br apt , ${price}/mo , deposit ${deposit} . {phone}",
    "GREAT deal !! {city} room for ${price} monthly , {sqft} sqft . txt {phone}",
    "Apt available {city} area . asking ${price} . no fees . ph {phone}",
    "Sublet in {city} -- ${price} . utilities incl . reach me at {phone}",
]

FORUM_TEMPLATES = [
    "Viewed the {city} place from {phone} , landlord was friendly .",
    "Anyone rented via {phone} ? The {city} listing looks odd .",
    "I called {phone} about the {city} apartment , it was already taken .",
]


#: PII sentence shapes appended to ads when ``AdsConfig.pii`` is on.  The
#: formats deliberately match what real listings print — and what the
#: compliance detectors (:mod:`repro.compliance.detectors`) recognise:
#: dashed and parenthesized 10-digit phones, emails, SSN-shaped strings.
PII_CONTACT_TEMPLATES = [
    "email {email} for pics .",
    "questions ? {email} anytime .",
    "office line {full_phone} , ask for the manager .",
    "landlord direct : {full_phone} .",
]

PII_SSN_TEMPLATES = [
    "application needs ref no {ssn} on file .",
    "they asked for my number {ssn} , is that normal ??",
]


@dataclass(frozen=True)
class AdsConfig:
    """Size and noise parameters for the ads corpus.

    ``pii``
        When true, ads additionally embed realistic PII shapes — contact
        emails, dashed/parenthesized 10-digit phone numbers, and (in a few
        forum posts) SSN-shaped strings — with ground truth recorded under
        ``truth["ad_email"]`` / ``truth["ad_contact_phone"]`` and
        ``metadata["pii_ssns"]``.  Off by default: the classic corpus (and
        every ad's text) is byte-identical to ``pii=False`` generations.
    """

    num_ads: int = 40
    forum_posts_per_ad: float = 0.5
    noise: NoiseConfig = NoiseConfig()
    pii: bool = False


def _phone(rng: np.random.Generator) -> str:
    return f"555-{int(rng.integers(0, 10000)):04d}"


def _full_phone(rng: np.random.Generator) -> str:
    """A 10-digit contact number, dashed or parenthesized."""
    area = int(rng.integers(200, 800))
    last = int(rng.integers(0, 10000))
    if rng.random() < 0.5:
        return f"({area}) 555-{last:04d}"
    return f"{area}-555-{last:04d}"


def _email(rng: np.random.Generator, city: str, i: int) -> str:
    return f"host{i}.{city.lower()}@rentalmail.net"


def _ssn(rng: np.random.Generator) -> str:
    """An SSN-shaped string with a plausible area prefix."""
    return (f"{int(rng.integers(100, 700)):03d}-"
            f"{int(rng.integers(10, 100)):02d}-"
            f"{int(rng.integers(1000, 10000)):04d}")


def generate(config: AdsConfig = AdsConfig(), seed: int = 0) -> GeneratedCorpus:
    """Generate ads + forum posts with per-ad ground truth."""
    rng = np.random.default_rng(seed)
    documents: list[Document] = []
    price_truth: set[tuple] = set()
    location_truth: set[tuple] = set()
    phone_truth: set[tuple] = set()
    known_prices: list[tuple] = []
    known_locations: list[tuple] = []
    ad_phones: list[tuple[str, str, str]] = []   # (ad_id, phone, city)

    email_truth: set[tuple] = set()
    contact_truth: set[tuple] = set()
    known_phones: list[tuple] = []
    known_emails: list[tuple] = []
    pii_ssns: list[tuple[str, str]] = []

    phones_seen: set[str] = set()
    for i in range(config.num_ads):
        ad_id = f"ad{i:04d}"
        city = CITIES[int(rng.integers(0, len(CITIES)))]
        price = int(rng.integers(4, 40)) * 50
        deposit = price + int(rng.integers(1, 5)) * 100
        sqft = int(rng.integers(300, 1500))
        phone = _phone(rng)
        while phone in phones_seen:
            phone = _phone(rng)
        phones_seen.add(phone)
        template = AD_TEMPLATES[int(rng.integers(0, len(AD_TEMPLATES)))]
        text = template.format(city=city, price=price, deposit=deposit,
                               sqft=sqft, phone=phone)
        if config.pii:
            # PII draws happen strictly after the classic draws, so the
            # classic corpus stays byte-identical when pii is off
            email = _email(rng, city, i)
            full_phone = _full_phone(rng)
            pii_template = PII_CONTACT_TEMPLATES[
                int(rng.integers(0, len(PII_CONTACT_TEMPLATES)))]
            text = text + " " + pii_template.format(email=email,
                                                    full_phone=full_phone)
            if "{email}" in pii_template:
                email_truth.add((ad_id, email))
                if rng.random() < config.noise.kb_coverage:
                    known_emails.append((ad_id, email))
            else:
                contact_truth.add((ad_id, full_phone))
                if rng.random() < config.noise.kb_coverage:
                    known_phones.append((ad_id, full_phone))
            # the classic short phone is contact PII too; supervise a sample
            if rng.random() < config.noise.kb_coverage:
                known_phones.append((ad_id, phone))
        documents.append(Document(ad_id, text))
        price_truth.add((ad_id, str(price)))
        location_truth.add((ad_id, city))
        phone_truth.add((ad_id, phone))
        ad_phones.append((ad_id, phone, city))
        # previously hand-annotated ads supervise a subset of the corpus
        if rng.random() < config.noise.kb_coverage:
            known_prices.append((ad_id, str(price)))
        if rng.random() < config.noise.kb_coverage:
            known_locations.append((ad_id, city))

    num_posts = int(config.num_ads * config.forum_posts_per_ad)
    for j in range(num_posts):
        ad_id, phone, city = ad_phones[int(rng.integers(0, len(ad_phones)))]
        template = FORUM_TEMPLATES[int(rng.integers(0, len(FORUM_TEMPLATES)))]
        text = template.format(city=city, phone=phone)
        doc_id = f"forum{j:04d}"
        if config.pii and rng.random() < 0.25:
            ssn = _ssn(rng)
            ssn_template = PII_SSN_TEMPLATES[
                int(rng.integers(0, len(PII_SSN_TEMPLATES)))]
            text = text + " " + ssn_template.format(ssn=ssn)
            pii_ssns.append((doc_id, ssn))
        documents.append(Document(doc_id, text))

    truth = {"ad_price": price_truth, "ad_location": location_truth,
             "ad_phone": phone_truth}
    kb = {"KnownPrice": known_prices, "KnownLocation": known_locations}
    metadata = {"config": config, "cities": CITIES, "ad_phones": ad_phones}
    if config.pii:
        truth["ad_email"] = email_truth
        truth["ad_contact_phone"] = contact_truth
        kb["KnownPhone"] = known_phones
        kb["KnownEmail"] = known_emails
        metadata["pii_ssns"] = pii_ssns
    return GeneratedCorpus(
        documents=documents, truth=truth, kb=kb, metadata=metadata,
    )
