"""E3 -- Section 4.2: DimmWitted CSR engine vs a GraphLab-style engine.

Paper artifact: "In standard benchmarks, DimmWitted was 3.7x faster than
GraphLab's implementation without any application-specific optimization."

We build KBC-shaped factor graphs (mostly unary feature factors plus a layer
of pairwise correlation factors, the paleobiology profile) and compare
sweep throughput of the CSR column-to-row engine against the
vertex-programming engine on identical semantics.  Shape check: the CSR
engine wins by a comfortable factor; we report our measured ratio next to
the paper's 3.7x.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import RESULTS_DIR, once, write_json

from repro import obs
from repro.baselines import VertexProgrammingGibbs
from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.inference import GibbsSampler


def kbc_graph(num_candidates=3000, features_per_candidate=3,
              correlation_fraction=0.2, seed=0) -> FactorGraph:
    """A KBC-shaped graph: unary-heavy with sparse pairwise correlations."""
    rng = np.random.default_rng(seed)
    graph = FactorGraph()
    for i in range(num_candidates):
        v = graph.variable(("cand", i))
        for f in range(features_per_candidate):
            weight = graph.weight(("feat", int(rng.integers(0, 200))),
                                  float(rng.normal(0, 0.5)))
            graph.add_factor(FactorFunction.IS_TRUE, [v], weight)
    num_correlations = int(num_candidates * correlation_fraction)
    for _ in range(num_correlations):
        a = graph.variable(("cand", int(rng.integers(0, num_candidates))))
        b = graph.variable(("cand", int(rng.integers(0, num_candidates))))
        if a == b:
            continue
        weight = graph.weight(("corr", int(rng.integers(0, 20))), 0.5)
        graph.add_factor(FactorFunction.IMPLY, [a, b], weight)
    return graph


def test_e3_csr_sweep(benchmark):
    """Microbenchmark: one CSR-engine sweep."""
    compiled = CompiledGraph(kbc_graph())
    sampler = GibbsSampler(compiled, seed=0)
    world = sampler.initial_assignment()
    benchmark(lambda: sampler.sweep(world))


def test_e3_vertex_sweep(benchmark):
    """Microbenchmark: one vertex-programming sweep."""
    engine = VertexProgrammingGibbs(kbc_graph(), seed=0)
    engine.marginals(num_samples=0, burn_in=1)  # initialize values
    benchmark(engine.sweep)


def test_e3_chromatic_vs_reference_report(benchmark, reporter):
    """Tentpole check: the chromatic vectorized sweep vs the scalar engine.

    Both engines run the exact same chain (same chromatic order, same RNG
    stream), so this isolates the cost of the per-variable Python loop
    against the per-color-block vectorized gathers.
    """
    graph = kbc_graph()
    sweeps = 5
    measurements = {}

    def experiment():
        compiled = CompiledGraph(graph)
        chromatic = GibbsSampler(compiled, seed=0, engine="chromatic")
        world = chromatic.initial_assignment()
        start = time.perf_counter()
        samples_chromatic = sum(chromatic.sweep(world) for _ in range(sweeps))
        chromatic_time = time.perf_counter() - start

        reference = GibbsSampler(compiled, seed=0, engine="reference")
        world_ref = reference.initial_assignment()
        reference.sweep(world_ref)        # build the lazy adjacency untimed
        start = time.perf_counter()
        samples_reference = sum(reference.sweep(world_ref) for _ in range(sweeps))
        reference_time = time.perf_counter() - start
        measurements.update(chromatic_time=chromatic_time,
                            reference_time=reference_time,
                            samples=samples_chromatic,
                            colors=compiled.num_colors)
        assert samples_chromatic == samples_reference

        # traced marginal pass: per-color sweep timings + flip stats
        collector = obs.Collector()
        with obs.installed(collector):
            traced = GibbsSampler(compiled, seed=0, engine="chromatic")
            traced.marginals(num_samples=5, burn_in=2)
        measurements["profile"] = obs.Profile(
            spans=collector.roots, metrics=collector.metrics.snapshot())
        return measurements

    once(benchmark, experiment)

    profile = measurements["profile"]
    RESULTS_DIR.mkdir(exist_ok=True)
    profile.write_jsonl(RESULTS_DIR / "e3_gibbs_sweeps.trace.jsonl")

    chromatic_rate = measurements["samples"] / measurements["chromatic_time"]
    reference_rate = measurements["samples"] / measurements["reference_time"]
    speedup = chromatic_rate / reference_rate

    reporter.line("E3 / Sec 4.2 -- chromatic vectorized sweep vs scalar reference")
    reporter.line(f"conflict-graph colors: {measurements['colors']}")
    reporter.line()
    reporter.table(
        ["engine", "samples/s", "relative"],
        [["chromatic vectorized", f"{chromatic_rate:,.0f}", f"{speedup:.2f}x"],
         ["scalar reference", f"{reference_rate:,.0f}", "1.00x"]])
    reporter.line()
    reporter.line(f"measured speedup: {speedup:.2f}x (acceptance floor: 3x)")
    write_json("BENCH_e3_chromatic_gain", {
        "experiment": "e3_dimmwitted_vs_graphlab",
        "chromatic_samples_per_second": chromatic_rate,
        "reference_samples_per_second": reference_rate,
        "speedup": speedup,
        "floor": 3.0,
    })

    top = profile.top_spans(10)
    reporter.line()
    reporter.line("traced marginal pass -- top spans by inclusive time:")
    reporter.table(["span", "inclusive", "calls"],
                   [[name, f"{secs:.4f}s", calls]
                    for name, secs, calls in top])
    histograms = profile.metrics.get("histograms", {})
    color_rows = [[key, h["count"], f"{h['mean'] * 1e6:.1f}us"]
                  for key, h in sorted(histograms.items())
                  if key.startswith("gibbs.color_sweep_seconds")]
    if color_rows:
        reporter.line()
        reporter.line("per-color sweep cost:")
        reporter.table(["color", "passes", "mean"], color_rows)
    assert profile.find("inference.marginals") is not None
    assert any(key.startswith("gibbs.color_sweep_seconds")
               for key in histograms)

    # Acceptance: the vectorized engine wins by at least 3x on the e3 graph.
    assert speedup > 3.0


def test_e3_speedup_report(benchmark, reporter):
    graph = kbc_graph()
    sweeps = 5
    measurements = {}

    def experiment():
        compiled = CompiledGraph(graph)
        csr = GibbsSampler(compiled, seed=0)
        world = csr.initial_assignment()
        start = time.perf_counter()
        samples_csr = sum(csr.sweep(world) for _ in range(sweeps))
        csr_time = time.perf_counter() - start

        vertex = VertexProgrammingGibbs(graph, seed=0)
        start = time.perf_counter()
        samples_vertex = sum(vertex.sweep() for _ in range(sweeps))
        vertex_time = time.perf_counter() - start
        measurements.update(csr_time=csr_time, vertex_time=vertex_time,
                            samples=samples_csr)
        assert samples_csr == samples_vertex
        return measurements

    once(benchmark, experiment)

    csr_rate = measurements["samples"] / measurements["csr_time"]
    vertex_rate = measurements["samples"] / measurements["vertex_time"]
    speedup = csr_rate / vertex_rate

    reporter.line("E3 / Sec 4.2 -- DimmWitted CSR vs GraphLab-style engine")
    reporter.line("paper: DimmWitted 3.7x faster than GraphLab")
    reporter.line()
    reporter.table(
        ["engine", "samples/s", "relative"],
        [["CSR column-to-row", f"{csr_rate:,.0f}", f"{speedup:.2f}x"],
         ["vertex programming", f"{vertex_rate:,.0f}", "1.00x"]])
    reporter.line()
    reporter.line(f"measured speedup: {speedup:.2f}x (paper: 3.7x)")

    # Shape: the flat-array engine wins by a clear factor.
    assert speedup > 1.5
