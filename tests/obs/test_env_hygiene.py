"""Hygiene: only ``repro/obs/config.py`` may read the environment.

The EngineConfig redesign moved every ``REPRO_*`` env-var read into
``EngineConfig.from_env``; this test (mirrored by a CI grep step) keeps the
rest of the source tree environment-free so configuration stays explicit.
"""

import pathlib

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent
ALLOWED = {SRC_ROOT / "obs" / "config.py"}
FORBIDDEN = ("os.environ", "os.getenv", "getenv(")


def test_only_obs_config_reads_environment():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path in ALLOWED:
            continue
        text = path.read_text(encoding="utf-8")
        for needle in FORBIDDEN:
            if needle in text:
                offenders.append(f"{path.relative_to(SRC_ROOT)}: {needle}")
    assert not offenders, (
        "environment reads outside repro/obs/config.py:\n  "
        + "\n  ".join(offenders))


def test_no_repro_env_var_literals_outside_obs():
    """Env-var names may only appear in the obs package (the config module
    and the package docstring that documents it)."""
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path.is_relative_to(SRC_ROOT / "obs"):
            continue
        if "REPRO_" in path.read_text(encoding="utf-8"):
            offenders.append(str(path.relative_to(SRC_ROOT)))
    assert not offenders, (
        "REPRO_* env-var literals outside repro/obs/: "
        + ", ".join(offenders))
