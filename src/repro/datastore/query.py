"""Relational algebra over :class:`~repro.datastore.relation.Relation`.

Grounding compiles DDlog rule bodies into joins over these operators, so the
operator set mirrors what DeepDive executes as SQL: selection, projection,
renaming, equi-join (hash join), union/difference under bag semantics,
distinct, and group-by aggregation.

All operators return *new* relations and never mutate their inputs.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Sequence

from repro.datastore.relation import Relation, Row
from repro.datastore.schema import Schema, SchemaError

Predicate = Callable[[dict[str, Any]], bool]


def select(relation: Relation, predicate: Predicate, name: str | None = None) -> Relation:
    """Rows of ``relation`` whose dict form satisfies ``predicate``."""
    out = Relation(name or f"select({relation.name})", relation.schema)
    for row, count in relation.counted_rows():
        if predicate(relation.schema.row_dict(row)):
            out.insert(row, count)
    return out


def project(relation: Relation, columns: Sequence[str], name: str | None = None,
            distinct: bool = False) -> Relation:
    """Project ``relation`` onto ``columns`` (bag semantics unless ``distinct``)."""
    schema = relation.schema.project(columns)
    positions = [relation.schema.position(c) for c in columns]
    out = Relation(name or f"project({relation.name})", schema)
    for row, count in relation.counted_rows():
        out.insert(tuple(row[i] for i in positions), 1 if distinct else count)
    if distinct:
        return _dedupe(out)
    return out


def rename(relation: Relation, mapping: dict[str, str], name: str | None = None) -> Relation:
    """Rename columns of ``relation`` per ``mapping``."""
    out = Relation(name or relation.name, relation.schema.rename(mapping))
    for row, count in relation.counted_rows():
        out.insert(row, count)
    return out


def extend(relation: Relation, column: str, column_type: str,
           fn: Callable[[dict[str, Any]], Any], name: str | None = None) -> Relation:
    """Append a computed column ``column`` = ``fn(row_dict)`` to every row."""
    from repro.datastore.types import ColumnType
    from repro.datastore.schema import Column

    new_schema = Schema(relation.schema.columns + (Column(column, ColumnType(column_type)),))
    out = Relation(name or relation.name, new_schema)
    for row, count in relation.counted_rows():
        out.insert(row + (fn(relation.schema.row_dict(row)),), count)
    return out


def join(left: Relation, right: Relation, on: Sequence[tuple[str, str]] | None = None,
         name: str | None = None) -> Relation:
    """Equi-join ``left`` and ``right``.

    ``on`` is a list of ``(left_column, right_column)`` pairs; if ``None``,
    a natural join on shared column names is performed.  The output schema is
    the concatenation of both schemas with right-side join columns dropped
    (natural-join style) and remaining right-side conflicts prefixed ``r_``.

    Implemented as a hash join using the smaller side as the build input.
    """
    if on is None:
        shared = [c for c in left.schema.names if c in right.schema]
        on = [(c, c) for c in shared]
    left_keys = [pair[0] for pair in on]
    right_keys = [pair[1] for pair in on]
    for column in left_keys:
        left.schema.position(column)
    for column in right_keys:
        right.schema.position(column)

    keep_right = [c for c in right.schema.names if c not in right_keys]
    schema = left.schema.concat(right.schema.project(keep_right))
    keep_positions = [right.schema.position(c) for c in keep_right]
    out = Relation(name or f"join({left.name},{right.name})", schema)

    # Build on the smaller relation to keep the hash table small.
    build, probe, build_keys, probe_keys, build_is_left = (
        (left, right, left_keys, right_keys, True)
        if left.distinct_count <= right.distinct_count
        else (right, left, right_keys, left_keys, False)
    )
    build_positions = [build.schema.position(c) for c in build_keys]
    probe_positions = [probe.schema.position(c) for c in probe_keys]
    table: dict[tuple[Any, ...], list[tuple[Row, int]]] = {}
    for row, count in build.counted_rows():
        table.setdefault(tuple(row[i] for i in build_positions), []).append((row, count))
    for probe_row, probe_count in probe.counted_rows():
        matches = table.get(tuple(probe_row[i] for i in probe_positions))
        if not matches:
            continue
        for build_row, build_count in matches:
            left_row, right_row = (build_row, probe_row) if build_is_left else (probe_row, build_row)
            combined = left_row + tuple(right_row[i] for i in keep_positions)
            out.insert(combined, probe_count * build_count)
    return out


def union(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Bag union (counts add); schemas must match positionally by type."""
    _require_compatible(left, right)
    out = left.copy(name or f"union({left.name},{right.name})")
    for row, count in right.counted_rows():
        out.insert(row, count)
    return out


def difference(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Bag difference (counts subtract, floored at zero)."""
    _require_compatible(left, right)
    out = Relation(name or f"diff({left.name},{right.name})", left.schema)
    for row, count in left.counted_rows():
        remaining = count - right.count(row)
        if remaining > 0:
            out.insert(row, remaining)
    return out


def distinct(relation: Relation, name: str | None = None) -> Relation:
    """Set-semantics version of ``relation`` (every count becomes 1)."""
    out = Relation(name or f"distinct({relation.name})", relation.schema)
    for row in relation.distinct_rows():
        out.insert(row)
    return out


def aggregate(relation: Relation, group_by: Sequence[str],
              aggregates: dict[str, tuple[str, str]],
              name: str | None = None) -> Relation:
    """Group-by aggregation.

    ``aggregates`` maps output column name to ``(function, input_column)``
    where function is one of ``count``, ``sum``, ``min``, ``max``, ``avg``.
    For ``count`` the input column is ignored (``'*'`` by convention).
    Output columns are the group-by columns followed by the aggregates.
    """
    from repro.datastore.schema import Column
    from repro.datastore.types import ColumnType

    group_positions = [relation.schema.position(c) for c in group_by]
    agg_specs = []
    out_columns = list(relation.schema.project(group_by).columns)
    for out_name, (fn, input_column) in aggregates.items():
        if fn not in ("count", "sum", "min", "max", "avg"):
            raise SchemaError(f"unknown aggregate function {fn!r}")
        position = None if fn == "count" else relation.schema.position(input_column)
        agg_specs.append((out_name, fn, position))
        if fn == "count":
            ctype = ColumnType.INT
        elif fn == "avg":
            ctype = ColumnType.FLOAT
        else:
            ctype = relation.schema.columns[position].type
        out_columns.append(Column(out_name, ctype))

    groups: dict[tuple[Any, ...], list[tuple[Row, int]]] = {}
    for row, count in relation.counted_rows():
        groups.setdefault(tuple(row[i] for i in group_positions), []).append((row, count))

    out = Relation(name or f"agg({relation.name})", Schema(tuple(out_columns)))
    for key, members in groups.items():
        values: list[Any] = []
        for _, fn, position in agg_specs:
            if fn == "count":
                values.append(sum(count for _, count in members))
                continue
            observed = [row[position] for row, count in members for _ in range(count)
                        if row[position] is not None]
            if not observed:
                values.append(None)
            elif fn == "sum":
                values.append(sum(observed))
            elif fn == "min":
                values.append(min(observed))
            elif fn == "max":
                values.append(max(observed))
            else:  # avg
                values.append(sum(observed) / len(observed))
        out.insert(key + tuple(values))
    return out


def _require_compatible(left: Relation, right: Relation) -> None:
    left_types = tuple(c.type for c in left.schema.columns)
    right_types = tuple(c.type for c in right.schema.columns)
    if left_types != right_types:
        raise SchemaError(
            f"incompatible schemas for set operation: {left.schema.names} vs {right.schema.names}")


def _dedupe(relation: Relation) -> Relation:
    out = Relation(relation.name, relation.schema)
    out._counts = Counter(dict.fromkeys(relation._counts, 1))
    return out
