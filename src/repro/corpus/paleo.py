"""The paleontology corpus: fossil occurrences from the literature.

PaleoDeepDive (paper reference [37], and the Section 4.2 scale anecdote
about "a corpus of 0.3 million papers from the paleobiology literature") is
DeepDive's flagship science deployment: extract ``(taxon, formation)``
occurrence pairs from geology papers, supervised by a PBDB-style occurrence
database.  Distractors co-mention a taxon and a formation without asserting
an occurrence ("X was named before the Y Formation was mapped").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.base import (GeneratedCorpus, NoiseConfig, apply_typo,
                               synthetic_names)
from repro.nlp.pipeline import Document

OCCURRENCE_TEMPLATES = [
    "Fossils of {t} were recovered from the {f} Formation .",
    "{t} specimens occur throughout the {f} Formation .",
    "The {f} Formation yields abundant {t} material .",
    "We report {t} from the upper {f} Formation .",
    "Remains of {t} were collected in the {f} Formation .",
]

DISTRACTOR_TEMPLATES = [
    "{t} was described long before the {f} Formation was mapped .",
    "The {f} Formation overlies strata barren of {t} .",
    "Unlike {t} , the {f} Formation fauna remains unstudied .",
    "The {f} Formation predates the first appearance of {t} .",
]

GENUS_SUFFIXES = ["saurus", "odon", "therium", "ites", "ceras", "ella"]


@dataclass(frozen=True)
class PaleoConfig:
    """Size and noise parameters for the paleontology corpus."""

    num_occurrences: int = 30
    num_distractors: int = 30
    sentences_per_pair: int = 2
    noise: NoiseConfig = NoiseConfig()


def _taxa(count: int, rng: np.random.Generator) -> list[str]:
    stems = synthetic_names(count, rng, length=4)
    return [stem + GENUS_SUFFIXES[int(rng.integers(0, len(GENUS_SUFFIXES)))]
            for stem in stems]


def _formations(count: int, rng: np.random.Generator) -> list[str]:
    return synthetic_names(count, rng, length=6)


def generate(config: PaleoConfig = PaleoConfig(), seed: int = 0) -> GeneratedCorpus:
    """Generate the paleontology corpus, truth, and PBDB-style KB."""
    rng = np.random.default_rng(seed)
    total = config.num_occurrences + config.num_distractors
    taxa = _taxa(total, rng)
    formations = _formations(total, rng)

    occurrences = list(zip(taxa[:config.num_occurrences],
                           formations[:config.num_occurrences]))
    distractors = list(zip(taxa[config.num_occurrences:],
                           formations[config.num_occurrences:]))

    documents: list[Document] = []

    def emit(templates, taxon, formation, tag, index):
        for k in range(config.sentences_per_pair):
            template = templates[int(rng.integers(0, len(templates)))]
            text = template.format(t=taxon, f=formation)
            if rng.random() < config.noise.typo_rate:
                text = apply_typo(text, rng)
            documents.append(Document(f"{tag}{index:04d}_{k}", text))

    for i, (taxon, formation) in enumerate(occurrences):
        emit(OCCURRENCE_TEMPLATES, taxon, formation, "o", i)
    for i, (taxon, formation) in enumerate(distractors):
        emit(DISTRACTOR_TEMPLATES, taxon, formation, "x", i)

    pbdb = [(t, f) for t, f in occurrences
            if rng.random() < config.noise.kb_coverage]
    for t, f in distractors:
        if rng.random() < config.noise.kb_error_rate:
            pbdb.append((t, f))

    return GeneratedCorpus(
        documents=documents,
        truth={"occurrence": set(occurrences)},
        kb={"Pbdb": pbdb},
        metadata={"config": config, "occurrences": occurrences,
                  "distractors": distractors,
                  "taxa": set(taxa), "formations": set(formations)},
    )
