"""E1 -- Figure 2: per-phase runtimes of a full KBC run.

Paper artifact: the TAC-KBP pipeline diagram annotates each phase with its
runtime; feature extraction (candidate generation) and learning & inference
dominate, supervision/grounding overheads are comparatively small.

We run the spouse application (our TAC-KBP stand-in) at a few corpus sizes
and report the same phase breakdown.  Shape checks: learning + inference is
the largest statistical cost and every phase scales with corpus size.
"""

from __future__ import annotations

import time

from conftest import RESULTS_DIR, once, write_json

from repro.apps import spouse
from repro.corpus import spouse as spouse_corpus
from repro.datastore import query as Q
from repro.inference import LearningOptions
from repro.obs import EngineConfig

PHASES = ["candidate_generation", "grounding", "learning", "inference"]


def run_pipeline(num_couples: int, seed: int = 0,
                 config: EngineConfig | None = None):
    corpus = spouse_corpus.generate(
        spouse_corpus.SpouseConfig(num_couples=num_couples,
                                   num_distractor_pairs=num_couples,
                                   num_sibling_pairs=num_couples // 3),
        seed=seed)
    app = spouse.build(corpus, seed=seed, config=config)
    result = app.run(threshold=0.8, holdout_fraction=0.1,
                     learning=LearningOptions(epochs=40, seed=seed),
                     num_samples=150, burn_in=25,
                     compute_train_histogram=False)
    return app, result, corpus


def ground_time(num_couples: int, backend: str, runs: int = 3,
                seed: int = 0) -> float:
    """Best-of-``runs`` grounding (initial load) time on ``backend``."""
    best = float("inf")
    for _ in range(runs):
        corpus = spouse_corpus.generate(
            spouse_corpus.SpouseConfig(num_couples=num_couples,
                                       num_distractor_pairs=num_couples,
                                       num_sibling_pairs=num_couples // 3),
            seed=seed)
        with Q.use_backend(backend):
            app = spouse.build(corpus, seed=seed)
            start = time.perf_counter()
            app.grounder
            best = min(best, time.perf_counter() - start)
    return best


def test_e1_phase_breakdown(benchmark, reporter):
    sizes = [20, 40, 80]
    rows = []
    final = {}
    backends = {}
    traced = {}

    def experiment():
        for size in sizes:
            app, result, corpus = run_pipeline(size)
            timings = result.phase_timings
            quality = spouse.evaluate(app, result, corpus)
            rows.append([size * 2]
                        + [f"{timings.get(p, 0.0):.3f}s" for p in PHASES]
                        + [f"{quality.f1:.3f}"])
            final[size] = timings
        # grounding-phase engine comparison at the largest corpus
        backends["row"] = ground_time(sizes[-1], "row")
        backends["columnar"] = ground_time(sizes[-1], "columnar")
        # one traced run at the largest corpus for the per-operator
        # breakdown and the CI trace artifact
        _, result, _ = run_pipeline(sizes[-1],
                                    config=EngineConfig(trace=True))
        traced["profile"] = result.profile
        return final

    once(benchmark, experiment)

    profile = traced["profile"]
    RESULTS_DIR.mkdir(exist_ok=True)
    profile.write_jsonl(RESULTS_DIR / "e1_phase_runtimes.trace.jsonl")

    reporter.line("E1 / Figure 2 -- per-phase runtimes (spouse app)")
    reporter.line("paper (TAC-KBP): candidate generation & feature extraction is")
    reporter.line("the dominant cost; supervision is cheap; learning & inference")
    reporter.line("is the dominant *statistical* cost")
    reporter.line()
    reporter.table(["docs"] + PHASES + ["F1"], rows)
    reporter.line()
    timings = final[sizes[-1]]
    extraction = timings["candidate_generation"] + timings["grounding"]
    statistical = timings["learning"] + timings["inference"]
    reporter.line(f"extraction (candgen + feature/grounding): {extraction:.3f}s")
    reporter.line(f"learning & inference:                     {statistical:.3f}s")
    row_ms = backends["row"] * 1000
    col_ms = backends["columnar"] * 1000
    speedup = backends["row"] / backends["columnar"]
    reporter.line()
    reporter.line(f"grounding engine at {sizes[-1] * 2} docs: "
                  f"row {row_ms:.1f}ms, columnar {col_ms:.1f}ms "
                  f"({speedup:.2f}x)")
    write_json("BENCH_e1_columnar_gain", {
        "experiment": "e1_phase_runtimes",
        "docs": sizes[-1] * 2,
        "row_grounding_seconds": backends["row"],
        "columnar_grounding_seconds": backends["columnar"],
        "speedup": speedup,
        "floor": 3.0,
    })

    top = profile.top_spans(10)
    reporter.line()
    reporter.line(f"traced run at {sizes[-1] * 2} docs -- "
                  "top spans by inclusive time:")
    reporter.table(["span", "inclusive", "calls"],
                   [[name, f"{secs:.3f}s", calls] for name, secs, calls in top])
    assert top, "traced run recorded no spans"
    assert any(name.startswith("grounding") for name, _, _ in top)

    # Shape: extraction (candidate generation + feature UDFs, which run
    # during grounding) dominates the end-to-end runtime, as in Figure 2.
    assert extraction > statistical
    for phase in PHASES:
        assert timings[phase] > 0.0
    # extraction cost scales with corpus size
    small = final[sizes[0]]
    assert extraction > (small["candidate_generation"] + small["grounding"])
    # the vectorized columnar engine carries the grounding hot path
    assert speedup >= 3.0
