"""E9 -- Sections 1 & 6: application quality across five domains.

Paper artifact: "In a remarkable range of applications, DeepDive has been
able to obtain data with precision that meets or beats that of human
annotators", demonstrated across genomics, pharmacogenomics, materials
science, classified ads, and the spouse/TAC-KBP running example.

We run every example application on its corpus, compare precision against a
simulated human annotator (oracle with a 5% error rate -- the paper's own
observation that manual annotation is "surprisingly error-prone"), and print
the cross-domain quality table.
"""

from __future__ import annotations

from conftest import once

from repro.apps import ads, books, genetics, materials, paleo, pharma, spouse
from repro.corpus import ads as ads_corpus
from repro.corpus import books as books_corpus
from repro.corpus import genetics as genetics_corpus
from repro.corpus import materials as materials_corpus
from repro.corpus import paleo as paleo_corpus
from repro.corpus import pharma as pharma_corpus
from repro.corpus import spouse as spouse_corpus
from repro.inference import LearningOptions

HUMAN_ERROR_RATE = 0.05
RUN_KWARGS = dict(threshold=0.8, holdout_fraction=0.15,
                  learning=LearningOptions(epochs=60, seed=0),
                  num_samples=250, burn_in=40, compute_train_histogram=False)


def human_baseline_precision() -> float:
    """A human annotator's expected precision at a 5% error rate."""
    return 1.0 - HUMAN_ERROR_RATE


def run_all() -> dict[str, object]:
    results: dict[str, object] = {}

    corpus = spouse_corpus.generate(
        spouse_corpus.SpouseConfig(num_couples=30, num_distractor_pairs=30,
                                   num_sibling_pairs=10), seed=31)
    app = spouse.build(corpus, seed=0)
    results["spouse"] = spouse.evaluate(app, app.run(**RUN_KWARGS), corpus)

    corpus = genetics_corpus.generate(seed=31)
    app = genetics.build(corpus, seed=0)
    results["genetics"] = genetics.evaluate(app, app.run(**RUN_KWARGS), corpus)

    corpus = pharma_corpus.generate(seed=31)
    app = pharma.build(corpus, seed=0)
    results["pharma"] = pharma.evaluate(app, app.run(**RUN_KWARGS), corpus)

    corpus = materials_corpus.generate(seed=31)
    app = materials.build(corpus, seed=0)
    results["materials"] = materials.evaluate(app, app.run(**RUN_KWARGS), corpus)

    corpus = paleo_corpus.generate(seed=31)
    app = paleo.build(corpus, seed=0)
    results["paleontology"] = paleo.evaluate(app, app.run(**RUN_KWARGS), corpus)

    corpus = ads_corpus.generate(ads_corpus.AdsConfig(num_ads=40), seed=31)
    app = ads.build(corpus, seed=0)
    ads_result = app.run(**RUN_KWARGS)
    results["ads/price"] = ads.evaluate_price(app, ads_result, corpus)
    results["ads/location"] = ads.evaluate_location(app, ads_result, corpus)
    results["ads/phone (regex)"] = ads.evaluate_phone(corpus)

    corpus = books_corpus.generate(seed=31)
    app = books.build(corpus, seed=0)
    results["books"] = books.evaluate(app, app.run(**RUN_KWARGS), corpus)
    return results


def test_e9_cross_domain_quality(benchmark, reporter):
    results = {}

    def experiment():
        results.update(run_all())
        return results

    once(benchmark, experiment)

    human = human_baseline_precision()
    rows = []
    for name, pr in results.items():
        verdict = "meets human" if pr.precision >= human else "below human"
        rows.append([name, f"{pr.precision:.3f}", f"{pr.recall:.3f}",
                     f"{pr.f1:.3f}", verdict])

    reporter.line("E9 / Secs 1 & 6 -- extraction quality across domains")
    reporter.line("paper: precision meets or beats human annotators; human")
    reporter.line(f"baseline modelled as a {HUMAN_ERROR_RATE:.0%}-error oracle "
                  f"(precision {human:.2f})")
    reporter.line()
    reporter.table(["application", "P", "R", "F1", "vs human"], rows)

    # Shape: every probabilistic application meets the human-precision bar,
    # and overall quality is high across all five domains.
    for name, pr in results.items():
        assert pr.precision >= human - 0.05, name
        assert pr.f1 > 0.75, name
    meets = sum(1 for pr in results.values() if pr.precision >= human)
    assert meets >= len(results) - 1
