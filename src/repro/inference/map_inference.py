"""MAP inference: the single most likely world.

Marginal inference answers "how likely is each tuple"; some consumers (hard
constraint checking, producing one consistent output database) instead want
the jointly most probable assignment.  We use simulated-annealing Gibbs: the
conditional log-odds are scaled by an inverse temperature that rises over
sweeps, sharpening the chain toward a mode, with the best world seen kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.factorgraph.compiled import CompiledGraph
from repro.inference.gibbs import GibbsSampler, _sigmoid_scalar, sigmoid


def world_log_weight(compiled: CompiledGraph, world: np.ndarray) -> float:
    """log of the unnormalized probability of ``world`` (Section 3.3's W)."""
    return float(
        np.dot(compiled.unary_value_sums(world), compiled.weight_values)
        + np.dot(compiled.general_value_sums(world), compiled.weight_values))


@dataclass
class MapResult:
    """The best world found and its score."""

    assignment: np.ndarray
    log_weight: float

    def by_key(self, compiled: CompiledGraph) -> dict:
        return {key: bool(v)
                for key, v in zip(compiled.var_keys, self.assignment)}


class AnnealedGibbs(GibbsSampler):
    """Gibbs sweeps at an inverse temperature (beta >= 1 sharpens)."""

    def sweep_at(self, assignment: np.ndarray, beta: float) -> None:
        compiled = self.compiled
        independent = self._independent
        n_independent = int(independent.sum())
        if n_independent:
            p = sigmoid(self._unary_deltas[independent] * beta)
            assignment[independent] = self.rng.random(n_independent) < p
        if len(self._dependent):
            uniforms = self.rng.random(len(self._dependent))
            unary = self._unary_deltas
            weights = compiled.weight_values
            for i, var in enumerate(self._dependent):
                var = int(var)
                delta = float(unary[var]) + compiled.general_delta(var, assignment)
                assignment[var] = uniforms[i] < _sigmoid_scalar(delta * beta)


def map_inference(compiled: CompiledGraph, sweeps: int = 200,
                  beta_start: float = 0.5, beta_end: float = 8.0,
                  seed: int = 0) -> MapResult:
    """Search for the most probable world by annealed Gibbs sampling.

    Evidence variables stay clamped.  The temperature schedule is geometric
    from ``beta_start`` to ``beta_end``; the highest-scoring world seen over
    the whole run is returned (not merely the final state).
    """
    sampler = AnnealedGibbs(compiled, seed=seed)
    world = sampler.initial_assignment()
    best = world.copy()
    best_score = world_log_weight(compiled, world)
    if sweeps <= 1:
        return MapResult(best, best_score)
    ratio = (beta_end / beta_start) ** (1.0 / (sweeps - 1))
    beta = beta_start
    for _ in range(sweeps):
        sampler.sweep_at(world, beta)
        score = world_log_weight(compiled, world)
        if score > best_score:
            best_score = score
            best = world.copy()
        beta *= ratio
    return MapResult(best, best_score)
