"""repro.parallel: the shared-memory multiprocess execution layer.

Zero-dependency (stdlib ``multiprocessing`` + numpy) parallelism for the
two hot paths the paper attributes DeepDive's runtimes to:

* **NUMA replica sampling** -- :func:`run_replicas_parallel` maps the
  compiled factor graph into one shared-memory segment and runs each
  socket's Gibbs replica chain in a worker process, with model-averaging
  rendezvous barriers and a shared marginal accumulator;
* **corpus loading** -- :func:`parallel_preprocess` fans the per-document
  NLP chain over a crash-safe pool with an order-preserving merge.

Both are dispatched by the ``workers`` knob on
:class:`~repro.obs.config.EngineConfig`; ``workers=0``
keeps the sequential reference paths, which every parallel result is
bit-identical to.  Any worker crash or timeout falls back to those paths
with a warning -- never a hang.
"""

from repro.parallel.corpus import parallel_preprocess
from repro.parallel.pool import (DEFAULT_TIMEOUT, chunk_slices, fanout_map,
                                 resolve_mode)
from repro.parallel.replicas import ReplicaOutcome, run_replicas_parallel
from repro.parallel.shm import (AttachedPack, PackHandle, SharedArrayPack,
                                attach_compiled, share_compiled)

__all__ = [
    "AttachedPack",
    "DEFAULT_TIMEOUT",
    "PackHandle",
    "ReplicaOutcome",
    "SharedArrayPack",
    "attach_compiled",
    "chunk_slices",
    "fanout_map",
    "parallel_preprocess",
    "resolve_mode",
    "run_replicas_parallel",
    "share_compiled",
]
