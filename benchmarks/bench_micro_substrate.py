"""Substrate microbenchmarks: regression guards on the hot paths.

Not paper artifacts -- these keep the building blocks honest so the E1-E13
experiments stay comparable across changes: hash-join throughput, DRed
delta latency, NLP preprocessing rate, DDlog parse time, and SQL execution.
"""

from __future__ import annotations

import numpy as np

from repro.datastore import Database, Join, Project, Relation, Scan, Schema
from repro.datastore import query as Q
from repro.datastore.sql import execute
from repro.ddlog import parse_program
from repro.nlp.pipeline import Document, preprocess_document


def _pair_relation(name: str, n: int, key_space: int, seed: int) -> Relation:
    rng = np.random.default_rng(seed)
    relation = Relation(name, Schema.of(k="int", v="int"))
    for i in range(n):
        relation.insert((int(rng.integers(0, key_space)), i))
    return relation


def test_micro_hash_join(benchmark):
    left = _pair_relation("l", 5000, 500, 0)
    right = _pair_relation("r", 5000, 500, 1)
    out = benchmark(lambda: Q.join(left, right, on=[("k", "k")]))
    assert len(out) > 0


def test_micro_ivm_single_row_delta(benchmark):
    db = Database()
    db.create("R", x="int", y="int")
    db.create("S", y="int", z="int")
    rng = np.random.default_rng(0)
    db.insert("R", [(int(rng.integers(0, 500)), int(rng.integers(0, 200)))
                    for _ in range(4000)])
    db.insert("S", [(int(rng.integers(0, 200)), i) for i in range(2000)])
    db.views.define("V", Project(Join(Scan("R"), Scan("S"), (("y", "y"),)),
                                 ("x", "z")))
    counter = iter(range(10_000_000))

    def one_delta():
        i = next(counter)
        db.views.apply_changes(inserts={"R": [(1000000 + i, i % 200)]})

    benchmark(one_delta)


def test_micro_nlp_pipeline(benchmark):
    doc = Document("d", " ".join(
        f"Sentence number {i} mentions Barack Obama and the BRCA{i % 9} gene ."
        for i in range(40)))
    sentences = benchmark(lambda: preprocess_document(doc))
    assert len(sentences) == 40


def test_micro_ddlog_parse(benchmark):
    source = "\n".join(
        [f"R{i}(a text, b int)." for i in range(30)]
        + [f"Q{i}?(a text)." for i in range(10)]
        + [f"Q{i}(a) :- R{i}(a, n), [n > 3] weight = f(a)." for i in range(10)])
    ast = benchmark(lambda: parse_program(source))
    assert len(ast.rules) == 10


def test_micro_sql_group_by(benchmark):
    db = Database()
    db.create("t", k="text", v="int")
    rng = np.random.default_rng(0)
    db.insert("t", [(f"g{int(rng.integers(0, 40))}", int(rng.integers(0, 100)))
                    for _ in range(4000)])
    result = benchmark(lambda: execute(
        db, "SELECT k, COUNT(*) AS n, AVG(v) AS mean FROM t "
            "GROUP BY k ORDER BY n DESC LIMIT 10"))
    assert len(result) == 10
