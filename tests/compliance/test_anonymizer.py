"""Anonymizer invariants: stability, injectivity backstop, span rewriting."""

import re

import pytest

from repro.compliance.anonymizer import Anonymizer, SurrogateCollision
from repro.compliance.detectors import Detection, PhoneDetector


def test_surrogates_are_stable_within_and_across_instances():
    a, b = Anonymizer("k1"), Anonymizer("k1")
    assert a.surrogate("phone", "555-0187") == a.surrogate("phone", "555-0187")
    assert a.surrogate("phone", "555-0187") == b.surrogate("phone", "555-0187")


def test_surrogates_depend_on_key():
    assert Anonymizer("k1").surrogate("email", "a@b.co") \
        != Anonymizer("k2").surrogate("email", "a@b.co")


def test_surrogates_depend_on_detector_class():
    a = Anonymizer()
    assert a.surrogate("phone", "457-55-5462") \
        != a.surrogate("ssn", "457-55-5462")


def test_surrogate_shapes():
    a = Anonymizer()
    email = a.surrogate("email", "ann@x.io")
    assert email.startswith("anon.") and email.endswith("@redacted.example")
    assert a.surrogate("phone", "555-0187").startswith("555-")
    # 9xx area numbers are never issued; all 8 remaining digits derived
    ssn = a.surrogate("ssn", "457-55-5462")
    assert re.fullmatch(r"9\d{2}-\d{2}-\d{4}", ssn)
    card = a.surrogate("credit_card", "4111111111111111")
    assert card.startswith("9") and len(card) == 16
    location = a.surrogate("location", "Fairview")
    assert location.startswith("Place-")
    assert len(location) == len("Place-") + 16     # 64-bit token
    assert a.surrogate("anything_else", "x").startswith("anon:")


def test_ssn_surrogates_use_the_full_derived_digit_space():
    # the 8 derived digits must all vary — a fixed prefix would shrink the
    # surrogate space and invite birthday collisions (review finding)
    a = Anonymizer()
    surrogates = {a.surrogate("ssn", f"457-55-{i:04d}") for i in range(200)}
    assert len(surrogates) == 200
    digit_tails = {s.replace("-", "")[1:] for s in surrogates}
    assert len(digit_tails) == 200


def test_distinct_raws_get_distinct_surrogates():
    a = Anonymizer()
    values = [f"555-{i:04d}" for i in range(500)]
    surrogates = {a.surrogate("phone", v) for v in values}
    assert len(surrogates) == len(values)


def test_collision_backstop_raises(monkeypatch):
    a = Anonymizer()
    monkeypatch.setattr(a, "_digest",
                        lambda detector, value: b"\x00" * 32)
    a.surrogate("phone", "555-0001")
    with pytest.raises(SurrogateCollision):
        a.surrogate("phone", "555-0002")
    # re-anonymizing the first value is still fine (stable, not colliding)
    assert a.surrogate("phone", "555-0001")


def test_anonymize_text_replaces_spans():
    a = Anonymizer()
    text = "call 555-0187 or (555) 301-0187 ."
    out = a.anonymize_text(text, PhoneDetector().detect(text))
    assert "555-0187" not in out
    assert "(555) 301-0187" not in out
    assert out.startswith("call ") and out.endswith(" .")
    # deterministic: same input, same output
    assert out == a.anonymize_text(text, PhoneDetector().detect(text))


def test_redact_text_uses_class_markers():
    a = Anonymizer()
    text = "call 555-0187 now"
    out = a.redact_text(text, PhoneDetector().detect(text))
    assert out == "call [REDACTED:phone] now"


def test_overlapping_detections_keep_earliest_then_longest():
    a = Anonymizer()
    text = "xx392-555-0187yy"
    detections = [
        Detection("phone", "392-555-0187", 2, 14, 0.9),
        Detection("phone", "555-0187", 6, 14, 0.6),     # same span's tail
    ]
    out = a.anonymize_text(text, detections)
    assert out == "xx" + a.surrogate("phone", "392-555-0187") + "yy"
