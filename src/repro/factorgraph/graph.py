"""The mutable factor graph built during grounding.

Grounding produces variables (one per candidate tuple), weights (one per
feature value, *tied* across all factors grounded from the same feature --
the paper's "weight tying"), and factors (one per rule grounding).  The
structure supports removal, which incremental grounding uses when DRed
reports that a tuple lost all its derivations.

Evidence (from distant supervision) is recorded on variables; the learner
clamps evidence variables, the marginal inference step treats every
non-evidence variable as a query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from repro.factorgraph.factor_functions import FactorFunction, arity_constraint


class GraphError(ValueError):
    """Raised for structurally invalid graph operations."""


@dataclass
class Variable:
    """One Boolean random variable (= one candidate tuple in the database)."""

    var_id: int
    key: Hashable                      # e.g. ("MarriedMentions", mention_pair)
    evidence: bool | None = None       # None = query variable
    initial: bool = False
    factor_ids: set[int] = field(default_factory=set)


@dataclass
class Weight:
    """A (possibly tied) factor weight.

    ``key`` identifies the weight for tying: every factor whose rule+feature
    evaluates to the same key shares this weight.  ``fixed`` weights are not
    trained (used for hard correlation rules).  ``observations`` counts how
    many groundings reference the weight -- the statistic the error-analysis
    document surfaces so engineers can spot under-trained features.
    """

    weight_id: int
    key: Hashable
    value: float = 0.0
    fixed: bool = False
    observations: int = 0


@dataclass
class Factor:
    """One grounded factor: a hyperedge over variables with a tied weight."""

    factor_id: int
    function: FactorFunction
    var_ids: tuple[int, ...]
    negated: tuple[bool, ...]
    weight_id: int


class FactorGraph:
    """Mutable factor graph with stable integer ids and key-based dedup."""

    def __init__(self) -> None:
        self.variables: dict[int, Variable] = {}
        self.factors: dict[int, Factor] = {}
        self.weights: dict[int, Weight] = {}
        self._var_by_key: dict[Hashable, int] = {}
        self._weight_by_key: dict[Hashable, int] = {}
        self._next_var = 0
        self._next_factor = 0
        self._next_weight = 0

    # -------------------------------------------------------------- variables
    def variable(self, key: Hashable, initial: bool = False) -> int:
        """Return the id of the variable with ``key``, creating it if needed."""
        var_id = self._var_by_key.get(key)
        if var_id is None:
            var_id = self._next_var
            self._next_var += 1
            self.variables[var_id] = Variable(var_id, key, initial=initial)
            self._var_by_key[key] = var_id
        return var_id

    def has_variable(self, key: Hashable) -> bool:
        return key in self._var_by_key

    def variable_id(self, key: Hashable) -> int:
        try:
            return self._var_by_key[key]
        except KeyError:
            raise GraphError(f"no variable with key {key!r}") from None

    def set_evidence(self, key: Hashable, value: bool | None) -> None:
        """Mark the variable with ``key`` as evidence (or clear with None)."""
        self.variables[self.variable_id(key)].evidence = value

    def remove_variable(self, key: Hashable) -> None:
        """Remove a variable and every factor attached to it."""
        var_id = self.variable_id(key)
        for factor_id in list(self.variables[var_id].factor_ids):
            self.remove_factor(factor_id)
        del self.variables[var_id]
        del self._var_by_key[key]

    # ---------------------------------------------------------------- weights
    def weight(self, key: Hashable, initial_value: float = 0.0, fixed: bool = False) -> int:
        """Return the id of the (tied) weight with ``key``, creating if needed."""
        weight_id = self._weight_by_key.get(key)
        if weight_id is None:
            weight_id = self._next_weight
            self._next_weight += 1
            self.weights[weight_id] = Weight(weight_id, key, initial_value, fixed)
            self._weight_by_key[key] = weight_id
        return weight_id

    def weight_by_key(self, key: Hashable) -> Weight:
        try:
            return self.weights[self._weight_by_key[key]]
        except KeyError:
            raise GraphError(f"no weight with key {key!r}") from None

    # ---------------------------------------------------------------- factors
    def add_factor(self, function: FactorFunction, var_ids: Sequence[int],
                   weight_id: int, negated: Sequence[bool] | None = None) -> int:
        """Add a factor over ``var_ids`` with ``weight_id``; returns its id."""
        var_ids = tuple(var_ids)
        if negated is None:
            negated = (False,) * len(var_ids)
        negated = tuple(negated)
        if len(negated) != len(var_ids):
            raise GraphError("negated mask length must match variable count")
        lo, hi = arity_constraint(function)
        if len(var_ids) < lo or (hi is not None and len(var_ids) > hi):
            raise GraphError(f"{function.name} factor cannot have arity {len(var_ids)}")
        for var_id in var_ids:
            if var_id not in self.variables:
                raise GraphError(f"unknown variable id {var_id}")
        if weight_id not in self.weights:
            raise GraphError(f"unknown weight id {weight_id}")
        factor_id = self._next_factor
        self._next_factor += 1
        self.factors[factor_id] = Factor(factor_id, function, var_ids, negated, weight_id)
        for var_id in var_ids:
            self.variables[var_id].factor_ids.add(factor_id)
        self.weights[weight_id].observations += 1
        return factor_id

    def remove_factor(self, factor_id: int) -> None:
        factor = self.factors.pop(factor_id)
        for var_id in factor.var_ids:
            variable = self.variables.get(var_id)
            if variable is not None:
                variable.factor_ids.discard(factor_id)
        self.weights[factor.weight_id].observations -= 1

    # ----------------------------------------------------------- restoration
    # Checkpoint recovery must rebuild a graph whose variable/weight/factor
    # ids match the live graph exactly: CompiledGraph orders variables by id,
    # so id drift would reorder the Gibbs sweep and break bit-identical
    # replay, and the grounder's row->factor bookkeeping stores raw ids.
    def restore_variable(self, var_id: int, key: Hashable,
                         evidence: bool | None = None,
                         initial: bool = False) -> int:
        """Insert a variable under an explicit id (checkpoint restore)."""
        if var_id in self.variables:
            raise GraphError(f"variable id {var_id} already present")
        if key in self._var_by_key:
            raise GraphError(f"variable key {key!r} already present")
        self.variables[var_id] = Variable(var_id, key, evidence=evidence,
                                          initial=initial)
        self._var_by_key[key] = var_id
        self._next_var = max(self._next_var, var_id + 1)
        return var_id

    def restore_weight(self, weight_id: int, key: Hashable, value: float = 0.0,
                       fixed: bool = False, observations: int = 0) -> int:
        """Insert a weight under an explicit id (checkpoint restore)."""
        if weight_id in self.weights:
            raise GraphError(f"weight id {weight_id} already present")
        if key in self._weight_by_key:
            raise GraphError(f"weight key {key!r} already present")
        self.weights[weight_id] = Weight(weight_id, key, value, fixed,
                                         observations)
        self._weight_by_key[key] = weight_id
        self._next_weight = max(self._next_weight, weight_id + 1)
        return weight_id

    def restore_factor(self, factor_id: int, function: FactorFunction,
                       var_ids: Sequence[int], weight_id: int,
                       negated: Sequence[bool] | None = None) -> int:
        """Insert a factor under an explicit id (checkpoint restore).

        Unlike :meth:`add_factor` this does **not** bump the weight's
        observation count: restored weights carry their persisted counts.
        """
        if factor_id in self.factors:
            raise GraphError(f"factor id {factor_id} already present")
        var_ids = tuple(var_ids)
        if negated is None:
            negated = (False,) * len(var_ids)
        negated = tuple(negated)
        if len(negated) != len(var_ids):
            raise GraphError("negated mask length must match variable count")
        for var_id in var_ids:
            if var_id not in self.variables:
                raise GraphError(f"unknown variable id {var_id}")
        if weight_id not in self.weights:
            raise GraphError(f"unknown weight id {weight_id}")
        self.factors[factor_id] = Factor(factor_id, function, var_ids,
                                         negated, weight_id)
        for var_id in var_ids:
            self.variables[var_id].factor_ids.add(factor_id)
        self._next_factor = max(self._next_factor, factor_id + 1)
        return factor_id

    def next_ids(self) -> dict[str, int]:
        """The id-allocation counters (persisted so restore + new insertions
        allocate the same ids the live graph would have)."""
        return {"variable": self._next_var, "factor": self._next_factor,
                "weight": self._next_weight}

    def restore_next_ids(self, counters: dict[str, int]) -> None:
        """Fast-forward the id counters to persisted values."""
        self._next_var = max(self._next_var, counters.get("variable", 0))
        self._next_factor = max(self._next_factor, counters.get("factor", 0))
        self._next_weight = max(self._next_weight, counters.get("weight", 0))

    # -------------------------------------------------------------- inspection
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_factors(self) -> int:
        return len(self.factors)

    @property
    def num_weights(self) -> int:
        return len(self.weights)

    def evidence_variables(self) -> Iterable[Variable]:
        return (v for v in self.variables.values() if v.evidence is not None)

    def query_variables(self) -> Iterable[Variable]:
        return (v for v in self.variables.values() if v.evidence is None)

    def stats(self) -> dict[str, int]:
        """Size statistics for execution-history logging."""
        evidence = sum(1 for v in self.variables.values() if v.evidence is not None)
        return {
            "variables": self.num_variables,
            "factors": self.num_factors,
            "weights": self.num_weights,
            "evidence": evidence,
            "query": self.num_variables - evidence,
        }
