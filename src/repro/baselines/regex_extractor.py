"""The deterministic-rules baseline (paper Section 5.3).

"When faced with an extraction task, it is often possible to rapidly obtain
middling data quality by writing a simple regular expression...  This
approach is also a dead end for all but the most trivial extraction targets.
...  the second deterministic rule will indeed address some bugs, but will be
vastly less productive than the first one."

:class:`RuleBasedExtractor` runs an ordered list of regex rules over raw
documents; benchmark E7 adds the rules one at a time and plots the
diminishing F1 returns against the DeepDive app on the same corpus.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.nlp.pipeline import Document


@dataclass(frozen=True)
class RegexRule:
    """One deterministic extraction rule: a pattern over raw document text.

    ``postprocess`` maps a regex match to an output tuple (or ``None`` to
    drop it), mirroring the ad-hoc cleanup code that accretes around regex
    extractors in practice.
    """

    name: str
    pattern: str
    postprocess: Callable[[re.Match], tuple | None] = staticmethod(
        lambda match: tuple(g.lower() for g in match.groups()))

    def matches(self, text: str) -> list[tuple]:
        compiled = re.compile(self.pattern)
        results = []
        for match in compiled.finditer(text):
            row = self.postprocess(match)
            if row is not None:
                results.append(row)
        return results


class RuleBasedExtractor:
    """Apply an ordered rule list to a corpus; the union of matches wins."""

    def __init__(self, rules: Iterable[RegexRule]) -> None:
        self.rules = list(rules)

    def extract(self, documents: Iterable[Document]) -> set[tuple]:
        output: set[tuple] = set()
        for doc in documents:
            for rule in self.rules:
                output.update(rule.matches(doc.content))
        return output

    def extract_per_rule(self, documents: Iterable[Document],
                         ) -> list[tuple[str, set[tuple]]]:
        """Cumulative output after each rule -- the E7 productivity curve."""
        documents = list(documents)
        cumulative: set[tuple] = set()
        curve = []
        for rule in self.rules:
            for doc in documents:
                cumulative.update(rule.matches(doc.content))
            curve.append((rule.name, set(cumulative)))
        return curve


def _sorted_pair(match: re.Match) -> tuple:
    a, b = match.group(1).lower(), match.group(2).lower()
    return (a, b) if a <= b else (b, a)


# The rule sequence a conscientious engineer would write for the spouse
# corpus, in the order they would discover the patterns.  Rule 1 is highly
# productive; each later rule chases a rarer template or a noise case.
SPOUSE_REGEX_RULES = [
    RegexRule("wife_of", r"(\w+) and his wife (\w+)", _sorted_pair),
    RegexRule("married", r"(\w+) married (\w+) in \d{4}", _sorted_pair),
    RegexRule("wed", r"(\w+) wed (\w+) at", _sorted_pair),
    RegexRule("anniversary", r"(\w+) and (\w+) celebrated their wedding",
              _sorted_pair),
    RegexRule("spouse_of", r"(\w+) , the spouse of (\w+) ,", _sorted_pair),
    # Increasingly desperate rules: case-insensitive retries and partial
    # patterns that add little but maintenance burden.
    RegexRule("wife_of_loose", r"(?i)(\w+) and .{0,10} wife (\w+)", _sorted_pair),
    RegexRule("married_loose", r"(?i)(\w+) married (\w+)", _sorted_pair),
    RegexRule("wed_loose", r"(?i)(\w+) wed (\w+)", _sorted_pair),
]
