"""Factor graph data structures: mutable build-time graph and the compiled
DimmWitted-style CSR snapshot used for sampling and learning."""

from repro.factorgraph.compiled import CompiledGraph
from repro.factorgraph.factor_functions import FactorFunction, evaluate
from repro.factorgraph.graph import (Factor, FactorGraph, GraphError, Variable,
                                     Weight)
from repro.factorgraph.serialize import (FORMAT_VERSION, SerializationError,
                                         decode_key, dumps, encode_key,
                                         from_dict, loads, to_dict)

__all__ = [
    "CompiledGraph",
    "FORMAT_VERSION",
    "Factor",
    "FactorFunction",
    "FactorGraph",
    "GraphError",
    "SerializationError",
    "Variable",
    "Weight",
    "decode_key",
    "dumps",
    "encode_key",
    "evaluate",
    "from_dict",
    "loads",
    "to_dict",
]
