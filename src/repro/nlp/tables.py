"""Table extraction: the second dark-data modality.

The paper's opening line counts "text, tables, and images" as dark data.
This module parses HTML tables out of documents into cell records and turns
them into candidate rows the same way sentence extractors do: a
:class:`TableCell` is addressable by (document, table, row, column), carries
its header context, and :func:`cell_candidates` yields
``(row_header, column_header, value)`` triples -- the natural aspirational
schema for the measurement tables of materials-science papers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TABLE = re.compile(r"<table\b[^>]*>(.*?)</table\s*>", re.IGNORECASE | re.DOTALL)
_ROW = re.compile(r"<tr\b[^>]*>(.*?)</tr\s*>", re.IGNORECASE | re.DOTALL)
_CELL = re.compile(r"<(t[dh])\b[^>]*>(.*?)</t[dh]\s*>", re.IGNORECASE | re.DOTALL)
_TAG = re.compile(r"<[^>]+>")


@dataclass(frozen=True)
class TableCell:
    """One cell of one table in one document."""

    doc_id: str
    table_index: int
    row: int
    column: int
    text: str
    is_header: bool

    @property
    def cell_id(self) -> str:
        return f"{self.doc_id}:t{self.table_index}:r{self.row}c{self.column}"


def extract_tables(doc_id: str, html: str) -> list[list[list[TableCell]]]:
    """All tables in ``html`` as nested [table][row][cell] lists."""
    tables = []
    for table_index, table_match in enumerate(_TABLE.finditer(html)):
        rows = []
        for row_index, row_match in enumerate(_ROW.finditer(table_match.group(1))):
            cells = []
            for column, cell_match in enumerate(_CELL.finditer(row_match.group(1))):
                text = _TAG.sub(" ", cell_match.group(2))
                text = " ".join(text.split())
                cells.append(TableCell(
                    doc_id=doc_id, table_index=table_index, row=row_index,
                    column=column, text=text,
                    is_header=cell_match.group(1).lower() == "th"))
            if cells:
                rows.append(cells)
        if rows:
            tables.append(rows)
    return tables


def cell_candidates(doc_id: str, html: str) -> list[tuple[str, str, str, str]]:
    """(cell_id, row_header, column_header, value) for every data cell.

    Header resolution: the first row supplies column headers (or ``th``
    cells anywhere in column position 0 of a row supply row headers); data
    cells are everything else.  Tables without a header row yield nothing --
    high precision is fine here because the probabilistic layer downstream
    does the filtering, exactly as with sentence candidates.
    """
    candidates: list[tuple[str, str, str, str]] = []
    for table in extract_tables(doc_id, html):
        if len(table) < 2:
            continue
        header_row = table[0]
        if not any(cell.is_header for cell in header_row):
            continue
        column_headers = {cell.column: cell.text for cell in header_row}
        for row in table[1:]:
            row_header = row[0].text if row else ""
            for cell in row[1:]:
                column_header = column_headers.get(cell.column, "")
                if cell.text and column_header:
                    candidates.append((cell.cell_id, row_header,
                                       column_header, cell.text))
    return candidates


def table_sentences(doc_id: str, html: str) -> list[str]:
    """Linearize each table row into a pseudo-sentence.

    Lets the ordinary sentence-based feature machinery see tabular context:
    ``"GaAs | electron mobility | 8500"`` reads like a (noisy) sentence and
    the usual window features work on it.
    """
    sentences = []
    for table in extract_tables(doc_id, html):
        for row in table:
            text = " | ".join(cell.text for cell in row if cell.text)
            if text:
                sentences.append(text)
    return sentences
