"""KBClient: one facade over single and sharded backends; deprecation shims."""

import pytest

from repro.serve import (KBClient, KBService, ServeConfig, ShardedKBService,
                         add_documents, add_rows)

from .conftest import GOOD, RUN_KWARGS, bootstrap_ops, make_app_factory


def fast_config(**overrides):
    options = dict(checkpoint_every=0, refresh_samples=40, refresh_burn_in=10)
    options.update(overrides)
    return ServeConfig(**options)


def create_client(tmp_path, **overrides):
    return KBClient.create(tmp_path / "kb", make_app_factory(),
                           bootstrap_ops(), config=fast_config(**overrides),
                           run_kwargs=RUN_KWARGS)


class TestBackendSelection:
    def test_default_is_single_shard(self, tmp_path):
        with create_client(tmp_path) as client:
            assert not client.sharded
            assert isinstance(client.service, KBService)
            assert ShardedKBService.read_manifest(tmp_path / "kb") is None

    def test_config_shards_selects_sharded(self, tmp_path):
        with create_client(tmp_path, shards=2) as client:
            assert client.sharded
            assert isinstance(client.service, ShardedKBService)

    def test_shards_argument_overrides_config(self, tmp_path):
        client = KBClient.create(tmp_path / "kb", make_app_factory(),
                                 bootstrap_ops(), config=fast_config(),
                                 run_kwargs=RUN_KWARGS, shards=2)
        with client:
            assert client.sharded

    def test_open_sniffs_the_layout(self, tmp_path):
        with create_client(tmp_path, shards=2):
            pass
        with KBClient.open(tmp_path / "kb", make_app_factory(),
                           config=fast_config(shards=2),
                           run_kwargs=RUN_KWARGS) as client:
            assert client.sharded
        with create_client(tmp_path / "single"):
            pass
        with KBClient.open(tmp_path / "single" / "kb", make_app_factory(),
                           config=fast_config(),
                           run_kwargs=RUN_KWARGS) as client:
            assert not client.sharded


class TestUniformSurface:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_reads_are_backend_agnostic(self, tmp_path, shards):
        with create_client(tmp_path, shards=shards) as client:
            snapshot = client.snapshot()
            assert len(client.lsn_vector()) == shards
            accepted = client.query("GoodName")
            assert accepted == snapshot.output_tuples("GoodName")
            key = next(iter(snapshot.marginals))
            assert client.marginal(key) == snapshot.marginal(key)
            assert client.top("GoodName", 3) == snapshot.top("GoodName", 3)

    @pytest.mark.parametrize("shards", [1, 2])
    def test_ingest_flush_checkpoint_round_trip(self, tmp_path, shards):
        with create_client(tmp_path, shards=shards) as client:
            client.ingest([add_rows("GoodList", [(GOOD[4],)])])
            handle = client.submit(add_rows("GoodList", [(GOOD[5],)]))
            client.flush()
            assert handle.done
            client.checkpoint()

    @pytest.mark.parametrize("shards", [1, 2])
    def test_snapshot_at_takes_int_or_vector(self, tmp_path, shards):
        with create_client(tmp_path, shards=shards) as client:
            vector = client.lsn_vector()
            assert client.snapshot_at(vector) is not None
            if shards == 1:
                assert client.snapshot_at(vector[0]).lsn == vector[0]
            else:
                with pytest.raises(ValueError):
                    client.snapshot_at(vector[0])

    def test_tenant_requires_sharded_backend(self, tmp_path):
        with create_client(tmp_path) as client:
            with pytest.raises(ValueError):
                client.ingest([add_rows("GoodList", [(GOOD[4],)])],
                              tenant="acme")

    def test_snapshot_history_window_ages_out(self, tmp_path):
        with create_client(tmp_path, snapshot_history=2) as client:
            first = client.lsn_vector()
            for index in range(3):
                client.ingest([add_rows("GoodList",
                                        [(f"tok{index}",)])])
            with pytest.raises(KeyError):
                client.snapshot_at(first)


class TestFacadeRouting:
    def test_client_is_cached_per_service(self, tmp_path):
        with create_client(tmp_path) as client:
            assert client.service.client() is client

    def test_direct_service_reads_warn_but_work(self, tmp_path):
        with create_client(tmp_path) as client:
            service = client.service
            with pytest.warns(DeprecationWarning):
                snapshot = service.snapshot()
            with pytest.warns(DeprecationWarning):
                accepted = service.query("GoodName")
            with pytest.warns(DeprecationWarning):
                key = next(iter(snapshot.marginals))
                service.marginal(key)
            assert accepted == snapshot.output_tuples("GoodName")

    def test_facade_reads_do_not_warn(self, tmp_path, recwarn):
        import warnings
        with create_client(tmp_path) as client:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                client.snapshot()
                client.query("GoodName")

    def test_shims_route_through_the_facade(self, tmp_path):
        """The deprecated accessors return exactly what the client does —
        one code path, two spellings."""
        with create_client(tmp_path) as client:
            service = client.service
            with pytest.warns(DeprecationWarning):
                assert service.snapshot() is client.snapshot()
            with pytest.warns(DeprecationWarning):
                assert service.query("GoodName") == client.query("GoodName")

    def test_shim_warnings_point_at_the_caller(self, tmp_path):
        """The shims warn with ``stacklevel=2``, so the reported origin is
        the *call site* (this file) — the line an operator must fix — not
        the shim's own body in service.py."""
        import warnings

        with create_client(tmp_path) as client:
            service = client.service
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always", DeprecationWarning)
                snapshot = service.snapshot()
                service.query("GoodName")
                service.marginal(next(iter(snapshot.marginals)))
            shim_warnings = [w for w in caught
                             if issubclass(w.category, DeprecationWarning)]
            assert len(shim_warnings) == 3
            for warning in shim_warnings:
                assert warning.filename == __file__
