"""Backend equivalence: the vectorized columnar engine is bag-identical to
the row reference engine on every operator, for arbitrary data.

Randomized relations (mixed column types, NULLs, duplicate rows) are pushed
through each operator on both backends; results must agree as multisets.  A
final class checks the incremental-view-maintenance path: an evaluator built
on the columnar kernels tracks one built on the row engine across arbitrary
change batches.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastore import Database, Join, Project, Relation, Scan, Schema, Select
from repro.datastore import query as Q

# small value domains keep collision (and thus join/dup/NULL coverage) high
ints = st.one_of(st.none(), st.integers(min_value=0, max_value=4))
texts = st.one_of(st.none(), st.sampled_from(["x", "y", "zz"]))
floats = st.one_of(st.none(), st.sampled_from([0.0, 0.5, 1.5, 2.0]))
bools = st.one_of(st.none(), st.booleans())

mixed_rows = st.lists(st.tuples(ints, texts, floats, bools), max_size=25)
int_rows = st.lists(st.tuples(ints, ints), max_size=25)


def mixed_relation(name, rows):
    relation = Relation(
        name, Schema.of(a="int", s="text", f="float", flag="bool"))
    for row in rows:
        relation.insert(row)
    return relation


def int_relation(name, columns, rows):
    relation = Relation(name, Schema.of(**{c: "int" for c in columns}))
    for row in rows:
        relation.insert(row)
    return relation


def bag(relation):
    return Counter(iter(relation))


def both_backends(op):
    """Run ``op(backend)`` on both engines and return the two bags."""
    return bag(op("row")), bag(op("columnar"))


class TestOperatorEquivalence:
    @given(mixed_rows)
    def test_select_predicate(self, rows):
        relation = mixed_relation("r", rows)
        predicate = lambda r: r["a"] is not None and r["a"] >= 2
        row_bag, col_bag = both_backends(
            lambda b: Q.select(relation, predicate, backend=b))
        assert row_bag == col_bag

    @given(mixed_rows,
           st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
           st.sampled_from([("a", 2), ("s", "y"), ("f", 1.5), ("f", 1)]))
    def test_select_condition(self, rows, op, column_constant):
        column, constant = column_constant
        if op not in ("==", "!=") and column == "s":
            op = "=="  # ordered comparisons on text are not a supported mask
        relation = mixed_relation("r", rows)
        condition = (op, ("col", column), ("const", constant))
        ops = {"==": lambda a, b: a == b, "!=": lambda a, b: a != b,
               "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
               ">": lambda a, b: a > b, ">=": lambda a, b: a >= b}

        def predicate(r):
            value = r[column]
            if op == "==":
                return value == constant
            if op == "!=":
                return value != constant
            return value is not None and ops[op](value, constant)

        row_bag, col_bag = both_backends(
            lambda b: Q.select(relation, predicate, condition=condition,
                               backend=b))
        assert row_bag == col_bag

    @given(mixed_rows, st.sampled_from([["a"], ["s", "f"], ["flag", "a"]]),
           st.booleans())
    def test_project(self, rows, columns, distinct):
        relation = mixed_relation("r", rows)
        row_bag, col_bag = both_backends(
            lambda b: Q.project(relation, columns, distinct=distinct,
                                backend=b))
        assert row_bag == col_bag

    @given(int_rows, int_rows)
    def test_join(self, rows_r, rows_s):
        left = int_relation("l", ("x", "y"), rows_r)
        right = int_relation("r", ("y", "z"), rows_s)
        row_bag, col_bag = both_backends(
            lambda b: Q.join(left, right, [("y", "y")], backend=b))
        assert row_bag == col_bag

    @given(mixed_rows, mixed_rows)
    def test_join_mixed_key(self, rows_a, rows_b):
        left = mixed_relation("l", rows_a)
        right = mixed_relation("r", rows_b)
        row_bag, col_bag = both_backends(
            lambda b: Q.join(left, right, [("s", "s"), ("a", "a")],
                             backend=b))
        assert row_bag == col_bag

    @given(mixed_rows, mixed_rows)
    def test_union(self, rows_a, rows_b):
        left = mixed_relation("l", rows_a)
        right = mixed_relation("r", rows_b)
        row_bag, col_bag = both_backends(
            lambda b: Q.union(left, right, backend=b))
        assert row_bag == col_bag

    @given(mixed_rows, mixed_rows)
    def test_difference(self, rows_a, rows_b):
        left = mixed_relation("l", rows_a)
        right = mixed_relation("r", rows_b)
        row_bag, col_bag = both_backends(
            lambda b: Q.difference(left, right, backend=b))
        assert row_bag == col_bag

    @given(mixed_rows)
    def test_aggregate(self, rows):
        relation = mixed_relation("r", rows)
        aggregates = {"n": ("count", "*"), "total": ("sum", "a"),
                      "lo": ("min", "f"), "hi": ("max", "f")}
        row_bag, col_bag = both_backends(
            lambda b: Q.aggregate(relation, ["s"], aggregates, backend=b))
        assert row_bag == col_bag

    @given(int_rows)
    def test_threshold_boundary_agrees(self, rows):
        """Whatever `auto` picks must match both forced backends."""
        relation = int_relation("r", ("x", "y"), rows)
        auto = bag(Q.project(relation, ["x"], backend="auto"))
        assert auto == bag(Q.project(relation, ["x"], backend="row"))
        assert auto == bag(Q.project(relation, ["x"], backend="columnar"))


# -------------------------------------------------------- IVM delta parity
values = st.integers(min_value=0, max_value=4)
ivm_row = st.tuples(values, values)


@st.composite
def ivm_batches(draw):
    initial_r = draw(st.lists(ivm_row, max_size=10))
    initial_s = draw(st.lists(ivm_row, max_size=10))
    num_batches = draw(st.integers(min_value=1, max_value=3))
    batches = []
    live = {"R": Counter(initial_r), "S": Counter(initial_s)}
    for _ in range(num_batches):
        inserts = {"R": draw(st.lists(ivm_row, max_size=4)),
                   "S": draw(st.lists(ivm_row, max_size=4))}
        deletes = {}
        for name in ("R", "S"):
            present = sorted(live[name].elements())
            chosen = draw(st.lists(st.sampled_from(present), max_size=3)) \
                if present else []
            capped, budget = [], Counter(live[name])
            for item in chosen:
                if budget[item] > 0:
                    budget[item] -= 1
                    capped.append(item)
            deletes[name] = capped
            live[name].update(inserts[name])
            live[name].subtract(deletes[name])
        batches.append((inserts, deletes))
    return initial_r, initial_s, batches


PLAN = Select(Project(Join(Scan("R"), Scan("S"), (("y", "y"),)),
                      ("x", "z")),
              lambda r: r["x"] != 3)


def make_db(initial_r, initial_s):
    db = Database()
    db.create("R", x="int", y="int")
    db.create("S", y="int", z="int")
    db.insert("R", initial_r)
    db.insert("S", initial_s)
    return db


class TestIncrementalBackendParity:
    @settings(max_examples=40, deadline=None)
    @given(ivm_batches())
    def test_columnar_evaluator_tracks_row_evaluator(self, scenario):
        """Both engines maintain identical view state across change batches
        (initial load AND every delta application)."""
        from repro.datastore.incremental import IncrementalEvaluator
        from repro.datastore.ivm import SignedDelta

        initial_r, initial_s, batches = scenario
        evaluators = {}
        databases = {}
        for backend in ("row", "columnar"):
            databases[backend] = make_db(initial_r, initial_s)
            with Q.use_backend(backend):
                evaluators[backend] = IncrementalEvaluator(
                    PLAN, databases[backend])
        assert evaluators["row"].current() == evaluators["columnar"].current()

        for inserts, deletes in batches:
            outputs = {}
            for backend in ("row", "columnar"):
                db = databases[backend]
                deltas = {
                    name: SignedDelta.from_changes(
                        db[name].schema, inserts[name], deletes[name])
                    for name in ("R", "S")
                }
                for name in ("R", "S"):
                    for r in inserts[name]:
                        db[name].insert(r)
                    for r in deletes[name]:
                        db[name].delete(r)
                with Q.use_backend(backend):
                    applied = evaluators[backend].apply(deltas)
                outputs[backend] = Counter(dict(applied.items()))
            assert outputs["row"] == outputs["columnar"]
            assert evaluators["row"].current() == \
                evaluators["columnar"].current()
