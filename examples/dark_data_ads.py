"""Classified ads: structure a messy ad corpus (paper Sec 6.4, neutralized).

Demonstrates three extraction regimes side by side on rental-listing ads:

* probabilistic price extraction (distractor numbers make this genuinely
  ambiguous -- deposits, square footage);
* probabilistic location extraction (city gazetteer candidates);
* deterministic regex phone extraction -- the paper's one case where
  deterministic rules win ("phone numbers and email addresses");

then joins forum posts back to ads through shared phone numbers, the
ad<->forum linkage the paper uses for its analyses.

Run:  python examples/dark_data_ads.py
"""

from repro.apps import ads
from repro.corpus import ads as ads_corpus
from repro.inference import LearningOptions


def main():
    corpus = ads_corpus.generate(ads_corpus.AdsConfig(num_ads=20,
                                                      forum_posts_per_ad=0.8),
                                 seed=5)
    num_forum = sum(1 for d in corpus.documents
                    if d.doc_id.startswith("forum"))
    print(f"corpus: {corpus.num_documents - num_forum} ads + "
          f"{num_forum} forum posts")
    print("\nsample ad text:")
    print(f"  {corpus.documents[0].content!r}")

    app = ads.build(corpus, seed=0)
    result = app.run(threshold=0.8, holdout_fraction=0.15,
                     learning=LearningOptions(epochs=60, seed=0),
                     num_samples=250, burn_in=40)

    print("\nstructured ad database (probabilistic price + location, "
          "regex phone):")
    prices = dict(result.output_tuples("AdPrice"))
    locations = dict(result.output_tuples("AdLocation"))
    phones = dict(ads.phone_predictions(corpus))
    for ad_id in sorted(phones)[:10]:
        print(f"  {ad_id}: price=${prices.get(ad_id, '?'):>5} "
              f"location={locations.get(ad_id, '?'):<12} "
              f"phone={phones[ad_id]}")

    print("\nquality:")
    print(f"  price    {ads.evaluate_price(app, result, corpus)}")
    print(f"  location {ads.evaluate_location(app, result, corpus)}")
    print(f"  phone    {ads.evaluate_phone(corpus)}  (deterministic regex)")

    links = sorted(ads.forum_links(corpus))
    print(f"\nforum posts joined to ads via shared phone numbers "
          f"({len(links)} links):")
    for ad_id, forum_id in links[:8]:
        print(f"  {forum_id} -> {ad_id}")


if __name__ == "__main__":
    main()
