"""E13 -- ablations of the design choices DESIGN.md calls out.

Not a single paper table, but the claims behind the design sections:

* **Feature library** (Section 5.3): automatically-proposed template
  features "come for free" and, after regularization pruning, match
  hand-engineered features.
* **Joint inference** (Section 3.1): Markov-logic correlation rules
  ("particularly helpful for data cleaning and data integration") --
  entity-level aggregation factors beat lifting mention decisions.
* **The graphical layer** (Section 3.3): the factor-graph system vs a bare
  per-candidate logistic classifier trained on the same DS labels.
"""

from __future__ import annotations

from conftest import once

from repro.apps import spouse
from repro.baselines import classify_candidates, train_logistic
from repro.core import FeatureLibrary
from repro.core.app import DeepDive
from repro.corpus import spouse as spouse_corpus
from repro.eval import precision_recall
from repro.inference import LearningOptions

RUN_KWARGS = dict(threshold=0.8, holdout_fraction=0.1,
                  learning=LearningOptions(epochs=60, seed=0),
                  num_samples=250, burn_in=40, compute_train_histogram=False)


def corpus_():
    return spouse_corpus.generate(
        spouse_corpus.SpouseConfig(num_couples=30, num_distractor_pairs=30,
                                   num_sibling_pairs=10,
                                   sentences_per_pair=3), seed=71)


def build_with_features(corpus, feature_fn, seed=0):
    app = DeepDive(spouse.PROGRAM, seed=seed)
    app.register_udf("spouse_features", feature_fn)
    known_names = {name.lower() for name, _ in corpus.kb["NameEL"]}
    app.add_extractor("PersonCandidate",
                      spouse.person_extractor_factory(known_names))
    app.add_extractor("SpouseSentence", lambda s: [(s.key, s.text)])
    app.load_documents(corpus.documents)
    name_entities = {}
    for name, entity in corpus.kb["NameEL"]:
        name_entities.setdefault(name.lower(), []).append(entity)
    app.add_rows("EL", [(m, e) for (_, m, t, _)
                        in app.db["PersonCandidate"].distinct_rows()
                        for e in name_entities.get(t, ())])
    app.add_rows("Married", corpus.kb["Married"])
    app.add_rows("Sibling", corpus.kb["Sibling"])
    acquainted = []
    for a, b in corpus.metadata["distractors"][::2]:
        acquainted += [(a, b), (b, a)]
    app.add_rows("Acquainted", acquainted)
    return app


def test_e13a_feature_library(benchmark, reporter):
    corpus = corpus_()
    outcome = {}

    def experiment():
        hand = build_with_features(corpus, spouse.spouse_features)
        hand_result = hand.run(**RUN_KWARGS)
        outcome["hand"] = (spouse.evaluate(hand, hand_result, corpus),
                           len(hand_result.feature_stats))

        library = FeatureLibrary()
        free = build_with_features(corpus,
                                   lambda p1, p2, c: library.udf(p1, p2, c))
        free_result = free.run(**RUN_KWARGS)
        outcome["library"] = (spouse.evaluate(free, free_result, corpus),
                              len(free_result.feature_stats))

        kept = library.prune(free_result.feature_stats, min_weight=0.5)
        pruned = build_with_features(corpus,
                                     lambda p1, p2, c: library.udf(p1, p2, c))
        pruned_result = pruned.run(**RUN_KWARGS)
        outcome["pruned"] = (spouse.evaluate(pruned, pruned_result, corpus),
                             len(pruned_result.feature_stats))
        outcome["kept"] = len(kept)
        return outcome

    once(benchmark, experiment)

    rows = []
    for name in ("hand", "library", "pruned"):
        pr, count = outcome[name]
        rows.append([name, f"{pr.f1:.3f}", f"{pr.precision:.3f}",
                     f"{pr.recall:.3f}", count])
    reporter.line("E13a / Sec 5.3 -- the feature library")
    reporter.line("paper: auto-proposed template features + regularization")
    reporter.line("pruning match hand engineering, 'for free'")
    reporter.line()
    reporter.table(["features", "F1", "P", "R", "weights"], rows)
    reporter.line()
    reporter.line(f"features surviving the prune: {outcome['kept']}")

    hand_f1 = outcome["hand"][0].f1
    assert outcome["library"][0].f1 >= hand_f1 - 0.05
    assert outcome["pruned"][0].f1 >= hand_f1 - 0.05
    assert outcome["pruned"][1] < outcome["library"][1]  # actually pruned


def test_e13b_joint_inference(benchmark, reporter):
    corpus = corpus_()
    outcome = {}

    def experiment():
        app = spouse.build(corpus, seed=0, joint=True)
        result = app.run(**RUN_KWARGS)
        outcome["joint"] = spouse.evaluate_entities(app, result, corpus)
        outcome["lifted"] = spouse.evaluate_entities(app, result, corpus,
                                                     from_mentions=True)
        return outcome

    once(benchmark, experiment)

    reporter.line("E13b / Sec 3.1 -- joint entity aggregation vs lifting")
    reporter.line("paper: correlation rules help cleaning/integration")
    reporter.line()
    reporter.table(
        ["entity-level system", "P", "R", "F1"],
        [["joint (IMPLY aggregation factors)",
          f"{outcome['joint'].precision:.3f}",
          f"{outcome['joint'].recall:.3f}", f"{outcome['joint'].f1:.3f}"],
         ["lifted (any mention >= threshold)",
          f"{outcome['lifted'].precision:.3f}",
          f"{outcome['lifted'].recall:.3f}", f"{outcome['lifted'].f1:.3f}"]])

    assert outcome["joint"].f1 >= outcome["lifted"].f1


def test_e13c_factor_graph_vs_bare_logistic(benchmark, reporter):
    corpus = corpus_()
    outcome = {}

    def experiment():
        app = spouse.build(corpus, seed=0)
        result = app.run(**RUN_KWARGS)
        outcome["deepdive"] = spouse.evaluate(app, result, corpus)

        # the bare classifier: same features, trained ONLY on the labelled
        # candidates, scored on everything
        graph = app.graph
        candidate_features: dict[tuple, list[str]] = {}
        for variable in graph.variables.values():
            features = []
            for fid in variable.factor_ids:
                factor = graph.factors[fid]
                key = str(graph.weights[factor.weight_id].key)
                features.append(key.partition(":")[2])
            candidate_features[variable.key] = features
        examples = [(candidate_features[v.key], v.evidence)
                    for v in graph.variables.values() if v.evidence is not None]
        model = train_logistic(examples, epochs=60, seed=0)
        accepted_keys = classify_candidates(model, candidate_features,
                                            threshold=0.8)
        accepted = {key[1] for key in accepted_keys}
        outcome["logistic"] = precision_recall(
            accepted, spouse.gold_mention_pairs(app, corpus))
        return outcome

    once(benchmark, experiment)

    reporter.line("E13c / Sec 3.3 -- factor-graph system vs bare logistic")
    reporter.line()
    reporter.table(
        ["system", "P", "R", "F1"],
        [["DeepDive (factor graph)",
          f"{outcome['deepdive'].precision:.3f}",
          f"{outcome['deepdive'].recall:.3f}",
          f"{outcome['deepdive'].f1:.3f}"],
         ["bare logistic on DS labels",
          f"{outcome['logistic'].precision:.3f}",
          f"{outcome['logistic'].recall:.3f}",
          f"{outcome['logistic'].f1:.3f}"]])

    # with only unary feature rules the two should be comparable -- the
    # factor graph's extras (calibration, joint rules, incrementality) come
    # at no quality cost
    assert outcome["deepdive"].f1 >= outcome["logistic"].f1 - 0.05
