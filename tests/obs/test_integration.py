"""EngineConfig threading and the RunResult.profile API across the stack."""

import warnings

import pytest

from repro import DeepDive, Document, EngineConfig, obs
from repro.datastore import Database
from repro.datastore import query as Q
from repro.datastore.relation import Relation
from repro.datastore.schema import Schema
from repro.factorgraph import CompiledGraph, FactorFunction, FactorGraph
from repro.inference import GibbsSampler
from repro.inference.numa import NumaConfig

PROGRAM = """
Item(k text).
Label(k text).
Good?(k text).

Good(k) :- Item(k) weight = 1.0.
Good_Ev(k, true) :- Item(k), Label(k).
"""


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def make_app(config=None):
    app = DeepDive(PROGRAM, seed=0, config=config)
    app.add_rows("Item", [("a",), ("b",), ("c",)])
    app.add_rows("Label", [("a",)])
    return app


class TestConfigThreading:
    def test_default_config_comes_from_env_once(self):
        app = make_app()
        assert app.config == EngineConfig.from_env()
        assert app.db.config is app.config

    def test_explicit_config_reaches_every_layer(self):
        config = EngineConfig(datastore_backend="row", gibbs_engine="reference")
        app = make_app(config=config)
        assert app.db.config is config
        assert app.grounder.config is config
        result = app.run(num_samples=10, burn_in=2,
                         compute_train_histogram=False)
        assert result.marginals

    def test_snapshot_propagates_config(self):
        config = EngineConfig(columnar_threshold=3)
        db = Database(config=config)
        db.create("t", a="int")
        assert db.snapshot().config is config

    def test_sampler_engine_from_config(self):
        graph = FactorGraph()
        v = graph.variable(("x", 1))
        graph.add_factor(FactorFunction.IS_TRUE, [v], graph.weight("w", 1.0))
        compiled = CompiledGraph(graph)
        sampler = GibbsSampler(
            compiled, config=EngineConfig(gibbs_engine="reference"))
        assert sampler.engine == "reference"
        # explicit engine argument wins over the config
        sampler = GibbsSampler(
            compiled, engine="chromatic",
            config=EngineConfig(gibbs_engine="reference"))
        assert sampler.engine == "chromatic"

    def test_numa_config_from_engine_config(self):
        config = EngineConfig(numa_sockets=2, gibbs_engine="reference")
        numa = NumaConfig.from_engine_config(config, sync_every=3)
        assert numa.sockets == 2
        assert numa.engine == "reference"
        assert numa.sync_every == 3

    def test_operator_config_beats_process_default(self):
        relation = Relation("t", Schema.of(a="int"))
        for i in range(60):                     # above the default threshold
            relation.insert((i,))
        row_cfg = EngineConfig(datastore_backend="row")
        assert Q._pick(None, relation, config=row_cfg) == "row"
        col_cfg = EngineConfig(datastore_backend="columnar")
        assert Q._pick(None, relation, config=col_cfg) == "columnar"
        auto_small = EngineConfig(columnar_threshold=10)
        assert Q._pick(None, relation, config=auto_small) == "columnar"
        auto_large = EngineConfig(columnar_threshold=1000)
        assert Q._pick(None, relation, config=auto_large) == "row"

    def test_datastore_metrics_recorded(self):
        relation = Relation("t", Schema.of(a="int"))
        for i in range(5):
            relation.insert((i,))
        collector = obs.Collector()
        with obs.installed(collector):
            Q.select(relation, lambda r: r["a"] > 1)
        metrics = collector.metrics
        assert metrics.counter_total("datastore.select") == 1
        assert metrics.histogram("datastore.rows_in", op="select").count == 1


class TestRunResultProfile:
    def test_phase_timings_derived_from_profile(self):
        app = make_app()
        result = app.run(num_samples=10, burn_in=2,
                         compute_train_histogram=False)
        assert set(result.phase_timings) >= {"grounding", "learning",
                                             "inference"}
        assert result.phase_timings == result.profile.phase_seconds()
        for seconds in result.phase_timings.values():
            assert seconds > 0.0

    def test_untraced_profile_has_flat_phases(self):
        app = make_app()
        result = app.run(num_samples=10, burn_in=2,
                         compute_train_histogram=False)
        for span in result.profile.spans:
            assert span.children == []

    def test_traced_profile_has_subtrees_and_metrics(self):
        app = make_app(config=EngineConfig(trace=True))
        result = app.run(num_samples=10, burn_in=2,
                         compute_train_histogram=False)
        assert result.profile.find("grounding.define_views") is not None
        assert result.profile.find("learning.learn_weights") is not None
        assert result.profile.metrics["counters"]

    def test_second_run_replaces_learning_and_inference(self):
        app = make_app()
        app.run(num_samples=10, burn_in=2, compute_train_histogram=False)
        result = app.run(num_samples=10, burn_in=2,
                         compute_train_histogram=False)
        names = [s.name for s in result.profile.spans]
        assert names.count("learning") == 1
        assert names.count("inference") == 1

    def test_candidate_generation_accumulates(self):
        app = make_app()
        app.load_documents([Document("d1", "alpha beta.")])
        app.load_documents([Document("d2", "gamma delta.")])
        result = app.run(num_samples=10, burn_in=2,
                         compute_train_histogram=False)
        names = [s.name for s in result.profile.spans]
        assert names.count("candidate_generation") == 2
        assert result.phase_timings["candidate_generation"] > 0.0

    def test_timings_deprecated(self):
        app = make_app()
        app.run(num_samples=10, burn_in=2, compute_train_histogram=False)
        with pytest.warns(DeprecationWarning, match="_timings"):
            timings = app._timings
        assert "learning" in timings

    def test_summary_still_reports_phases(self):
        app = make_app()
        result = app.run(num_samples=10, burn_in=2,
                         compute_train_histogram=False)
        summary = result.summary()
        assert "learning=" in summary and "inference=" in summary

    def test_no_collector_leaks_from_run(self):
        app = make_app(config=EngineConfig(trace=True))
        app.run(num_samples=10, burn_in=2, compute_train_histogram=False)
        assert obs.active() is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")      # no stray DeprecationWarnings
            app.run(num_samples=10, burn_in=2,
                    compute_train_histogram=False)
