"""Simulated NUMA execution of Gibbs sampling (paper Section 4.2).

The paper's machine has 4 sockets x 10 cores; DimmWitted's insight is the
trade-off between *hardware efficiency* (avoid cross-socket traffic by giving
every socket its own model replica) and *statistical efficiency* (replicas
that never communicate converge slower; model averaging [Zinkevich et al.]
recovers most of it).

We do not have a NUMA machine, so we *simulate the memory system* with an
explicit cost model while running the actual sampling work in-process:

* every factor-graph edge touched during a sweep costs 1 time unit when the
  model state it reads is socket-local;
* it costs ``remote_penalty`` units when the state lives on another socket
  (the measured local:remote latency ratio of the paper's hardware class,
  default 3.5x);
* sockets work in parallel, so wall-clock time per sweep is the max over
  sockets of their per-socket cost;
* a model-averaging synchronization costs one full cross-socket model copy.

Two configurations reproduce the paper's comparison:

* **NUMA-aware** (DimmWitted): per-socket model replicas, all accesses local,
  averaged every ``sync_every`` sweeps.
* **non-NUMA-aware**: one shared model; a socket's accesses are remote with
  probability (sockets-1)/sockets (the model is interleaved across sockets).

Statistical efficiency is *measured*, not modeled: replicas genuinely run
independent chains on variable shards and genuinely average their marginal
estimates, so slower convergence from infrequent averaging shows up in the
returned marginal error exactly as it does on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.factorgraph.compiled import CompiledGraph
from repro.inference.gibbs import ENGINES, GibbsSampler
from repro.obs.config import (DEFAULT_POOL_MIN_WORK, VALID_PARALLEL_MODES,
                              EngineConfig)
from repro.parallel.dispatch import decide_replicas
from repro.parallel.registry import get_pool
from repro.parallel.replicas import ReplicaOutcome, run_replicas_parallel


@dataclass(frozen=True)
class NumaConfig:
    """Topology and cost model of the simulated machine.

    ``engine`` is forwarded to every replica's :class:`GibbsSampler`, so the
    simulated cost model sits atop the real chromatic vectorized sweeps by
    default (``"reference"`` selects the scalar engine for comparisons).

    ``workers`` turns the replica loop into *real* parallelism: with
    ``workers > 0`` (and more than one NUMA-aware socket) each replica
    chain runs in its own worker process against a shared-memory copy of
    the compiled graph (:mod:`repro.parallel`), producing bit-identical
    totals to the sequential loop.  ``workers=0`` keeps the sequential
    reference path.  ``parallel_mode`` and ``parallel_timeout`` tune the
    pool's start method and crash/stall deadline.

    ``pool_warm`` selects the persistent warm pool
    (:class:`~repro.parallel.warm.WorkerPool`, the default) over the
    historical per-call cold pool; ``pool_min_work`` is the adaptive
    dispatcher's threshold -- replica runs whose estimated work falls
    below it stay sequential regardless of ``workers``.
    """

    sockets: int = 4
    cores_per_socket: int = 10
    remote_penalty: float = 3.5
    sync_every: int = 1          # sweeps between model-averaging rounds
    numa_aware: bool = True
    engine: str = "chromatic"
    workers: int = 0
    parallel_mode: str = "auto"
    parallel_timeout: float = 120.0
    pool_warm: bool = True
    pool_min_work: int = DEFAULT_POOL_MIN_WORK
    pool_owner: str | None = None

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError("need at least one socket")
        if self.remote_penalty < 1.0:
            raise ValueError("remote accesses cannot be cheaper than local")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.workers < 0:
            raise ValueError("workers cannot be negative (0 = sequential)")
        if self.parallel_mode not in VALID_PARALLEL_MODES:
            raise ValueError(f"unknown parallel mode {self.parallel_mode!r}")
        if self.parallel_timeout <= 0:
            raise ValueError("parallel_timeout must be positive")
        if self.pool_min_work < 0:
            raise ValueError("pool_min_work cannot be negative "
                             "(0 = always dispatch)")

    @classmethod
    def from_engine_config(cls, config: EngineConfig,
                           **overrides) -> "NumaConfig":
        """Topology seeded from an :class:`EngineConfig` (socket count,
        sweep engine, and worker pool), with cost-model fields overridable
        per call."""
        merged = {"sockets": config.numa_sockets,
                  "engine": config.gibbs_engine,
                  "workers": config.workers,
                  "parallel_mode": config.parallel_mode,
                  "pool_warm": config.pool_warm,
                  "pool_min_work": config.pool_min_work,
                  "pool_owner": config.pool_owner}
        merged.update(overrides)
        return cls(**merged)


@dataclass
class NumaRunResult:
    """Outcome of a simulated run."""

    marginals: np.ndarray                  # averaged across replicas
    modeled_time: float                    # cost-model time units
    samples_drawn: int                     # total variable samples
    per_socket_cost: list[float] = field(default_factory=list)

    @property
    def modeled_throughput(self) -> float:
        """Variable-samples per modeled time unit (higher is better)."""
        return self.samples_drawn / self.modeled_time if self.modeled_time else 0.0


class NumaGibbs:
    """Run marginal inference under the simulated NUMA cost model."""

    def __init__(self, compiled: CompiledGraph, config: NumaConfig, seed: int = 0) -> None:
        self.compiled = compiled
        self.config = config
        self.seed = seed
        # Each edge touched during a sweep is one model access.  Unary factors
        # touch one edge each; general factors touch each member edge.
        edges = compiled.num_unary + len(compiled.fv_vars)
        self._accesses_per_sweep = max(1, edges)

    def _sweep_cost(self) -> float:
        """Modeled wall-clock cost of one parallel sweep over all sockets."""
        config = self.config
        per_socket_accesses = self._accesses_per_sweep / config.sockets
        if config.numa_aware:
            return per_socket_accesses  # all accesses local
        remote_fraction = (config.sockets - 1) / config.sockets
        mean_cost = 1.0 + remote_fraction * (config.remote_penalty - 1.0)
        return per_socket_accesses * mean_cost

    def _sync_cost(self) -> float:
        """Cost of one cross-socket model-averaging round.

        Model averaging (Zinkevich et al.) exchanges the *model* -- the tied
        weight vector -- not per-variable state, so a round costs one remote
        copy of the weights from each non-resident socket.
        """
        if not self.config.numa_aware or self.config.sockets == 1:
            return 0.0
        return self.compiled.num_weights * (self.config.sockets - 1) \
            * self.config.remote_penalty

    def _modeled_run_time(self, total_sweeps: int) -> float:
        """Modeled wall clock of ``total_sweeps`` parallel sweeps plus sync.

        Accumulated in the exact order the historical sequential loop added
        the terms, so the parallel execution path reports bit-identical
        modeled times to the reference path.
        """
        per_socket_sweep = self._sweep_cost()
        sync_cost = self._sync_cost()
        modeled_time = 0.0
        for sweep_index in range(total_sweeps):
            modeled_time += per_socket_sweep
            if (sweep_index + 1) % self.config.sync_every == 0:
                modeled_time += sync_cost
        return modeled_time

    def _run_replicas_sequential(self, total_sweeps: int,
                                 burn_in: int) -> ReplicaOutcome:
        """The in-process replica loop: the bit-identical reference path."""
        config = self.config
        replicas = [GibbsSampler(self.compiled, seed=self.seed + s,
                                 engine=config.engine)
                    for s in range(config.sockets)]
        worlds = [r.initial_assignment() for r in replicas]
        totals = np.zeros(self.compiled.num_variables, dtype=np.float64)
        socket_samples = [0] * config.sockets
        for sweep_index in range(total_sweeps):
            for socket, (replica, world) in enumerate(zip(replicas, worlds)):
                socket_samples[socket] += replica.sweep(world)
            if sweep_index >= burn_in:
                for world in worlds:
                    totals += world
        return ReplicaOutcome(totals=totals, socket_samples=socket_samples)

    def _run_replicas_pool(self, total_sweeps: int,
                           burn_in: int) -> ReplicaOutcome | None:
        """Fan replicas out over the configured pool backend, or ``None``.

        ``pool_warm=True`` routes through the shared persistent
        :class:`~repro.parallel.warm.WorkerPool`; ``False`` keeps the
        historical per-call cold pool.  Either way a ``None`` return sends
        the caller to the bit-identical sequential loop.
        """
        config = self.config
        if config.pool_warm:
            pool = get_pool(config.workers, mode=config.parallel_mode,
                            timeout=config.parallel_timeout,
                            owner=config.pool_owner)
            if pool is None:
                return None
            return pool.run_replicas(
                self.compiled, sockets=config.sockets, seed=self.seed,
                engine=config.engine, total_sweeps=total_sweeps,
                burn_in=burn_in, sync_every=config.sync_every,
                timeout=config.parallel_timeout)
        return run_replicas_parallel(
            self.compiled, sockets=config.sockets, seed=self.seed,
            engine=config.engine, total_sweeps=total_sweeps,
            burn_in=burn_in, sync_every=config.sync_every,
            workers=config.workers, mode=config.parallel_mode,
            timeout=config.parallel_timeout)

    def run(self, num_samples: int = 100, burn_in: int = 20) -> NumaRunResult:
        """Draw marginals with one independent chain per socket.

        NUMA-aware mode runs ``sockets`` replicas and averages their marginal
        estimates every ``sync_every`` sweeps (model averaging); the shared
        mode runs the same total number of sweeps on a single chain, paying
        remote-access costs.  With ``workers > 0`` the replica chains run in
        worker processes over shared memory (bit-identical totals); any
        worker failure falls back to the sequential loop with a warning.
        """
        config = self.config
        total_sweeps = burn_in + num_samples
        per_socket_sweep = self._sweep_cost()
        with obs.span("numa.run", sockets=config.sockets,
                      numa_aware=config.numa_aware, engine=config.engine,
                      sync_every=config.sync_every,
                      workers=config.workers) as sp:
            if config.numa_aware and config.sockets > 1:
                outcome = None
                decision = decide_replicas(
                    self.compiled, sockets=config.sockets,
                    total_sweeps=total_sweeps, workers=config.workers,
                    min_work=config.pool_min_work)
                decision.record()
                if decision.use_pool:
                    outcome = self._run_replicas_pool(total_sweeps, burn_in)
                if outcome is None:
                    outcome = self._run_replicas_sequential(total_sweeps,
                                                            burn_in)
                totals, socket_samples = outcome.totals, outcome.socket_samples
                collected = config.sockets * num_samples
                modeled_time = self._modeled_run_time(total_sweeps)
                marginals = totals / max(collected, 1)
                per_socket_cost = [per_socket_sweep * total_sweeps] * config.sockets
            else:
                sampler = GibbsSampler(self.compiled, seed=self.seed,
                                       engine=config.engine)
                world = sampler.initial_assignment()
                totals = np.zeros(self.compiled.num_variables, dtype=np.float64)
                socket_samples = [0] * config.sockets
                collected = 0
                modeled_time = 0.0
                for sweep_index in range(total_sweeps):
                    socket_samples[0] += sampler.sweep(world)
                    modeled_time += per_socket_sweep
                    if sweep_index >= burn_in:
                        totals += world
                        collected += 1
                marginals = totals / max(collected, 1)
                # One chain did the work; the interleaved-memory model
                # spreads its accesses over the sockets, so report each
                # socket's *share* -- replicating the full chain cost per
                # socket would overstate the shared-model configuration's
                # parallel work by a factor of ``sockets``.
                per_socket_cost = [per_socket_sweep * total_sweeps
                                   / config.sockets] * config.sockets
            samples = sum(socket_samples)
            sp.set(samples=samples, modeled_time=modeled_time)
            if obs.enabled():
                for socket, drawn in enumerate(socket_samples):
                    obs.count("numa.samples", drawn, socket=socket)
        clamped = self.compiled.is_evidence
        marginals[clamped] = self.compiled.evidence_values[clamped]
        return NumaRunResult(marginals=marginals, modeled_time=modeled_time,
                             samples_drawn=samples,
                             per_socket_cost=per_socket_cost)
