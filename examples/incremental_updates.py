"""Incremental KBC: absorb new documents and KB edits without re-grounding.

Paper Section 4.1: after the initial load, every change flows through DRed
delta rules -- new documents, new KB facts, and retractions all patch the
factor graph in time proportional to the change, not the corpus.

This example builds a spouse KB, then streams three kinds of updates and
shows the grounding delta and refreshed output after each:

1. a new document about an unseen couple;
2. a new marriage-KB fact (supervision arrives later than the text);
3. a retraction (the KB fact turns out to be wrong).

Run:  python examples/incremental_updates.py
"""

from repro.apps import spouse
from repro.corpus import spouse as spouse_corpus
from repro.inference import LearningOptions
from repro.nlp.pipeline import Document, preprocess_document, sentence_row

RUN_KWARGS = dict(threshold=0.8, holdout_fraction=0.0,
                  learning=LearningOptions(epochs=40, seed=0),
                  num_samples=200, burn_in=30, compute_train_histogram=False)


def show(tag, app, result, delta=None):
    accepted = len(result.output_tuples("MarriedMentions"))
    stats = app.graph.stats()
    line = (f"[{tag}] variables={stats['variables']} "
            f"factors={stats['factors']} evidence={stats['evidence']} "
            f"accepted={accepted}")
    if delta is not None:
        line += (f"  (delta: +{delta.factors_added}/-{delta.factors_removed} "
                 f"factors, +{delta.variables_added}/-{delta.variables_removed}"
                 f" vars, {delta.evidence_changed} evidence flips)")
    print(line)


def ingest_document(app, corpus, text, doc_id):
    """Push one new document through NLP + extractors into the grounder."""
    known_names = {name.lower() for name, _ in corpus.kb["NameEL"]}
    extractor = spouse.person_extractor_factory(known_names)
    name_entities = {}
    for name, entity in corpus.kb["NameEL"]:
        name_entities.setdefault(name.lower(), []).append(entity)
    inserts = {"sentences": [], "SpouseSentence": [], "PersonCandidate": [],
               "EL": []}
    for sentence in preprocess_document(Document(doc_id, text)):
        inserts["sentences"].append(sentence_row(sentence))
        inserts["SpouseSentence"].append((sentence.key, sentence.text))
        for row in extractor(sentence):
            inserts["PersonCandidate"].append(row)
            for entity in name_entities.get(row[2], ()):
                inserts["EL"].append((row[1], entity))
    return app.grounder.apply_changes(inserts=inserts)


def main():
    corpus = spouse_corpus.generate(
        spouse_corpus.SpouseConfig(num_couples=20, num_distractor_pairs=20,
                                   num_sibling_pairs=6), seed=9)
    app = spouse.build(corpus, seed=0)
    result = app.run(**RUN_KWARGS)
    show("initial load", app, result)

    name_of = corpus.metadata["name_of"]
    couple = corpus.metadata["couples"][0]
    a, b = name_of[couple[0]], name_of[couple[1]]

    # 1. new document about a known couple, phrased in a learned pattern
    delta = ingest_document(app, corpus,
                            f"{a} and his wife {b} toured the museum .",
                            "stream_doc_1")
    result = app.run(**RUN_KWARGS)
    show("new document", app, result, delta)

    # 2. late-arriving KB fact: supervise a so-far-unlabelled couple whose
    # names are unambiguous (shared names would create entity-linking
    # conflicts, which is its own interesting story but not this one)
    covered = {frozenset(pair) for pair in corpus.kb["Married"]}
    name_counts = {}
    for name in name_of.values():
        name_counts[name] = name_counts.get(name, 0) + 1
    late = next(pair for pair in corpus.metadata["couples"]
                if frozenset(pair) not in covered
                and name_counts[name_of[pair[0]]] == 1
                and name_counts[name_of[pair[1]]] == 1)
    delta = app.grounder.apply_changes(inserts={
        "Married": [(late[0], late[1]), (late[1], late[0])]})
    result = app.run(**RUN_KWARGS)
    show("late KB fact", app, result, delta)

    # 3. retraction: that fact is withdrawn; evidence reverts
    delta = app.grounder.apply_changes(deletes={
        "Married": [(late[0], late[1]), (late[1], late[0])]})
    result = app.run(**RUN_KWARGS)
    show("KB retraction", app, result, delta)


if __name__ == "__main__":
    main()
