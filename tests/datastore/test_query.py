"""Unit tests for the relational-algebra operators."""

import pytest

from repro.datastore import Relation, Schema, SchemaError
from repro.datastore import query as Q


@pytest.fixture
def emp():
    relation = Relation("emp", Schema.of(name="text", dept="text", salary="int"))
    relation.insert_many([
        ("alice", "eng", 100),
        ("bob", "eng", 90),
        ("carol", "sales", 80),
        ("dan", "sales", 80),
    ])
    return relation


@pytest.fixture
def dept():
    relation = Relation("dept", Schema.of(dept="text", floor="int"))
    relation.insert_many([("eng", 3), ("sales", 1)])
    return relation


class TestSelectProject:
    def test_select(self, emp):
        out = Q.select(emp, lambda r: r["salary"] > 85)
        assert sorted(out.column("name")) == ["alice", "bob"]

    def test_select_preserves_counts(self, emp):
        emp.insert(("alice", "eng", 100))
        out = Q.select(emp, lambda r: r["name"] == "alice")
        assert len(out) == 2

    def test_project_bag(self, emp):
        out = Q.project(emp, ["dept"])
        assert len(out) == 4
        assert out.count(("eng",)) == 2

    def test_project_distinct(self, emp):
        out = Q.project(emp, ["dept"], distinct=True)
        assert len(out) == 2

    def test_project_reorders(self, emp):
        out = Q.project(emp, ["salary", "name"])
        assert out.schema.names == ("salary", "name")

    def test_rename(self, emp):
        out = Q.rename(emp, {"name": "employee"})
        assert "employee" in out.schema

    def test_extend(self, emp):
        out = Q.extend(emp, "double_salary", "int", lambda r: r["salary"] * 2)
        assert ("alice", "eng", 100, 200) in out


class TestJoin:
    def test_natural_join(self, emp, dept):
        out = Q.join(emp, dept)
        assert out.schema.names == ("name", "dept", "salary", "floor")
        assert ("alice", "eng", 100, 3) in out
        assert len(out) == 4

    def test_explicit_on(self, emp, dept):
        renamed = Q.rename(dept, {"dept": "department"})
        out = Q.join(emp, renamed, on=[("dept", "department")])
        assert ("carol", "sales", 80, 1) in out

    def test_join_multiplicities_multiply(self, emp, dept):
        dept.insert(("eng", 3))  # count 2 now
        out = Q.join(emp, dept)
        assert out.count(("alice", "eng", 100, 3)) == 2

    def test_join_empty_result(self, emp):
        other = Relation("other", Schema.of(dept="text", x="int"))
        out = Q.join(emp, other)
        assert len(out) == 0

    def test_join_missing_column_raises(self, emp, dept):
        with pytest.raises(SchemaError):
            Q.join(emp, dept, on=[("nope", "dept")])

    def test_self_join_conflict_prefix(self, emp):
        out = Q.join(emp, emp, on=[("dept", "dept")])
        assert "r_name" in out.schema
        # eng has 2 employees -> 4 pairs; sales likewise.
        assert len(out) == 8


class TestSetOps:
    def test_union_adds_counts(self, emp):
        out = Q.union(emp, emp)
        assert out.count(("bob", "eng", 90)) == 2

    def test_union_schema_mismatch(self, emp, dept):
        with pytest.raises(SchemaError):
            Q.union(emp, dept)

    def test_difference(self, emp):
        minus = Relation("minus", emp.schema)
        minus.insert(("bob", "eng", 90))
        out = Q.difference(emp, minus)
        assert ("bob", "eng", 90) not in out
        assert len(out) == 3

    def test_difference_floors_at_zero(self, emp):
        minus = Relation("minus", emp.schema)
        minus.insert(("bob", "eng", 90), count=5)
        out = Q.difference(emp, minus)
        assert out.count(("bob", "eng", 90)) == 0

    def test_distinct(self, emp):
        emp.insert(("alice", "eng", 100))
        out = Q.distinct(emp)
        assert out.count(("alice", "eng", 100)) == 1


class TestAggregate:
    def test_count(self, emp):
        out = Q.aggregate(emp, ["dept"], {"n": ("count", "*")})
        assert ("eng", 2) in out
        assert ("sales", 2) in out

    def test_sum_avg_min_max(self, emp):
        out = Q.aggregate(emp, ["dept"], {
            "total": ("sum", "salary"),
            "mean": ("avg", "salary"),
            "lo": ("min", "salary"),
            "hi": ("max", "salary"),
        })
        assert ("eng", 190, 95.0, 90, 100) in out

    def test_global_aggregate(self, emp):
        out = Q.aggregate(emp, [], {"n": ("count", "*")})
        assert list(out) == [(4,)]

    def test_unknown_function_raises(self, emp):
        with pytest.raises(SchemaError):
            Q.aggregate(emp, ["dept"], {"x": ("median", "salary")})

    def test_aggregate_skips_nulls(self):
        relation = Relation("r", Schema.of(k="text", v="int"))
        relation.insert(("a", 1))
        relation.insert(("a", None))
        out = Q.aggregate(relation, ["k"], {"total": ("sum", "v")})
        assert ("a", 1) in out
