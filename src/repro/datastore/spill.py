"""Grace-hash spill-to-disk execution for the columnar operators.

The columnar kernels in :mod:`repro.datastore.columnar` materialize their
whole input -- and, for joins, an output that can be quadratically larger --
as in-memory numpy arrays.  Past the configured memory budget
(``EngineConfig.memory_budget``) that is exactly the working set we must
not hold, so the join/aggregate/distinct dispatchers in
:mod:`repro.datastore.query` reroute here.

The strategy is classic grace hash: hash every row's key codes (join keys,
group-by keys, or all columns for distinct), partition both the code matrix
and the count vector into ``P`` temp files on disk, then run the ordinary
in-memory kernel one partition at a time and merge the per-partition counts.
``P`` is sized so one partition's input fits comfortably inside the budget.

Bit-identity with the in-memory path is structural, not approximate:

* partitioning selects rows with a boolean mask, which preserves their
  relative order, and every row of a given key lands in exactly one
  partition (the partition is a pure function of the key codes);
* therefore each kernel sees, per key, the same rows in the same order as
  the global kernel would -- float accumulations (``sum``/``avg`` weighted
  by multiplicities) run in the identical sequence and produce identical
  bits, while join/distinct are integer-exact regardless;
* results merge through ``row -> count`` dictionaries, which is how the
  in-memory path materializes a :class:`Relation` anyway.

The property suite ``tests/property/test_spill_operators.py`` asserts this
equivalence across random inputs and budgets, including budget ``0``
(spill everything).
"""

from __future__ import annotations

import pathlib
import tempfile
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.datastore.relation import Relation, Row

#: Partition-count clamp: at least 2 (otherwise spilling is a no-op copy),
#: at most 64 (file-handle and bookkeeping sanity; 64 partitions already
#: divide any realistic input well below budget).
MIN_PARTITIONS = 2
MAX_PARTITIONS = 64

#: Partition count used when the budget is 0 ("always spill"): the divisor
#: is arbitrary since any nonzero input exceeds a zero budget.
ZERO_BUDGET_PARTITIONS = 8

_FNV_OFFSET = np.uint64(1469598103934665603)
_FNV_PRIME = np.uint64(1099511628211)


def store_nbytes(store) -> int:
    """Resident bytes of one :class:`ColumnStore`'s row data (codes+counts)."""
    return int(store.codes.nbytes + store.counts.nbytes)


def should_spill(budget: int | None, *stores) -> bool:
    """Whether ``stores`` exceed ``budget`` (``None`` never spills, ``0``
    always spills nonempty inputs)."""
    if budget is None:
        return False
    total = sum(store_nbytes(s) for s in stores)
    if total == 0:
        return False
    return total > budget


def partition_count(budget: int, total_bytes: int) -> int:
    """Partitions needed so one partition's input is ~half the budget."""
    if budget <= 0:
        return ZERO_BUDGET_PARTITIONS
    wanted = -(-2 * total_bytes // budget)        # ceil(2*total/budget)
    return max(MIN_PARTITIONS, min(MAX_PARTITIONS, int(wanted)))


def partition_ids(key_codes: np.ndarray, n_partitions: int) -> np.ndarray:
    """FNV-style hash of each column of an ``(k, n)`` key-code matrix.

    The hash is a pure function of the key codes, so equal keys always map
    to the same partition -- the invariant the whole merge correctness
    argument rests on.  uint64 arithmetic wraps silently in numpy, which is
    exactly the FNV mixing we want.
    """
    n = key_codes.shape[1]
    mixed = np.full(n, _FNV_OFFSET, dtype=np.uint64)
    for row in key_codes:
        mixed = (mixed ^ row.astype(np.uint64)) * _FNV_PRIME
    return (mixed % np.uint64(n_partitions)).astype(np.int64)


# ------------------------------------------------------------ partition I/O
def _write_partitions(tmpdir: pathlib.Path, tag: str, store,
                      key_positions: Sequence[int], n_partitions: int,
                      ) -> tuple[list[tuple[pathlib.Path, pathlib.Path] | None], int]:
    """Spill ``store`` into per-partition ``.npy`` pairs; return paths+bytes.

    Empty partitions get ``None`` instead of files.  Only codes and counts
    hit the disk -- the interning pool is the shared in-process dictionary
    and stays where it is.
    """
    key_codes = store.codes[np.asarray(key_positions, dtype=np.intp)]
    pids = partition_ids(key_codes, n_partitions)
    paths: list[tuple[pathlib.Path, pathlib.Path] | None] = []
    spilled = 0
    for p in range(n_partitions):
        mask = pids == p
        if not mask.any():
            paths.append(None)
            continue
        codes_path = tmpdir / f"{tag}-{p}.codes.npy"
        counts_path = tmpdir / f"{tag}-{p}.counts.npy"
        part_codes = store.codes[:, mask]
        part_counts = store.counts[mask]
        np.save(codes_path, part_codes)
        np.save(counts_path, part_counts)
        spilled += part_codes.nbytes + part_counts.nbytes
        paths.append((codes_path, counts_path))
    return paths, spilled


def _load_partition(paths: tuple[pathlib.Path, pathlib.Path], schema, pool):
    """Reopen one spilled partition as a :class:`ColumnStore` (mmap'd)."""
    from repro.datastore import columnar as C
    codes = np.load(paths[0], mmap_mode="r", allow_pickle=False)
    counts = np.load(paths[1], mmap_mode="r", allow_pickle=False)
    return C.ColumnStore(schema, codes, counts, pool)


def _note_spill(op: str, spilled_bytes: int, resident_bytes: int,
                n_partitions: int) -> None:
    if obs.enabled():
        obs.count(f"datastore.{op}", engine="columnar-spill")
        obs.gauge("datastore.spill.bytes", spilled_bytes, op=op)
        obs.gauge("datastore.spill.resident_bytes", resident_bytes, op=op)
        obs.observe("datastore.spill.partitions", n_partitions, op=op)


# -------------------------------------------------------------- operators
def spill_join(left, right, on: Sequence[tuple[str, str]], budget: int,
               name: str) -> Relation:
    """Grace-hash join of two column stores under ``budget`` bytes.

    Both sides are partitioned by the hash of their join-key codes (the
    shared pool guarantees equal values encode to equal codes on both
    sides), then the in-memory columnar join runs per partition pair.
    """
    from repro.datastore import columnar as C
    total = store_nbytes(left) + store_nbytes(right)
    n_partitions = partition_count(budget, total)
    left_positions = [left.schema.position(pair[0]) for pair in on]
    right_positions = [right.schema.position(pair[1]) for pair in on]
    counts: dict[Row, int] = {}
    schema = None
    with tempfile.TemporaryDirectory(prefix="repro-spill-") as raw:
        tmpdir = pathlib.Path(raw)
        left_parts, left_bytes = _write_partitions(
            tmpdir, "left", left, left_positions, n_partitions)
        right_parts, right_bytes = _write_partitions(
            tmpdir, "right", right, right_positions, n_partitions)
        _note_spill("join", left_bytes + right_bytes, total, n_partitions)
        for left_paths, right_paths in zip(left_parts, right_parts):
            if left_paths is None or right_paths is None:
                continue
            part = C.join(_load_partition(left_paths, left.schema, left.pool),
                          _load_partition(right_paths, right.schema, right.pool),
                          on)
            schema = part.schema
            for row, count in part.to_counts().items():
                counts[row] = counts.get(row, 0) + count
    if schema is None:
        # no partition pair had rows on both sides: empty join, but the
        # output schema must still match the in-memory path's
        keep = [c for c in right.schema.names
                if c not in {pair[1] for pair in on}]
        schema = left.schema.concat(right.schema.project(keep))
    return Relation.from_counts(name, schema, counts, validate=False)


def spill_aggregate(store, group_by: Sequence[str],
                    aggregates: dict[str, tuple[str, str]], schema,
                    budget: int, name: str) -> Relation:
    """Grace-hash group-by aggregation under ``budget`` bytes.

    Partitioning by the group-key codes puts every row of a group in one
    partition, in input order -- so each group's accumulator sees the exact
    float-addition sequence of the in-memory kernel, and the per-partition
    outputs are disjoint group sets that merge by simple union.
    """
    from repro.datastore import columnar as C
    total = store_nbytes(store)
    n_partitions = partition_count(budget, total)
    group_positions = [store.schema.position(c) for c in group_by]
    counts: dict[Row, int] = {}
    with tempfile.TemporaryDirectory(prefix="repro-spill-") as raw:
        tmpdir = pathlib.Path(raw)
        parts, spilled = _write_partitions(
            tmpdir, "agg", store, group_positions, n_partitions)
        _note_spill("aggregate", spilled, total, n_partitions)
        for paths in parts:
            if paths is None:
                continue
            part = C.aggregate(_load_partition(paths, store.schema, store.pool),
                               group_by, aggregates, schema)
            for row, count in part.to_counts().items():
                counts[row] = counts.get(row, 0) + count
    return Relation.from_counts(name, schema, counts, validate=False)


def spill_distinct(store, budget: int, name: str) -> Relation:
    """Distinct under ``budget`` bytes: partition on all columns."""
    from repro.datastore import columnar as C
    total = store_nbytes(store)
    n_partitions = partition_count(budget, total)
    all_positions = list(range(store.schema.arity))
    counts: dict[Row, int] = {}
    with tempfile.TemporaryDirectory(prefix="repro-spill-") as raw:
        tmpdir = pathlib.Path(raw)
        parts, spilled = _write_partitions(
            tmpdir, "distinct", store, all_positions, n_partitions)
        _note_spill("distinct", spilled, total, n_partitions)
        for paths in parts:
            if paths is None:
                continue
            part = C.distinct(_load_partition(paths, store.schema, store.pool))
            for row in part.rows():
                counts[row] = 1
    return Relation.from_counts(name, store.schema, counts, validate=False)
