"""Unit tests for the POS tagger and chunker."""

from repro.nlp import chunk, noun_phrases, tag, tag_token


class TestTagToken:
    def test_determiner(self):
        assert tag_token("the") == "DT"

    def test_preposition(self):
        assert tag_token("with") == "IN"

    def test_number(self):
        assert tag_token("1,200") == "CD"

    def test_ordinal(self):
        assert tag_token("3rd") == "CD"

    def test_currency_symbol(self):
        assert tag_token("$") == "SYM"

    def test_punctuation(self):
        assert tag_token(",") == "PUNCT"

    def test_capitalized_mid_sentence_is_nnp(self):
        assert tag_token("Obama") == "NNP"

    def test_common_verb(self):
        assert tag_token("married") == "VB"

    def test_ly_adverb(self):
        assert tag_token("quickly") == "RB"

    def test_noun_suffix(self):
        assert tag_token("information") == "NN"

    def test_adjective_suffix(self):
        assert tag_token("famous") == "JJ"

    def test_default_noun(self):
        assert tag_token("fox") == "NN"


class TestTagSentence:
    def test_sentence_initial_name_repaired(self):
        tags = tag(["Barack", "Obama", "married", "Michelle"])
        assert tags[0] == "NNP"
        assert tags[1] == "NNP"

    def test_full_sentence(self):
        tags = tag(["The", "gene", "regulates", "the", "phenotype"])
        assert tags == ["DT", "NN", "VB", "DT", "NN"]

    def test_empty(self):
        assert tag([]) == []


class TestChunker:
    def test_noun_phrase_grouped(self):
        tags = ["DT", "JJ", "NN", "VB", "DT", "NN"]
        nps = noun_phrases(tags)
        assert [(c.start, c.end) for c in nps] == [(0, 3), (4, 6)]

    def test_verb_phrase(self):
        tags = ["NNP", "MD", "VB", "NNP"]
        chunks = chunk(tags)
        labels = [c.label for c in chunks]
        assert labels == ["NP", "VP", "NP"]

    def test_dangling_determiner_is_o(self):
        chunks = chunk(["VB", "DT"])
        assert chunks[-1].label == "O"

    def test_chunks_cover_sentence(self):
        tags = ["DT", "NN", "VB", "IN", "NNP", "PUNCT"]
        chunks = chunk(tags)
        covered = [i for c in chunks for i in c.indices()]
        assert covered == list(range(len(tags)))

    def test_empty(self):
        assert chunk([]) == []
