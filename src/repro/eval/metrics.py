"""Precision / recall / F1 over extracted tuple sets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping


@dataclass(frozen=True)
class PrecisionRecall:
    """Quality of one extraction run against a gold set."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __str__(self) -> str:
        return (f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
                f"(tp={self.true_positives} fp={self.false_positives} "
                f"fn={self.false_negatives})")


def precision_recall(predicted: Iterable[Hashable],
                     truth: Iterable[Hashable]) -> PrecisionRecall:
    """Compare a predicted tuple set against the gold tuple set."""
    predicted_set = set(predicted)
    truth_set = set(truth)
    tp = len(predicted_set & truth_set)
    return PrecisionRecall(
        true_positives=tp,
        false_positives=len(predicted_set) - tp,
        false_negatives=len(truth_set) - tp,
    )


def apply_threshold(marginals: Mapping[Hashable, float],
                    threshold: float) -> set[Hashable]:
    """The tuples DeepDive would place in the output database at ``threshold``."""
    return {key for key, probability in marginals.items() if probability >= threshold}


def precision_recall_curve(marginals: Mapping[Hashable, float],
                           truth: Iterable[Hashable],
                           thresholds: Iterable[float] = (),
                           ) -> list[tuple[float, PrecisionRecall]]:
    """P/R at each threshold (default: 0.05 steps), for threshold tuning."""
    truth_set = set(truth)
    points = list(thresholds) or [i / 20 for i in range(1, 20)]
    return [(t, precision_recall(apply_threshold(marginals, t), truth_set))
            for t in points]
