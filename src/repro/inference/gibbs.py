"""Gibbs sampling over compiled factor graphs.

"Like many other systems, DeepDive uses Gibbs sampling to estimate the
marginal probability of every tuple in the database" (Section 4.2).  The
sampler exploits the compiled layout's split between unary and general
factors:

* variables touched *only* by unary factors have conditionals independent of
  the rest of the world, so an entire sweep over them is two vectorized numpy
  operations;
* variables with general factors are visited sequentially, fetching their
  factor "column" from the CSR arrays -- the DimmWitted access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import math

from repro.factorgraph.compiled import CompiledGraph
from repro.factorgraph.factor_functions import FactorFunction


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic function."""
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500))),
                    np.exp(np.clip(x, -500, 500)) / (1.0 + np.exp(np.clip(x, -500, 500))))


def _sigmoid_scalar(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-min(x, 500.0)))
    e = math.exp(max(x, -500.0))
    return e / (1.0 + e)


@dataclass
class MarginalResult:
    """Marginal estimates plus the bookkeeping error analysis wants."""

    marginals: np.ndarray          # P(v = 1) per compiled variable index
    num_samples: int
    burn_in: int

    def by_key(self, compiled: CompiledGraph) -> dict:
        """Map variable key -> marginal probability."""
        return {key: float(p) for key, p in zip(compiled.var_keys, self.marginals)}


class GibbsSampler:
    """Sequential-scan Gibbs sampler with evidence clamping.

    ``clamp_evidence=True`` (the learner's clamped chain and the usual
    inference configuration when evidence should be respected) pins evidence
    variables to their labels; ``False`` resamples everything (the learner's
    free chain).
    """

    def __init__(self, compiled: CompiledGraph, seed: int = 0,
                 clamp_evidence: bool = True) -> None:
        self.compiled = compiled
        self.rng = np.random.default_rng(seed)
        self.clamped = compiled.is_evidence if clamp_evidence else np.zeros(
            compiled.num_variables, dtype=bool)
        has_general = compiled.vf_indptr[1:] > compiled.vf_indptr[:-1]
        self._independent = ~has_general & ~self.clamped
        self._dependent = np.nonzero(has_general & ~self.clamped)[0]
        self._dependent_factors = self._prepare_dependent_adjacency()
        self._unary_deltas = compiled.unary_deltas()
        self._independent_probs = self._compute_independent_probs()

    def _prepare_dependent_adjacency(self) -> list[list[tuple]]:
        """Python-native per-variable factor lists for the sequential scan.

        Small-array numpy operations dominate a naive per-factor evaluation;
        converting each dependent variable's factor column to plain tuples of
        ints once makes the hot loop allocation-free.
        """
        compiled = self.compiled
        adjacency: list[list[tuple]] = []
        for var in self._dependent:
            factors = []
            for slot in range(compiled.vf_indptr[var], compiled.vf_indptr[var + 1]):
                fi = int(compiled.vf_factors[slot])
                lo, hi = int(compiled.fv_indptr[fi]), int(compiled.fv_indptr[fi + 1])
                members = tuple(int(v) for v in compiled.fv_vars[lo:hi])
                negated = tuple(bool(n) for n in compiled.fv_negated[lo:hi])
                position = members.index(int(var))
                factors.append((int(compiled.general_function[fi]),
                                int(compiled.general_weight[fi]),
                                members, negated, position))
            adjacency.append(factors)
        return adjacency

    def _compute_independent_probs(self) -> np.ndarray:
        return sigmoid(self._unary_deltas[self._independent])

    # ----------------------------------------------------------------- state
    def initial_assignment(self) -> np.ndarray:
        """Random initial world with evidence variables at their labels."""
        assignment = self.rng.random(self.compiled.num_variables) < 0.5
        assignment[self.compiled.is_evidence] = self.compiled.evidence_values[
            self.compiled.is_evidence]
        return assignment

    def refresh_weights(self) -> None:
        """Recompute cached unary deltas after the learner updates weights."""
        self._unary_deltas = self.compiled.unary_deltas()
        self._independent_probs = self._compute_independent_probs()

    # ----------------------------------------------------------------- sweeps
    def sweep(self, assignment: np.ndarray) -> int:
        """One full Gibbs sweep in place; returns variables sampled."""
        compiled = self.compiled
        sampled = 0

        independent = self._independent
        n_independent = len(self._independent_probs)
        if n_independent:
            assignment[independent] = (
                self.rng.random(n_independent) < self._independent_probs)
            sampled += n_independent

        if len(self._dependent):
            uniforms = self.rng.random(len(self._dependent))
            unary = self._unary_deltas
            weights = compiled.weight_values
            imply = int(FactorFunction.IMPLY)
            conj = int(FactorFunction.AND)
            disj = int(FactorFunction.OR)
            for i, var in enumerate(self._dependent):
                var = int(var)
                delta = float(unary[var])
                for function, weight_index, members, negated, position \
                        in self._dependent_factors[i]:
                    self_negated = negated[position]
                    others = [bool(assignment[m]) != negated[j]
                              for j, m in enumerate(members) if j != position]
                    if function == imply:
                        if position == len(members) - 1:     # self is the head
                            contribution = 1.0 if all(others) else 0.0
                        else:
                            head = others[-1]
                            # raising a body literal can only violate
                            contribution = -1.0 if (all(others[:-1])
                                                    and not head) else 0.0
                    elif function == conj:
                        contribution = 1.0 if all(others) else 0.0
                    elif function == disj:
                        contribution = 1.0 if not any(others) else 0.0
                    else:                                     # EQUAL
                        contribution = 1.0 if others[0] else -1.0
                    if self_negated:
                        contribution = -contribution
                    delta += weights[weight_index] * contribution
                assignment[var] = uniforms[i] < _sigmoid_scalar(delta)
            sampled += len(self._dependent)
        return sampled

    # -------------------------------------------------------------- inference
    def marginals(self, num_samples: int = 100, burn_in: int = 20,
                  assignment: np.ndarray | None = None) -> MarginalResult:
        """Estimate marginals from ``num_samples`` post-burn-in sweeps.

        Evidence variables (when clamped) report their label as probability
        0/1, matching DeepDive's output convention.
        """
        if assignment is None:
            assignment = self.initial_assignment()
        for _ in range(burn_in):
            self.sweep(assignment)
        totals = np.zeros(self.compiled.num_variables, dtype=np.float64)
        for _ in range(num_samples):
            self.sweep(assignment)
            totals += assignment
        marginals = totals / max(num_samples, 1)
        marginals[self.clamped] = self.compiled.evidence_values[self.clamped]
        return MarginalResult(marginals=marginals, num_samples=num_samples, burn_in=burn_in)
