"""Policy parsing, precedence, validation, and env plumbing."""

import pytest

from repro.compliance.policy import (VALID_ACTIONS, CompliancePolicy,
                                     PolicyError, parse_rules)
from repro.obs.config import COMPLIANCE_ENV_VARS, compliance_env_overrides


def test_parse_rules():
    assert parse_rules("AdPhone.phone=anonymize, docs.*=drop") == (
        ("AdPhone.phone", "anonymize"), ("docs.*", "drop"))
    assert parse_rules("") == ()
    with pytest.raises(PolicyError):
        parse_rules("AdPhone.phone")


def test_rule_precedence_first_match_wins():
    policy = CompliancePolicy(rules=(("AdPhone.phone", "allow"),
                                     ("AdPhone.*", "drop")))
    assert policy.action_for("AdPhone", "phone") == "allow"
    assert policy.action_for("AdPhone", "ad") == "drop"
    assert policy.action_for("AdEmail", "email") is None


def test_wildcards_and_bare_relation_patterns():
    policy = CompliancePolicy(rules=(("docs", "drop"),      # bare = all cols
                                     ("*.ssn", "redact")))
    assert policy.action_for("docs", "anything") == "drop"
    assert policy.action_for("people", "ssn") == "redact"
    assert policy.action_for("people", "name") is None


def test_validation():
    with pytest.raises(PolicyError):
        CompliancePolicy(default_action="shred")
    with pytest.raises(PolicyError):
        CompliancePolicy(min_confidence=1.5)
    with pytest.raises(PolicyError):
        CompliancePolicy(rules=(("a.b", "shred"),))
    with pytest.raises(PolicyError):
        CompliancePolicy(key="")
    with pytest.raises(PolicyError):
        CompliancePolicy(sample_rows=-1)
    assert set(VALID_ACTIONS) == {"allow", "redact", "anonymize", "drop"}


def test_active_requires_a_non_allow_action():
    assert not CompliancePolicy(enabled=True).active
    assert CompliancePolicy(enabled=True, default_action="redact").active
    assert CompliancePolicy(enabled=True,
                            rules=(("a.b", "drop"),)).active
    assert not CompliancePolicy(enabled=False,
                                default_action="redact").active


def test_with_options():
    policy = CompliancePolicy().with_options(enabled=True,
                                             default_action="anonymize")
    assert policy.enabled and policy.default_action == "anonymize"


def test_env_overrides_parse():
    environ = {
        "REPRO_COMPLIANCE_ENABLED": "1",
        "REPRO_COMPLIANCE_ACTION": "anonymize",
        "REPRO_COMPLIANCE_MIN_CONFIDENCE": "0.7",
        "REPRO_COMPLIANCE_KEY": "secret",
        "REPRO_COMPLIANCE_RULES": "AdPhone.phone=drop",
    }
    overrides = compliance_env_overrides(environ)
    assert overrides["enabled"] is True
    assert overrides["default_action"] == "anonymize"

    policy = CompliancePolicy.from_env(environ)
    assert policy.enabled and policy.key == "secret"
    assert policy.min_confidence == 0.7
    assert policy.action_for("AdPhone", "phone") == "drop"


def test_env_overrides_warn_and_report_unparseable_values():
    invalid = {}
    with pytest.warns(RuntimeWarning, match="SAMPLE_ROWS"):
        overrides = compliance_env_overrides(
            {"REPRO_COMPLIANCE_SAMPLE_ROWS": "not-a-number"},
            invalid=invalid)
    assert "sample_rows" not in overrides
    assert invalid == {"sample_rows": "not-a-number"}


def test_from_env_enabled_with_invalid_value_fails_closed():
    # a typo'd action under an enabled policy must not silently fall back
    # to 'allow' and publish raw PII — construction refuses instead
    with pytest.raises(PolicyError, match="anonimize"):
        CompliancePolicy.from_env({
            "REPRO_COMPLIANCE_ENABLED": "1",
            "REPRO_COMPLIANCE_ACTION": "anonimize",       # typo
        })
    with pytest.raises(PolicyError, match="sample_rows"):
        CompliancePolicy.from_env({
            "REPRO_COMPLIANCE_ENABLED": "1",
            "REPRO_COMPLIANCE_SAMPLE_ROWS": "not-a-number",
        })
    with pytest.raises(PolicyError, match="rules"):
        CompliancePolicy.from_env({
            "REPRO_COMPLIANCE_ENABLED": "1",
            "REPRO_COMPLIANCE_RULES": "AdPhone.phone",    # no action
        })


def test_from_env_disabled_invalid_value_warns_and_falls_back():
    with pytest.warns(RuntimeWarning, match="default_action"):
        policy = CompliancePolicy.from_env({
            "REPRO_COMPLIANCE_ACTION": "shred",           # invalid
        })
    assert not policy.enabled
    assert policy.default_action == "allow"


def test_every_compliance_env_var_is_declared():
    assert set(COMPLIANCE_ENV_VARS) == {
        "enabled", "default_action", "min_confidence", "key", "rules",
        "sample_rows", "max_examples"}
    assert all(name.startswith("REPRO_COMPLIANCE_")
               for name in COMPLIANCE_ENV_VARS.values())
