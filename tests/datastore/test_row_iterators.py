"""The row-iterator protocol: streaming reads over relations and views."""

import pytest

from repro.datastore import Database, Schema
from repro.datastore.segments import SegmentedRelation
from repro.nlp.pipeline import (Document, iter_corpus_rows, load_corpus,
                                preprocess_document,
                                preprocess_document_rows, sentence_row)


SCHEMA = Schema.of(k="text", n="int")


class TestRelationIterRows:
    def test_matches_dunder_iter_with_multiplicity(self):
        db = Database()
        relation = db.create("r", SCHEMA)
        relation.insert(("a", 1), count=3)
        relation.insert(("b", 2))
        assert sorted(relation.iter_rows()) == sorted(relation)
        assert len(list(relation.iter_rows())) == 4

    def test_is_lazy(self):
        db = Database()
        relation = db.create("r", SCHEMA)
        relation.insert_many((f"k{i}", i) for i in range(10))
        iterator = relation.iter_rows()
        assert next(iter(iterator)) is not None   # consumable, not a list
        assert not isinstance(iterator, list)

    def test_streams_into_insert_many(self):
        db = Database()
        source = db.create("src", SCHEMA)
        source.insert_many((f"k{i}", i) for i in range(50))
        sink = db.create("dst", SCHEMA)
        assert sink.insert_many(source.iter_rows()) == 50
        assert sorted(sink) == sorted(source)

    def test_segmented_relation_streams_by_segment(self, tmp_path):
        relation = SegmentedRelation("seg", SCHEMA, directory=tmp_path,
                                     segment_rows=8)
        relation.insert_many((f"k{i}", i) for i in range(30))
        assert sorted(relation.iter_rows()) == sorted(
            (f"k{i}", i) for i in range(30))


class TestViewIterVisible:
    def make_view(self):
        from repro.datastore.plan import Scan

        db = Database()
        base = db.create("base", SCHEMA)
        base.insert_many((f"k{i}", i) for i in range(6))
        view = db.views.define("v", Scan("base"))
        return db, base, view

    def test_matches_visible_rows(self):
        _db, _base, view = self.make_view()
        assert sorted(view.iter_visible()) == sorted(view.visible_rows())

    def test_iter_rows_protocol_alias(self):
        _db, _base, view = self.make_view()
        assert sorted(view.iter_rows()) == sorted(view.visible_rows())

    def test_retracted_rows_are_invisible(self):
        db, base, view = self.make_view()
        db.views.apply_changes(deletes={"base": [("k0", 0)]})
        assert ("k0", 0) not in set(view.iter_visible())
        assert len(list(view.iter_visible())) == 5


class TestCorpusRowStreaming:
    DOCS = [Document(f"d{i}", f"The plum tree number {i} grew. It thrived.")
            for i in range(4)]

    def test_rows_match_object_pipeline(self):
        for doc in self.DOCS:
            rows = preprocess_document_rows(doc)
            expected = [sentence_row(s) for s in preprocess_document(doc)]
            assert rows == expected

    def test_iter_corpus_rows_sequential_is_lazy_and_identical(self):
        lazy = iter_corpus_rows(self.DOCS)
        assert not isinstance(lazy, list)
        assert list(lazy) == [preprocess_document_rows(d) for d in self.DOCS]

    def test_iter_corpus_rows_pooled_matches_sequential(self):
        pooled = iter_corpus_rows(self.DOCS, workers=2, pool_min_work=0)
        assert list(pooled) == [preprocess_document_rows(d)
                                for d in self.DOCS]

    def test_load_corpus_contents_unchanged(self):
        streamed = Database()
        load_corpus(streamed, self.DOCS)
        reference = Database()
        if "sentences" not in reference:
            from repro.nlp.pipeline import DOCUMENT_SCHEMA, SENTENCE_SCHEMA
            reference.create("documents", DOCUMENT_SCHEMA)
            reference.create("sentences", SENTENCE_SCHEMA)
        for doc in self.DOCS:
            reference["documents"].insert((doc.doc_id, doc.content))
            for sentence in preprocess_document(doc):
                reference["sentences"].insert(sentence_row(sentence))
        assert sorted(streamed["sentences"]) == sorted(
            reference["sentences"])
        assert sorted(streamed["documents"]) == sorted(
            reference["documents"])
